"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` keeps working on environments whose setuptools/pip predate full
PEP 660 editable-install support (and that lack the ``wheel`` package).
"""

from setuptools import setup

setup()
