"""Package metadata and installation for the ``repro`` library.

Metadata lives here (rather than in a ``pyproject.toml``) on purpose: the
project targets plain-setuptools environments without the ``wheel`` package,
where PEP 517/660 editable installs are unavailable but the classic
``pip install -e .`` (``setup.py develop``) path works.  Keeping a single
source of metadata avoids the two drifting.

Installing registers the ``repro`` console command (``repro.cli:main``), the
same interface as ``python -m repro``.
"""

import pathlib

from setuptools import find_packages, setup

_README = pathlib.Path(__file__).resolve().parent / "README.md"

setup(
    name="repro-halpern-moses",
    version="1.0.0",
    description=(
        "Executable reproduction of Halpern & Moses, 'Knowledge and Common "
        "Knowledge in a Distributed Environment' (PODC 1984): epistemic model "
        "checking over Kripke structures and systems of runs"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    url="https://example.invalid/repro-halpern-moses",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    extras_require={
        "dev": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    keywords=(
        "epistemic-logic common-knowledge model-checking distributed-systems "
        "kripke-structures"
    ),
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3 :: Only",
        "Topic :: Scientific/Engineering",
    ],
)
