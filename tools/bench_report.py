#!/usr/bin/env python
"""Run the benchmark suite and emit a machine-readable ``BENCH_results.json``.

The repo's benchmarks (``benchmarks/bench_*.py``) both *measure* and *check*
the paper's claims; this tool turns one run of them into a stable JSON artifact
so the performance trajectory is tracked PR over PR::

    PYTHONPATH=src python tools/bench_report.py                 # full run
    PYTHONPATH=src python tools/bench_report.py --quick         # smoke mode
    PYTHONPATH=src python tools/bench_report.py --bench bench_announcement_chain.py

Full mode runs pytest-benchmark over the selected modules and records, per
benchmark: mean/stddev/min (seconds), rounds, the engine backend and the model
size (``benchmark.extra_info`` when the benchmark provides them, else parsed
from the parameter id).  Quick mode (``--quick``) disables the timing loops
(``--benchmark-disable``) so every benchmark body runs exactly once — the
qualitative assertions still execute, making it a cheap smoke gate for the
verify flow — and the JSON records outcomes instead of statistics.

Every report stamps its provenance: a timezone-stable UTC ISO-8601
``generated_at`` (explicit ``Z`` designator, so baselines diff cleanly no
matter where they were produced), the git commit SHA, and the python/repro/
engine-backend versions — ``repro bench compare`` shows these alongside a
regression so a failing gate is attributable at a glance.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_results.json"


def _git_sha() -> Optional[str]:
    """The checkout's HEAD commit, or ``None`` when git is unavailable."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def _versions() -> Dict[str, object]:
    """Python/repro/engine-backend versions, resolved from this checkout."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    import repro
    from repro.engine import BACKENDS

    return {
        "python": platform.python_version(),
        "repro": repro.__version__,
        "engine_backends": sorted(BACKENDS),
    }


def _env_with_src() -> Dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def _select_benchmarks(patterns: List[str]) -> List[pathlib.Path]:
    if not patterns:
        return sorted(BENCH_DIR.glob("bench_*.py"))
    selected: List[pathlib.Path] = []
    for pattern in patterns:
        matches = sorted(BENCH_DIR.glob(pattern))
        if not matches:
            raise SystemExit(f"error: --bench {pattern!r} matches no benchmark module")
        selected.extend(matches)
    return selected


def _backend_of(entry: Dict) -> Optional[str]:
    extra = entry.get("extra_info") or {}
    if "backend" in extra:
        return extra["backend"]
    params = entry.get("params") or {}
    if isinstance(params, dict) and "backend" in params:
        return params["backend"]
    return None


def _full_run(files: List[pathlib.Path], pytest_args: List[str]) -> Dict:
    """Run pytest-benchmark over ``files`` and distil its JSON export."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        export_path = handle.name
    try:
        # No --benchmark-only: the modules' qualitative assertion tests (e.g.
        # the >=3x speedup floor) are part of the suite and must run too.
        command = [
            sys.executable,
            "-m",
            "pytest",
            *map(str, files),
            f"--benchmark-json={export_path}",
            "-q",
            *pytest_args,
        ]
        completed = subprocess.run(command, cwd=str(REPO_ROOT), env=_env_with_src())
        if completed.returncode != 0:
            raise SystemExit(completed.returncode)
        with open(export_path) as stream:
            raw = json.load(stream)
    finally:
        os.unlink(export_path)

    benchmarks = []
    for entry in sorted(raw.get("benchmarks", []), key=lambda e: e["fullname"]):
        stats = entry["stats"]
        extra = entry.get("extra_info") or {}
        benchmarks.append(
            {
                "name": entry["name"],
                "file": entry["fullname"].split("::", 1)[0],
                "group": entry.get("group"),
                "backend": _backend_of(entry),
                "model_size": extra.get("worlds"),
                "mean_s": stats["mean"],
                "stddev_s": stats["stddev"],
                "min_s": stats["min"],
                "rounds": stats["rounds"],
            }
        )
    return {
        "machine_info": {
            "python": raw.get("machine_info", {}).get("python_version"),
            "machine": raw.get("machine_info", {}).get("machine"),
        },
        "benchmarks": benchmarks,
    }


def _quick_run(files: List[pathlib.Path], pytest_args: List[str]) -> Dict:
    """Smoke mode: run every benchmark body once, no timing loops."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        *map(str, files),
        "--benchmark-disable",
        "-q",
        *pytest_args,
    ]
    completed = subprocess.run(command, cwd=str(REPO_ROOT), env=_env_with_src())
    if completed.returncode != 0:
        raise SystemExit(completed.returncode)
    return {
        "benchmarks": [
            {"file": f"benchmarks/{path.name}", "outcome": "smoke-passed"}
            for path in files
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Run the benchmark suite and emit BENCH_results.json."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: run each benchmark body once without timing loops",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help=f"where to write the report (default: {DEFAULT_OUTPUT.name} — "
        "full-suite runs only; --bench subsets must name an explicit output)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="GLOB",
        help="benchmark module(s) to run, as globs relative to benchmarks/ "
        "(repeatable; default: every bench_*.py)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        if args.bench:
            # The repo-root report tracks the FULL suite; a subset run must not
            # silently clobber it.
            raise SystemExit(
                "error: --bench selects a subset; pass an explicit --output so "
                f"the tracked full-suite {DEFAULT_OUTPUT.name} is not overwritten"
            )
        args.output = DEFAULT_OUTPUT

    files = _select_benchmarks(args.bench)
    started = time.time()
    body = _quick_run(files, args.pytest_args) if args.quick else _full_run(
        files, args.pytest_args
    )
    report = {
        "mode": "quick" if args.quick else "full",
        # Explicit Z designator: "...T03:33:14" alone is ambiguous about its
        # zone, and a baseline generated on one machine must compare cleanly
        # against a current report generated on another.
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)),
        "duration_s": round(time.time() - started, 3),
        "git_sha": _git_sha(),
        "versions": _versions(),
        "modules": [f"benchmarks/{path.name}" for path in files],
        **body,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} ({report['mode']} mode, {len(files)} module(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
