#!/usr/bin/env python
"""Diff a fresh benchmark report against the committed baseline.

Thin wrapper over ``repro bench compare`` (see :mod:`repro.benchcompare`) that
works straight from a source checkout without ``PYTHONPATH``::

    python tools/bench_compare.py --current /tmp/bench.json
    python tools/bench_compare.py --quick --current /tmp/bench_quick.json
    python tools/bench_compare.py                      # runs the suite first

Exits 0 when every benchmark is within tolerance of the committed
``BENCH_results.json``, 1 on regression, 2 on usage errors — the exact gate CI
runs.
"""

from __future__ import annotations

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.cli import main  # noqa: E402  (needs the sys.path bootstrap above)

if __name__ == "__main__":
    sys.exit(main(["bench", "compare", *sys.argv[1:]]))
