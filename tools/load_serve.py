#!/usr/bin/env python3
"""Asyncio load driver for the ``repro serve`` evaluation service.

Ramps client concurrency against a running server and reports per-level
p50/p95 latency and throughput, using nothing but the standard library (a
hand-rolled async HTTP/1.1 client over ``asyncio.open_connection``, one
keep-alive connection per simulated client).

Two modes:

``--verify``
    CI smoke mode: assert the service invariants end to end — every
    endpoint answers, concurrent identical ``POST /run`` requests coalesce
    into exactly one evaluation (checked against ``GET /stats``
    ``eval_count``) with byte-identical responses, and a small ``POST
    /sweep`` streams complete NDJSON with its terminating trailer.  Exits
    non-zero on any violation.

default (load mode)
    Ramp through ``--ramp`` concurrency levels, ``--requests`` total
    requests per level, all hitting ``POST /run`` for ``--scenario`` at
    ``--params``; print a per-level latency/throughput table (or
    ``--json``).

Usage::

    PYTHONPATH=src python -m repro serve --port 8750 &
    python tools/load_serve.py --port 8750 --ramp 1,4,16 --requests 64
    python tools/load_serve.py --port 8750 --verify
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

DEFAULT_SCENARIO = "muddy_children"
DEFAULT_PARAMS = {"n": 4, "k": 2}
# Cold-started in --verify so the evaluation comfortably outlasts the
# arrival spread of the concurrent requests (the coalescing window).
VERIFY_SCENARIO = "gossip"
VERIFY_PARAMS = {"n": 4, "horizon": 5}


class LoadError(Exception):
    """A failed request or a violated --verify invariant."""


async def _request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    host: str,
    method: str,
    path: str,
    body: Optional[bytes] = None,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP/1.1 exchange on an already-open keep-alive connection."""
    head = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    if body is not None:
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
    request = ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + (body or b"")
    writer.write(request)
    await writer.drain()

    status_line = await reader.readline()
    if not status_line:
        raise LoadError("server closed the connection mid-request")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2:
        raise LoadError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    if length is not None:
        payload = await reader.readexactly(int(length))
    else:
        # Connection: close framing (NDJSON streams).
        payload = await reader.read()
    return status, headers, payload


async def _client_loop(
    host: str,
    port: int,
    path: str,
    body: bytes,
    count: int,
    latencies: List[float],
) -> None:
    """One simulated client: a keep-alive connection issuing ``count`` runs."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for _ in range(count):
            started = time.perf_counter()
            status, _headers, payload = await _request(
                reader, writer, host, "POST", path, body
            )
            latencies.append(time.perf_counter() - started)
            if status != 200:
                raise LoadError(
                    f"POST {path} answered {status}: {payload[:200].decode('utf-8', 'replace')}"
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


async def _run_level(
    host: str, port: int, body: bytes, concurrency: int, total: int
) -> Dict[str, object]:
    latencies: List[float] = []
    per_client = max(1, total // concurrency)
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client_loop(host, port, "/run", body, per_client, latencies)
            for _ in range(concurrency)
        )
    )
    elapsed = time.perf_counter() - started
    latencies.sort()
    requests = per_client * concurrency
    return {
        "concurrency": concurrency,
        "requests": requests,
        "wall_seconds": round(elapsed, 4),
        "throughput_rps": round(requests / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
        "max_ms": round(latencies[-1] * 1000, 3) if latencies else 0.0,
    }


async def _get_json(host: str, port: int, path: str) -> Tuple[int, object]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        status, _headers, payload = await _request(reader, writer, host, "GET", path)
        return status, json.loads(payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _verify(host: str, port: int, fanout: int) -> None:
    """Assert the service invariants; raise :class:`LoadError` on violation."""

    def check(condition: bool, what: str) -> None:
        if not condition:
            raise LoadError(f"verify failed: {what}")
        print(f"ok: {what}")

    status, health = await _get_json(host, port, "/healthz")
    check(status == 200 and health.get("ok") is True, "GET /healthz answers ok")

    status, scenarios = await _get_json(host, port, "/scenarios")
    check(
        status == 200 and isinstance(scenarios, list) and scenarios,
        "GET /scenarios lists registered scenarios",
    )
    first = scenarios[0]["name"]
    status, detail = await _get_json(host, port, f"/scenarios/{first}")
    check(
        status == 200 and detail.get("name") == first and "parameters" in detail,
        f"GET /scenarios/{first} describes the schema",
    )
    status, _detail = await _get_json(host, port, "/scenarios/no_such_scenario")
    check(status == 404, "unknown scenario detail answers 404")

    # Coalescing: N simultaneous identical requests, one evaluation.  All
    # request bytes are written before any response is read, and the target
    # point is evaluated cold, so every request arrives well inside the
    # leader's evaluation window.
    _status, before = await _get_json(host, port, "/stats")
    body = json.dumps(
        {"scenario": VERIFY_SCENARIO, "params": VERIFY_PARAMS}
    ).encode("utf-8")
    connections = [
        await asyncio.open_connection(host, port) for _ in range(fanout)
    ]
    try:
        responses = await asyncio.gather(
            *(
                _request(reader, writer, host, "POST", "/run", body)
                for reader, writer in connections
            )
        )
    finally:
        for _reader, writer in connections:
            writer.close()
    statuses = {status for status, _, _ in responses}
    bodies = {payload for _, _, payload in responses}
    check(statuses == {200}, f"{fanout} concurrent identical POST /run all answer 200")
    check(
        len(bodies) == 1,
        f"{fanout} concurrent identical POST /run responses are byte-identical",
    )
    _status, after = await _get_json(host, port, "/stats")
    evaluated = after["eval_count"] - before["eval_count"]
    served = after["store_hits"] - before["store_hits"]
    check(
        evaluated + served == 1,
        f"{fanout} concurrent identical POST /run cost one evaluation "
        f"(eval_count +{evaluated}, store_hits +{served})",
    )
    check(
        after["coalesce"]["hits"] - before["coalesce"]["hits"] == fanout - 1,
        f"{fanout - 1} followers coalesced onto the leader",
    )

    # NDJSON sweep: complete stream, trailer row, grid-order rows.
    reader, writer = await asyncio.open_connection(host, port)
    try:
        sweep_body = json.dumps(
            {
                "scenario": "muddy_children",
                "grid": {"n": [2, 3]},
                "params": {"k": 1},
            }
        ).encode("utf-8")
        status, headers, payload = await _request(
            reader, writer, host, "POST", "/sweep", sweep_body
        )
    finally:
        writer.close()
    check(status == 200, "POST /sweep answers 200")
    lines = [json.loads(line) for line in payload.decode("utf-8").splitlines()]
    check(
        lines and lines[-1].get("sweep_complete") is True,
        "sweep stream ends with the completion trailer",
    )
    rows = lines[:-1]
    check(
        [row["params"]["n"] for row in rows] == [2, 3],
        "sweep rows arrive in grid order",
    )

    # Malformed request: structured error body with diagnostics.
    reader, writer = await asyncio.open_connection(host, port)
    try:
        bad = json.dumps(
            {"scenario": "muddy_children", "formulas": ["K_1 bogus_atom"]}
        ).encode("utf-8")
        status, _headers, payload = await _request(
            reader, writer, host, "POST", "/run", bad
        )
    finally:
        writer.close()
    error = json.loads(payload).get("error", {})
    check(
        status == 400 and error.get("diagnostics"),
        "invalid formula answers 400 with REP diagnostics",
    )


async def _main(args: argparse.Namespace) -> int:
    if args.verify:
        await _verify(args.host, args.port, args.fanout)
        print("verify: all service invariants hold")
        return 0

    params = json.loads(args.params) if args.params else DEFAULT_PARAMS
    body = json.dumps({"scenario": args.scenario, "params": params}).encode("utf-8")
    levels = [int(part) for part in args.ramp.split(",") if part.strip()]
    results = []
    for concurrency in levels:
        result = await _run_level(args.host, args.port, body, concurrency, args.requests)
        results.append(result)
        if not args.json:
            print(
                f"c={result['concurrency']:<4d} n={result['requests']:<6d} "
                f"{result['throughput_rps']:>8.1f} req/s  "
                f"p50 {result['p50_ms']:>8.3f} ms  "
                f"p95 {result['p95_ms']:>8.3f} ms  "
                f"max {result['max_ms']:>8.3f} ms"
            )
    if args.json:
        print(json.dumps({"scenario": args.scenario, "levels": results}, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--scenario", default=DEFAULT_SCENARIO, help="scenario to hammer (load mode)"
    )
    parser.add_argument(
        "--params",
        default=None,
        help='parameters as a JSON object (default: {"n": 4, "k": 2})',
    )
    parser.add_argument(
        "--ramp",
        default="1,4,16",
        help="comma-separated concurrency levels (default: 1,4,16)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=64,
        help="total requests per concurrency level (default: 64)",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=8,
        help="concurrent identical requests in the --verify coalescing check",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="assert service invariants instead of measuring load (CI mode)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON (load mode)")
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_main(args))
    except LoadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
