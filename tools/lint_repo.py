#!/usr/bin/env python
"""Repo lint gate: ``ast``-based checks for patterns the test suite can't see.

Three rules, each scoped to where the pattern actually bites:

``LNT001`` — no ``frozenset(...)`` construction in the mask-space hot paths of
``src/repro/engine/universe.py``.  The bitset backend's whole point is that
set algebra stays on integer masks; materialising a ``frozenset`` mid-pipeline
silently reintroduces the allocation cost the backend exists to avoid.  The
explicit boundary converters (functions whose name contains ``frozenset``,
e.g. ``to_frozenset``) are exempt — crossing the representation boundary is
their job.

``LNT002`` — no wall-clock reads (``time.time()``, ``datetime.now()``,
``datetime.utcnow()``) in worker-side sweep code
(``src/repro/experiments/parallel.py``, ``runner.py``, ``supervise.py``,
``chaos.py``).  Timing that feeds retry/backoff/watchdog decisions must use
the monotonic clock (``time.monotonic``/``time.perf_counter``): wall clocks
jump under NTP and break supervision determinism.  Parent-side provenance
stamping (``store.py``) legitimately uses wall time and is out of scope.

``LNT003`` — no bare ``except:`` anywhere under ``src/``.  A bare handler
swallows ``KeyboardInterrupt``/``SystemExit``, which breaks the CLI's
exit-130 contract and the sweep supervisor's cancellation path.  Write
``except Exception:`` (or narrower).

Usage::

    python tools/lint_repo.py               # lint src/ with the default scoping
    python tools/lint_repo.py src tools     # extra roots (scoped rules still
                                            # apply only to their own files)
    python tools/lint_repo.py --json

Exits 0 when clean, 1 with ``path:line: RULE message`` findings otherwise,
2 on usage errors (e.g. a path that does not exist).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from typing import Iterator, List, NamedTuple, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The one file where frozenset construction is a hot-path smell (LNT001).
MASK_SPACE_FILES = ("src/repro/engine/universe.py",)

#: Modules that run (or drive) worker-side sweep code (LNT002).
WORKER_SIDE_FILES = (
    "src/repro/experiments/parallel.py",
    "src/repro/experiments/runner.py",
    "src/repro/experiments/supervise.py",
    "src/repro/experiments/chaos.py",
)

#: Attribute calls LNT002 rejects, as dotted names.
WALL_CLOCK_CALLS = frozenset(
    {"time.time", "datetime.now", "datetime.utcnow", "datetime.datetime.now", "datetime.datetime.utcnow"}
)


class Finding(NamedTuple):
    """One lint violation: where it is, which rule, and what to do instead."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _enclosing_functions(tree: ast.AST) -> dict:
    """Map every node to the name of its innermost enclosing function (or '')."""
    owner = {}

    def walk(node: ast.AST, current: str) -> None:
        for child in ast.iter_child_nodes(node):
            owner[child] = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(child, child.name)
            else:
                walk(child, current)

    owner[tree] = ""
    walk(tree, "")
    return owner


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one file's source text; ``path`` is repo-relative for scoping."""
    normalised = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "LNT000", f"syntax error: {exc.msg}")]
    findings: List[Finding] = []
    check_masks = normalised in MASK_SPACE_FILES
    check_clocks = normalised in WORKER_SIDE_FILES
    owner = _enclosing_functions(tree) if check_masks else {}
    for node in ast.walk(tree):
        if check_masks and isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "frozenset":
                if "frozenset" not in owner.get(node, ""):
                    findings.append(
                        Finding(
                            path,
                            node.lineno,
                            "LNT001",
                            "frozenset construction in a mask-space hot path; "
                            "keep set algebra on integer masks (boundary "
                            "converters named *frozenset* are exempt)",
                        )
                    )
        if check_clocks and isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted in WALL_CLOCK_CALLS:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "LNT002",
                        f"wall-clock read {dotted}() in worker-side sweep "
                        "code; use time.monotonic()/time.perf_counter()",
                    )
                )
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "LNT003",
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch Exception (or narrower)",
                )
            )
    return findings


def iter_python_files(root: str) -> Iterator[str]:
    """Yield every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if not d.startswith(".") and d != "__pycache__"]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(roots: Sequence[str]) -> List[Finding]:
    """Lint every python file under ``roots``; paths become repo-relative."""
    findings: List[Finding] = []
    for root in roots:
        absolute = os.path.abspath(root)
        if not os.path.exists(absolute):
            raise FileNotFoundError(root)
        for filepath in iter_python_files(absolute):
            relative = os.path.relpath(filepath, REPO_ROOT)
            # Outside the repo (tmp dirs in tests) keep the path as given so
            # scoped rules can still be exercised by naming files explicitly.
            if relative.startswith(".."):
                relative = filepath
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
            findings.extend(lint_source(source, relative))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repo's src/ tree)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON findings")
    args = parser.parse_args(argv)
    roots = args.paths or [os.path.join(REPO_ROOT, "src")]
    try:
        findings = lint_paths(roots)
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([finding._asdict() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"{len(findings)} lint finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
