#!/usr/bin/env python
"""Doc-coverage gate for the public API.

Walks the packages named on the command line (default: ``repro.engine``,
``repro.experiments``, ``repro.cli``) and requires a docstring on:

* every module,
* every public module-level class and function defined in that module,
* every public method/property of those classes (``inspect.getdoc`` is used, so
  a docstring inherited from a documented base class counts).

"Public" means the name does not start with ``_`` and is either exported via
``__all__`` or visible at module top level.  Exits 0 when everything is
documented, 1 with a listing of the gaps otherwise.

Usage::

    PYTHONPATH=src python tools/check_doc_coverage.py
    PYTHONPATH=src python tools/check_doc_coverage.py repro.engine repro.kripke
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from typing import Iterator, List, Tuple

DEFAULT_TARGETS = ("repro.engine", "repro.experiments", "repro.cli", "repro.serve")


def iter_modules(target: str) -> Iterator[object]:
    """Yield the module named ``target`` and, if it is a package, its submodules."""
    root = importlib.import_module(target)
    yield root
    if hasattr(root, "__path__"):
        for info in pkgutil.walk_packages(root.__path__, prefix=target + "."):
            yield importlib.import_module(info.name)


def public_members(module) -> Iterator[Tuple[str, object]]:
    """Module-level public classes and functions defined by ``module`` itself."""
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue
        yield name, member


def class_gaps(module_name: str, class_name: str, cls: type) -> List[str]:
    """The undocumented public methods/properties a class defines itself."""
    gaps: List[str] = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            target = member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            target = member.__func__
        elif inspect.isfunction(member):
            target = member
        else:
            continue  # class attributes, nested classes, descriptors we don't police
        if target is None or not inspect.getdoc(target):
            if not _inherited_doc(cls, name):
                gaps.append(f"{module_name}.{class_name}.{name}")
    return gaps


def _inherited_doc(cls: type, name: str) -> bool:
    """Whether a base class documents ``name`` (an override inherits its doc)."""
    for base in cls.__mro__[1:]:
        member = base.__dict__.get(name)
        if member is None:
            continue
        if isinstance(member, property):
            member = member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            member = member.__func__
        if member is not None and inspect.getdoc(member):
            return True
    return False


def collect_gaps(targets: List[str]) -> List[str]:
    """Every missing docstring across ``targets``, as dotted paths."""
    gaps: List[str] = []
    for target in targets:
        for module in iter_modules(target):
            if not inspect.getdoc(module):
                gaps.append(f"{module.__name__} (module docstring)")
            for name, member in public_members(module):
                if not inspect.getdoc(member):
                    gaps.append(f"{module.__name__}.{name}")
                if inspect.isclass(member):
                    gaps.extend(class_gaps(module.__name__, name, member))
    return gaps


def main(argv=None) -> int:
    """CLI entry point; returns 0 on full coverage, 1 otherwise."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "targets",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help=f"modules/packages to check (default: {' '.join(DEFAULT_TARGETS)})",
    )
    args = parser.parse_args(argv)
    gaps = collect_gaps(args.targets)
    if gaps:
        print(f"doc coverage: {len(gaps)} public name(s) missing docstrings:")
        for gap in sorted(gaps):
            print(f"  {gap}")
        return 1
    print(f"doc coverage: OK ({', '.join(args.targets)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
