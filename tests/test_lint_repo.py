"""Tests for the ``tools/lint_repo.py`` ast-based repo lint gate."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint_repo import (  # noqa: E402 - needs the tools/ path above
    MASK_SPACE_FILES,
    WORKER_SIDE_FILES,
    lint_paths,
    lint_source,
)


def rules(findings):
    return [finding.rule for finding in findings]


# -- rule scoping --------------------------------------------------------------

HOT_PATH_SOURCE = (
    "def hot(masks):\n"
    "    return frozenset(masks)\n"
    "\n"
    "def to_frozenset(mask):\n"
    "    return frozenset(mask)\n"
)


def test_frozenset_flagged_only_in_mask_space_files():
    findings = lint_source(HOT_PATH_SOURCE, "src/repro/engine/universe.py")
    assert rules(findings) == ["LNT001"]
    assert findings[0].line == 2  # the converter on line 5 is exempt
    assert lint_source(HOT_PATH_SOURCE, "src/repro/engine/core.py") == []


WALL_CLOCK_SOURCE = (
    "import time\n"
    "import datetime\n"
    "def work():\n"
    "    a = time.time()\n"
    "    b = datetime.datetime.now()\n"
    "    c = time.monotonic()\n"
    "    d = time.perf_counter()\n"
)


def test_wall_clock_flagged_only_in_worker_side_files():
    findings = lint_source(
        WALL_CLOCK_SOURCE, "src/repro/experiments/supervise.py"
    )
    assert rules(findings) == ["LNT002", "LNT002"]
    assert {finding.line for finding in findings} == {4, 5}
    # store.py stamps parent-side provenance with wall time; out of scope.
    assert lint_source(WALL_CLOCK_SOURCE, "src/repro/experiments/store.py") == []


def test_bare_except_flagged_everywhere():
    source = "try:\n    pass\nexcept:\n    pass\n"
    findings = lint_source(source, "src/repro/anywhere.py")
    assert rules(findings) == ["LNT003"]
    assert lint_source(
        "try:\n    pass\nexcept Exception:\n    pass\n", "src/repro/anywhere.py"
    ) == []


def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", "src/repro/broken.py")
    assert rules(findings) == ["LNT000"]


def test_scoped_file_lists_point_at_real_files():
    for path in MASK_SPACE_FILES + WORKER_SIDE_FILES:
        assert (REPO_ROOT / path).is_file(), path


# -- the repo itself -----------------------------------------------------------

def test_repo_src_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "src")])
    assert findings == [], [finding.render() for finding in findings]


# -- the command line ----------------------------------------------------------

def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint_repo.py"), *argv],
        capture_output=True,
        text=True,
    )


def test_cli_clean_exit_zero():
    result = _run_cli(str(REPO_ROOT / "src"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_findings_exit_one(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n")
    result = _run_cli(str(tmp_path))
    assert result.returncode == 1
    assert "LNT003" in result.stdout
    assert "bad.py:3" in result.stdout


def test_cli_json_output(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n")
    result = _run_cli(str(tmp_path), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload[0]["rule"] == "LNT003"
    assert payload[0]["line"] == 3


def test_cli_missing_path_exit_two():
    result = _run_cli(str(REPO_ROOT / "no_such_directory"))
    assert result.returncode == 2
    assert "no such path" in result.stderr
