"""Property tests for the bitset primitives behind the fast engine backend.

Three invariants the bitset backend's correctness rests on:

* mask <-> frozenset conversions are mutually inverse bijections;
* each agent's partition masks form a disjoint cover of the universe;
* the G-reachability component masks agree with :meth:`KripkeStructure.reachable`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from _engine_gen import random_structure
from repro.engine import BitsetBackend, IndexedUniverse
from repro.errors import ModelError
from repro.logic.agents import Group

_SETTINGS = {"max_examples": 60, "deadline": None}


# ---------------------------------------------------------------------------
# IndexedUniverse round-trips
# ---------------------------------------------------------------------------


@settings(**_SETTINGS)
@given(
    n=st.integers(min_value=1, max_value=48),
    data=st.data(),
)
def test_mask_frozenset_round_trip(n, data):
    universe = IndexedUniverse([f"e{i}" for i in range(n)])
    subset = data.draw(st.sets(st.sampled_from(universe.elements)))
    mask = universe.mask_of(subset)
    assert universe.to_frozenset(mask) == frozenset(subset)
    assert universe.mask_of(universe.to_frozenset(mask)) == mask
    assert universe.count(mask) == len(subset)


@settings(**_SETTINGS)
@given(
    n=st.integers(min_value=1, max_value=48),
    mask=st.integers(min_value=0),
)
def test_arbitrary_mask_round_trip(n, mask):
    universe = IndexedUniverse([f"e{i}" for i in range(n)])
    mask &= universe.full_mask
    assert universe.mask_of(universe.to_frozenset(mask)) == mask


def test_universe_rejects_duplicates_and_empty():
    with pytest.raises(ModelError):
        IndexedUniverse(["a", "a"])
    with pytest.raises(ModelError):
        IndexedUniverse([])


def test_universe_order_fixes_bit_positions():
    universe = IndexedUniverse(["x", "y", "z"])
    assert universe.bit("x") == 1
    assert universe.bit("y") == 2
    assert universe.bit("z") == 4
    assert universe.full_mask == 7
    assert list(universe.elements_of(0b101)) == ["x", "z"]


# ---------------------------------------------------------------------------
# Partition masks
# ---------------------------------------------------------------------------


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_worlds=st.integers(min_value=1, max_value=16),
    n_agents=st.integers(min_value=1, max_value=4),
)
def test_partition_masks_form_a_disjoint_cover(seed, n_worlds, n_agents):
    structure = random_structure(seed, n_worlds=n_worlds, n_agents=n_agents)
    full = (1 << len(structure.worlds)) - 1
    for agent in structure.agents:
        masks = structure.partition_masks(agent)
        union = 0
        total_bits = 0
        for mask in masks:
            assert mask, "partition blocks are non-empty"
            assert union & mask == 0, "partition blocks overlap"
            union |= mask
            total_bits += mask.bit_count()
        assert union == full, "partition blocks do not cover the universe"
        assert total_bits == len(structure.worlds)


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_worlds=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
def test_structure_world_mask_round_trip(seed, n_worlds, data):
    structure = random_structure(seed, n_worlds=n_worlds)
    subset = data.draw(st.sets(st.sampled_from(structure.world_order())))
    mask = structure.world_mask(subset)
    assert structure.worlds_from_mask(mask) == frozenset(subset)
    assert structure.world_mask(structure.worlds_from_mask(mask)) == mask
    with pytest.raises(ModelError):
        structure.world_mask(["not-a-world"])


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_worlds=st.integers(min_value=1, max_value=16),
)
def test_class_mask_matches_equivalence_class(seed, n_worlds):
    structure = random_structure(seed, n_worlds=n_worlds)
    for agent in structure.agents:
        for world in structure.worlds:
            mask = structure.class_mask(agent, world)
            assert structure.worlds_from_mask(mask) == structure.equivalence_class(
                agent, world
            )


# ---------------------------------------------------------------------------
# Reachability closures
# ---------------------------------------------------------------------------


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_worlds=st.integers(min_value=1, max_value=14),
    n_agents=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_component_masks_match_reachable(seed, n_worlds, n_agents, data):
    structure = random_structure(seed, n_worlds=n_worlds, n_agents=n_agents)
    agents = sorted(structure.agents, key=repr)
    members = data.draw(
        st.sets(st.sampled_from(agents), min_size=1, max_size=len(agents))
    )
    group = Group(members)
    components = structure.component_masks(group)
    # The components partition the universe...
    union = 0
    for mask in components:
        assert union & mask == 0
        union |= mask
    assert union == (1 << len(structure.worlds)) - 1
    # ...and the component containing each world is exactly its reachable set.
    for world in structure.worlds:
        bit = 1 << structure.world_index(world)
        (component,) = [mask for mask in components if mask & bit]
        assert structure.worlds_from_mask(component) == structure.reachable(
            group, world
        )


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_worlds=st.integers(min_value=1, max_value=14),
    data=st.data(),
)
def test_backend_components_match_structure_reachable(seed, n_worlds, data):
    """The BitsetBackend's own closure (block merging) agrees with BFS reachability."""
    structure = random_structure(seed, n_worlds=n_worlds)
    agents = sorted(structure.agents, key=repr)
    members = tuple(
        sorted(
            data.draw(st.sets(st.sampled_from(agents), min_size=1)),
            key=repr,
        )
    )
    backend = BitsetBackend(
        structure.world_order(),
        {agent: structure.partition_map(agent) for agent in structure.agents},
    )
    body = data.draw(st.sets(st.sampled_from(structure.world_order())))
    body_mask = backend.from_frozenset(body)
    expected = frozenset(
        w
        for w in structure.worlds
        if structure.reachable(Group(members), w) <= frozenset(body)
    )
    assert backend.to_frozenset(backend.common_reachability(members, body_mask)) == expected
