"""JSONL trace ingestion: round trips and error paths.

The contract: ``ingest_text(dump_text(system))`` is the identity on
simulator-produced systems — same runs (events, uids, clocks, facts and all)
and therefore the same truth value for every formula at every point.  And a
malformed or ill-ordered trace raises :class:`~repro.errors.TraceError` with
the offending line number, never a bare traceback from deep inside the model
layer.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.scenarios.gossip import RECIPE as GOSSIP_RECIPE
from repro.scenarios.ok_protocol import build_ok_system
from repro.simulation.fuzz import (
    DELIVERY_KINDS,
    fuzz_formulas,
    fuzz_processors,
    random_system,
)
from repro.simulation.trace import (
    dump_lines,
    dump_path,
    dump_text,
    ingest_lines,
    ingest_path,
    ingest_text,
)
from repro.systems.interpretation import ViewBasedInterpretation


def assert_same_system(original, rebuilt):
    """Run-for-run structural equality (names, events, clocks, facts)."""
    assert rebuilt.name == original.name
    assert len(rebuilt.runs) == len(original.runs)
    for mine, theirs in zip(original.runs, rebuilt.runs):
        assert mine == theirs, f"run {mine.name!r} changed across the round trip"


def points_satisfying(system, formula):
    """The extension as comparable (run name, time) pairs."""
    interpretation = ViewBasedInterpretation(system)
    return {(run.name, time) for run, time in interpretation.extension(formula)}


# -- round trips -----------------------------------------------------------------


@pytest.mark.parametrize("kind", DELIVERY_KINDS)
def test_round_trip_is_identity_per_delivery_kind(kind):
    """Generated systems survive dump -> ingest exactly, for every delivery kind."""
    system = random_system(11, delivery=kind)
    rebuilt = ingest_text(dump_text(system))
    assert_same_system(system, rebuilt)


def test_round_trip_preserves_every_formula_everywhere():
    """Point-for-point semantic equivalence: same suite, same truth values."""
    system = random_system(7, delivery="unreliable")
    rebuilt = ingest_text(dump_text(system))
    for label, formula in fuzz_formulas(fuzz_processors(2)).items():
        assert points_satisfying(rebuilt, formula) == points_satisfying(
            system, formula
        ), f"truth values changed across the round trip for {label!r}"


def test_round_trip_preserves_clocks():
    """The OK protocol's synchronised clocks survive the trip (readings and all)."""
    system = build_ok_system(3)
    rebuilt = ingest_text(dump_text(system))
    assert_same_system(system, rebuilt)
    for run in rebuilt.runs:
        for processor in run.processors:
            assert run.clock(processor) is not None


def test_round_trip_preserves_tuple_payloads():
    """Tuple initial states and tuple message contents come back as tuples."""
    system = GOSSIP_RECIPE.build({"n": 3, "horizon": 3}).model
    rebuilt = ingest_text(dump_text(system))
    assert_same_system(system, rebuilt)


def test_dump_path_ingest_path(tmp_path):
    """The file-based entry points mirror the in-memory ones."""
    system = random_system(5, delivery="bounded")
    path = tmp_path / "trace.jsonl"
    dump_path(system, str(path))
    rebuilt = ingest_path(str(path))
    assert_same_system(system, rebuilt)


def test_ingest_name_override():
    """An explicit name= wins over the trace's own system header."""
    system = random_system(2)
    rebuilt = ingest_text(dump_text(system), name="renamed")
    assert rebuilt.name == "renamed"


def test_ingest_accepts_blank_lines():
    """Blank lines (trailing newlines, human editing) are ignored."""
    text = dump_text(random_system(2)).replace("\n", "\n\n")
    assert_same_system(random_system(2), ingest_text(text))


# -- error paths -----------------------------------------------------------------


def minimal_trace():
    """A hand-written two-line trace: one run, one send, one matching receive."""
    return [
        json.dumps({"type": "run", "run": "r", "processors": ["A", "B"], "duration": 2}),
        json.dumps(
            {
                "type": "send",
                "run": "r",
                "time": 0,
                "sender": "A",
                "recipient": "B",
                "content": "hi",
                "uid": 0,
            }
        ),
        json.dumps(
            {
                "type": "receive",
                "run": "r",
                "time": 1,
                "processor": "B",
                "sender": "A",
                "recipient": "B",
                "content": "hi",
                "uid": 0,
            }
        ),
    ]


def test_minimal_trace_ingests():
    system = ingest_lines(minimal_trace())
    assert [run.name for run in system.runs] == ["r"]


def test_invalid_json_names_the_line():
    with pytest.raises(TraceError, match="line 2: not valid JSON"):
        ingest_lines([minimal_trace()[0], "{not json"])


def test_non_object_line_rejected():
    with pytest.raises(TraceError, match="expected a JSON object"):
        ingest_lines(["[1, 2, 3]"])


def test_unknown_line_type_rejected():
    lines = minimal_trace() + [json.dumps({"type": "teleport", "run": "r", "time": 2})]
    with pytest.raises(TraceError, match="unknown line type 'teleport'"):
        ingest_lines(lines)


def test_event_before_run_header_rejected():
    with pytest.raises(TraceError, match="before any 'run' header"):
        ingest_lines(minimal_trace()[1:])


def test_system_header_after_runs_rejected():
    lines = minimal_trace() + [json.dumps({"type": "system", "name": "late"})]
    with pytest.raises(TraceError, match="'system' header must come before"):
        ingest_lines(lines)


def test_duplicate_run_header_rejected():
    lines = minimal_trace() + [minimal_trace()[0]]
    with pytest.raises(TraceError, match="duplicate run header for 'r'"):
        ingest_lines(lines)


def test_event_for_other_run_rejected():
    stray = json.loads(minimal_trace()[1])
    stray["run"] = "other"
    with pytest.raises(TraceError, match="traces are run-contiguous"):
        ingest_lines([minimal_trace()[0], json.dumps(stray)])


def test_out_of_order_times_rejected():
    lines = [minimal_trace()[0], minimal_trace()[2], minimal_trace()[1]]
    # receive at time 1 first, then send at time 0: ordering violation (and the
    # receive would also have no earlier send — ordering is reported first).
    with pytest.raises(TraceError, match="no earlier send|out-of-order"):
        ingest_lines(lines)


def test_time_outside_window_rejected():
    late = json.loads(minimal_trace()[1])
    late["time"] = 99
    with pytest.raises(TraceError, match="outside run 'r'"):
        ingest_lines([minimal_trace()[0], json.dumps(late)])


def test_unknown_processor_rejected():
    act = {"type": "act", "run": "r", "time": 0, "processor": "Z", "label": "go"}
    with pytest.raises(TraceError, match="unknown processor 'Z'"):
        ingest_lines([minimal_trace()[0], json.dumps(act)])


def test_duplicate_send_uid_rejected():
    lines = minimal_trace()[:2] + [minimal_trace()[1]]
    with pytest.raises(TraceError, match="duplicate send of message uid 0"):
        ingest_lines(lines)


def test_receive_without_send_rejected():
    with pytest.raises(TraceError, match="no earlier send"):
        ingest_lines([minimal_trace()[0], minimal_trace()[2]])


def test_receive_content_mismatch_rejected():
    tampered = json.loads(minimal_trace()[2])
    tampered["content"] = "forged"
    with pytest.raises(TraceError, match="does not match its send"):
        ingest_lines(minimal_trace()[:2] + [json.dumps(tampered)])


def test_receive_by_wrong_processor_rejected():
    hijacked = json.loads(minimal_trace()[2])
    hijacked["processor"] = "A"
    with pytest.raises(TraceError, match="addressed to 'B' but 'A' received it"):
        ingest_lines(minimal_trace()[:2] + [json.dumps(hijacked)])


def test_duplicate_delivery_rejected():
    doubled = json.loads(minimal_trace()[2])
    doubled["time"] = 2
    with pytest.raises(TraceError, match="duplicate delivery of message uid 0"):
        ingest_lines(minimal_trace() + [json.dumps(doubled)])


def test_negative_duration_rejected():
    header = json.loads(minimal_trace()[0])
    header["duration"] = -1
    with pytest.raises(TraceError, match="negative duration"):
        ingest_lines([json.dumps(header)])


def test_missing_processors_rejected():
    header = {"type": "run", "run": "r", "duration": 2}
    with pytest.raises(TraceError, match="non-empty 'processors' list"):
        ingest_lines([json.dumps(header)])


def test_bare_array_content_rejected():
    bad = json.loads(minimal_trace()[1])
    bad["content"] = [1, 2]
    with pytest.raises(TraceError, match="bare JSON arrays"):
        ingest_lines([minimal_trace()[0], json.dumps(bad)])


def test_non_integer_wake_time_rejected():
    header = json.loads(minimal_trace()[0])
    header["wake_times"] = {"A": 1.5}
    with pytest.raises(TraceError, match="wake time of 'A' must be an integer"):
        ingest_lines([json.dumps(header)])


def test_environment_maps_must_name_declared_processors():
    header = json.loads(minimal_trace()[0])
    header["initial_states"] = {"Z": 1}
    with pytest.raises(TraceError, match="initial_states mention unknown processors"):
        ingest_lines([json.dumps(header)])


def test_empty_trace_rejected():
    with pytest.raises(TraceError, match="contains no runs"):
        ingest_lines([])
    with pytest.raises(TraceError, match="contains no runs"):
        ingest_lines([json.dumps({"type": "system", "name": "empty"})])


def test_dump_lines_streams_valid_json():
    """Every dumped line parses as a JSON object with a known type."""
    for line in dump_lines(random_system(9, delivery="async")):
        record = json.loads(line)
        assert record["type"] in ("system", "run", "send", "receive", "act", "fact")
