"""Tests for the static formula checker, its CLI verb and the pre-flight wiring.

Covers the diagnostic framework (stable ``REP`` codes, severities, rendering),
the structural and scenario-signature checks of :mod:`repro.logic.check`, the
``repro check`` CLI verb's exit-code contract, the runner/sweep pre-flight
(including the no-worker-spawn pin), the DSL lint integration, the eval-time
positivity enforcement, and a checker-vs-evaluator differential over the seeded
random formula corpus.
"""

from __future__ import annotations

import json

import pytest

from _engine_gen import formula_suite, random_structure
from repro.analysis.diagnostics import (
    CODE_TABLE,
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    has_errors,
    render_diagnostic,
    render_diagnostics,
    summarize,
    worst_severity,
)
from repro.cli import main
from repro.errors import (
    CheckError,
    DSLError,
    EvaluationError,
    PositivityError,
    UnknownAgentError,
)
from repro.experiments import ExperimentRunner
from repro.experiments.registry import all_scenarios, get_scenario
from repro.experiments.supervise import FaultPolicy
from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import ModelChecker
from repro.logic.check import (
    KIND_KRIPKE,
    ScenarioSignature,
    check_formula,
    check_formulas,
    check_text,
)
from repro.logic.fixpoint import greatest_fixpoint, least_fixpoint
from repro.logic.syntax import (
    CommonEps,
    Eventually,
    Everyone,
    GreatestFixpoint,
    Iff,
    Knows,
    KnowsAt,
    Not,
    Prop,
    Var,
)

P = Prop("p")


def _forged(cls, variable, body):
    """A fixpoint node built without the constructor's positivity check.

    This is exactly what unpickling does, so the evaluator cannot rely on
    construction-time validation alone.
    """
    forged = object.__new__(cls)
    object.__setattr__(forged, "variable", variable)
    object.__setattr__(forged, "body", body)
    return forged


def run_cli(capsys, *argv):
    """Invoke the CLI in-process, returning (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def codes(diagnostics):
    return [d.code for d in diagnostics]


SIG = ScenarioSignature(agents=("a", "b"), horizon=3, name="sigtest")
KRIPKE_SIG = ScenarioSignature(agents=("a", "b"), kind=KIND_KRIPKE, name="sigtest")


# -- the Diagnostic dataclass and rendering ------------------------------------

def test_diagnostic_round_trips_through_dict():
    diag = Diagnostic(
        code="REP101",
        severity=SEVERITY_ERROR,
        message="unknown agent",
        path="Knows",
        hint="pick another",
        label="f1",
    )
    assert Diagnostic.from_dict(diag.to_dict()) == diag
    assert diag.is_error


def test_diagnostic_rejects_unknown_severity():
    with pytest.raises(ValueError):
        Diagnostic(code="REP101", severity="fatal", message="nope")


def test_render_carries_code_severity_label_and_hint():
    diag = Diagnostic(
        code="REP103",
        severity=SEVERITY_WARNING,
        message="late",
        path="KnowsAt",
        hint="earlier",
        label="f2",
    )
    line = render_diagnostic(diag)
    for fragment in ("REP103", "warning", "f2", "KnowsAt", "late", "earlier"):
        assert fragment in line


def test_render_diagnostics_orders_errors_first():
    warning = Diagnostic(code="REP201", severity=SEVERITY_WARNING, message="w")
    error = Diagnostic(code="REP002", severity=SEVERITY_ERROR, message="e")
    lines = render_diagnostics([warning, error])
    assert lines[0].startswith("REP002")


def test_severity_helpers():
    warning = Diagnostic(code="REP201", severity=SEVERITY_WARNING, message="w")
    error = Diagnostic(code="REP002", severity=SEVERITY_ERROR, message="e")
    assert not has_errors([warning])
    assert has_errors([warning], strict=True)
    assert has_errors([warning, error])
    assert worst_severity([warning, error]) == SEVERITY_ERROR
    assert worst_severity([]) is None
    assert summarize([warning, error]) == "1 error, 1 warning"


def test_every_emitted_code_is_in_the_table():
    for code in ("REP001", "REP002", "REP003", "REP004", "REP101", "REP102",
                 "REP103", "REP104", "REP105", "REP201"):
        assert code in CODE_TABLE


# -- structural checks ---------------------------------------------------------

def test_unbound_var_is_rep002():
    diagnostics = check_formula(Var("X"))
    assert codes(diagnostics) == ["REP002"]
    assert diagnostics[0].is_error
    assert "X" in diagnostics[0].message


def test_forged_nonpositive_fixpoint_is_rep003():
    bad = _forged(GreatestFixpoint, "X", Not(Var("X")))
    diagnostics = check_formula(bad)
    assert "REP003" in codes(diagnostics)


def test_constructor_still_rejects_nonpositive_fixpoint():
    with pytest.raises(PositivityError) as info:
        GreatestFixpoint("X", Not(Var("X")))
    assert info.value.variable == "X"


def test_parse_time_positivity_violation_is_rep003():
    formula, diagnostics = check_text("nu X. !X")
    assert formula is None
    assert codes(diagnostics) == ["REP003"]


def test_parse_error_is_rep001():
    formula, diagnostics = check_text("((")
    assert formula is None
    assert codes(diagnostics) == ["REP001"]


def test_shadowed_fixpoint_variable_is_rep004_warning():
    _formula, diagnostics = check_text("nu X. mu X. X")
    assert codes(diagnostics) == ["REP004"]
    assert not diagnostics[0].is_error


def test_fixpoint_variable_inside_iff_is_rep003():
    bad = _forged(GreatestFixpoint, "X", Iff(Var("X"), P))
    diagnostics = check_formula(bad)
    assert "REP003" in codes(diagnostics)


def test_clean_formula_has_no_diagnostics():
    formula, diagnostics = check_text("nu X. (p & E_{a,b} X)", SIG)
    assert formula is not None
    assert diagnostics == []


def test_deep_fixpoint_nesting_is_rep201_warning():
    _formula, diagnostics = check_text("nu A. mu B. nu C. (A & B & C)")
    assert "REP201" in codes(diagnostics)
    assert all(not d.is_error for d in diagnostics)


def test_double_nesting_warns_only_on_large_universes():
    text = "nu A. mu B. (A & B)"
    small = ScenarioSignature(agents=("a",), universe_size=8)
    large = ScenarioSignature(agents=("a",), universe_size=4096)
    assert "REP201" not in codes(check_text(text, small)[1])
    assert "REP201" in codes(check_text(text, large)[1])


# -- scenario-signature checks -------------------------------------------------

def test_unknown_agent_is_rep101():
    diagnostics = check_formula(Knows("z", P), SIG)
    assert codes(diagnostics) == ["REP101"]
    assert "{a, b}" in diagnostics[0].message


def test_unknown_group_member_is_rep101():
    diagnostics = check_formula(Everyone(("a", "z"), P), SIG)
    assert codes(diagnostics) == ["REP101"]


def test_fully_unknown_group_is_rep102():
    diagnostics = check_formula(Everyone(("x", "y"), P), SIG)
    assert "REP102" in codes(diagnostics)


def test_over_horizon_timestamp_is_rep103_error():
    diagnostics = check_formula(KnowsAt("a", P, 9), SIG)
    assert codes(diagnostics) == ["REP103"]
    assert diagnostics[0].is_error


def test_over_horizon_is_warning_under_custom_clocks():
    skewed = ScenarioSignature(agents=("a", "b"), horizon=3, custom_clocks=True)
    diagnostics = check_formula(KnowsAt("a", P, 9), skewed)
    assert codes(diagnostics) == ["REP103"]
    assert not diagnostics[0].is_error


def test_fractional_eps_is_rep104():
    diagnostics = check_formula(CommonEps(("a", "b"), P, 1.5), SIG)
    assert "REP104" in codes(diagnostics)


def test_temporal_operator_on_kripke_scenario_is_rep105():
    diagnostics = check_formula(Eventually(P), KRIPKE_SIG)
    assert codes(diagnostics) == ["REP105"]


def test_no_signature_skips_signature_checks():
    assert check_formula(Knows("z", P)) == []
    assert check_formula(Eventually(P)) == []


def test_check_formulas_accepts_all_batch_shapes():
    bad = Knows("z", P)
    for batch in ({"f": bad}, [("f", bad)], [bad]):
        assert codes(check_formulas(batch, SIG)) == ["REP101"]


# -- registered scenarios ------------------------------------------------------

def test_every_registered_scenario_suite_checks_clean():
    """The acceptance pin: every registered default suite is diagnostics-free."""
    specs = all_scenarios()
    assert len(specs) >= 12
    for spec in specs:
        signature = spec.signature_for(None)
        assert signature is not None, spec.name
        assert signature.name == spec.name
        diagnostics = check_formulas(spec.default_formulas(None), signature)
        assert diagnostics == [], (spec.name, render_diagnostics(diagnostics))


def test_muddy_children_signature_shape():
    signature = get_scenario("muddy_children").signature_for({"n": 4})
    assert signature.kind == KIND_KRIPKE
    assert signature.universe_size == 16
    assert signature.agents == tuple(f"child_{i}" for i in range(4))


# -- runner pre-flight ---------------------------------------------------------

def test_run_rejects_unknown_agent_pre_flight():
    with pytest.raises(CheckError, match="child_0") as info:
        ExperimentRunner().run(
            "muddy_children", {"n": 3}, formulas=["K_z at_least_one"]
        )
    assert any(d.code == "REP101" for d in info.value.diagnostics)


def test_run_rejects_over_horizon_timestamp_pre_flight():
    with pytest.raises(CheckError, match="REP103"):
        ExperimentRunner().run(
            "commit", {"horizon": 3}, formulas=["K@99_coordinator commit"]
        )


def test_invalid_sweep_batch_rejected_before_any_worker_spawns(monkeypatch):
    """The acceptance pin: pre-flight fires before the pool machinery."""
    import repro.experiments.parallel as parallel

    def boom(*args, **kwargs):
        raise AssertionError("worker pool was spawned for an invalid batch")

    monkeypatch.setattr(parallel, "iter_parallel_sweep", boom)
    with pytest.raises(CheckError, match="REP101"):
        ExperimentRunner().sweep(
            "muddy_children",
            {"n": [2, 3]},
            formulas=["K_z at_least_one"],
            jobs=2,
        )


def test_supervised_skip_sweep_keeps_per_point_quarantine():
    """Under --on-error skip the pre-flight steps aside: a batch can be invalid
    for only some grid points, so the quarantine machinery owns the failure."""
    reports = ExperimentRunner().sweep(
        "muddy_children",
        {"n": [2, 3]},
        formulas=["K_child_2 at_least_one"],  # exists for n=3, unknown for n=2
        policy=FaultPolicy(on_error="skip"),
    )
    by_n = {report.params["n"]: report for report in reports}
    assert by_n[2].error is not None
    assert by_n[3].error is None


# -- eval-time positivity enforcement ------------------------------------------

def test_engine_rejects_forged_nonpositive_fixpoint():
    model = others_attribute_model(("a", "b"))
    bad = _forged(GreatestFixpoint, "X", Not(Var("X")))
    with pytest.raises(EvaluationError, match="cannot iterate nu X"):
        ModelChecker(model).extension(bad)


def test_greatest_fixpoint_guards_against_nonmonotone_chains():
    universe = frozenset({1, 2, 3})

    def flapping(current):
        return frozenset({1}) if len(current) != 1 else frozenset({1, 2})

    with pytest.raises(EvaluationError, match="not monotone"):
        greatest_fixpoint(flapping, universe)


def test_least_fixpoint_guards_against_nonmonotone_chains():
    universe = frozenset({1, 2, 3})

    def shrinking(current):
        return frozenset() if current else frozenset({1})

    with pytest.raises(EvaluationError, match="not monotone"):
        least_fixpoint(shrinking, universe)


# -- the repro check CLI verb --------------------------------------------------

def test_check_default_suite_clean(capsys):
    code, out, _ = run_cli(capsys, "check", "muddy_children")
    assert code == 0
    assert "clean" in out


def test_check_all_scenarios(capsys):
    code, out, _ = run_cli(capsys, "check", "--all")
    assert code == 0
    for spec in all_scenarios():
        assert spec.name in out


def test_check_acceptance_distinct_codes_and_exit_one(capsys):
    """The acceptance pin: positivity, unknown agent and over-horizon all exit
    1 from the CLI with distinct stable codes; unbound Var gets its own code
    through the API (the parser reads unbound identifiers as propositions, so
    a textual formula cannot produce a free ``Var``)."""
    cases = [
        ("muddy_children", "nu X. !(E_{child_0,child_1} X)", "REP003"),
        ("muddy_children", "K_z at_least_one", "REP101"),
        ("commit", "K@99_coordinator commit", "REP103"),
    ]
    seen = set()
    for scenario, text, expected in cases:
        code, out, _ = run_cli(capsys, "check", scenario, "-f", text)
        assert code == 1, (scenario, text)
        assert expected in out
        seen.add(expected)
    seen.update(codes(check_formula(Var("X"))))
    assert seen == {"REP002", "REP003", "REP101", "REP103"}


def test_check_bare_formula_without_scenario(capsys):
    code, out, _ = run_cli(capsys, "check", "-f", "nu X. (p & K_a X)")
    assert code == 0
    code, out, _ = run_cli(capsys, "check", "-f", "nu X. !X")
    assert code == 1
    assert "REP003" in out


def test_check_json_payload(capsys):
    code, out, _ = run_cli(
        capsys, "check", "muddy_children", "-f", "K_z at_least_one", "--json"
    )
    assert code == 1
    payload = json.loads(out)
    assert payload["ok"] is False
    diagnostics = payload["results"][0]["diagnostics"]
    assert diagnostics[0]["code"] == "REP101"
    assert diagnostics[0]["severity"] == "error"


def test_check_strict_promotes_warnings(capsys):
    # phases has custom clocks, so an over-horizon timestamp is a warning:
    # clean exit normally, exit 1 under --strict.
    argv = ("check", "phases", "-f", "K@99_p1 decided")
    code, out, _ = run_cli(capsys, *argv)
    assert code == 0
    assert "REP103" in out
    code, out, _ = run_cli(capsys, *argv, "--strict")
    assert code == 1


def test_check_usage_errors_exit_two(capsys):
    assert run_cli(capsys, "check")[0] == 2
    assert run_cli(capsys, "check", "no_such_scenario")[0] == 2
    assert run_cli(capsys, "check", "muddy_children", "--all")[0] == 2
    assert run_cli(capsys, "check", "-f", "p", "-p", "n=3")[0] == 2


# -- DSL integration -----------------------------------------------------------

from repro.simulation.protocol import Action, Protocol


class _Ping(Protocol):
    """A sends one message to B at time 0 (the minimal recipe protocol)."""

    name = "ping"

    def step(self, processor, history, time):
        if processor == "A" and time == 0 and not history.sent_messages():
            return Action.send("B", "ping")
        return Action.nothing()


def _recipe(**overrides):
    from repro.scenarios.dsl import ScenarioRecipe
    from repro.simulation.network import ReliableSynchronous

    fields = dict(
        name="check_test_ping",
        summary="one message over a reliable link",
        section="test",
        processors=("A", "B"),
        protocol=_Ping(),
        horizon=2,
        delivery=ReliableSynchronous(1),
    )
    fields.update(overrides)
    return ScenarioRecipe(**fields)


def test_recipe_signature_for_reflects_the_recipe():
    signature = _recipe().signature_for()
    assert signature.agents == ("A", "B")
    assert signature.horizon == 2
    assert not signature.custom_clocks


def test_recipe_lint_flags_unknown_agents():
    diagnostics = _recipe(formulas={"bad": "K_zz delivered"}).lint()
    assert codes(diagnostics) == ["REP101"]


def test_recipe_validate_reports_structural_codes():
    with pytest.raises(DSLError, match="REP003"):
        _recipe(formulas={"bad": "nu X. !X"}).validate()


def test_recipe_register_rejects_failing_default_suite():
    with pytest.raises(DSLError, match="REP101"):
        _recipe(formulas={"bad": "K_zz delivered"}).register()
    # A failed register must not leave a half-registered scenario behind.
    with pytest.raises(Exception):
        get_scenario("check_test_ping")


# -- checker-vs-evaluator differential over the random corpus ------------------

def _corpus(seed, count=40):
    structure = random_structure(seed, n_worlds=10, n_agents=3, n_props=4)
    agents = sorted(structure.agents, key=repr)
    props = sorted(structure.propositions())
    signature = ScenarioSignature(
        agents=tuple(agents),
        kind=KIND_KRIPKE,
        universe_size=10,
        name=f"random-{seed}",
    )
    return structure, signature, formula_suite(seed, props, agents, count)


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_checker_passed_formulas_evaluate_cleanly(seed):
    """No false positives: a checker-clean formula evaluates on both backends."""
    structure, signature, suite = _corpus(seed)
    checkers = [
        ModelChecker(structure, backend=backend)
        for backend in ("frozenset", "bitset")
    ]
    for formula in suite:
        diagnostics = check_formula(formula, signature)
        assert not any(d.is_error for d in diagnostics), (
            formula,
            render_diagnostics(diagnostics),
        )
        for checker in checkers:
            checker.extension(formula)  # must not raise


@pytest.mark.parametrize("seed", [11, 22])
def test_semantic_evaluation_errors_are_flagged(seed):
    """No false negatives: mutations that make evaluation raise a semantic
    error are all flagged by the checker with an error diagnostic."""
    structure, signature, suite = _corpus(seed, count=6)
    mutations = [
        (Knows("nobody", suite[0]), "REP101"),
        # Not the And((suite[1], Var(...))) shape: the engine may short-circuit
        # an empty conjunct and legitimately never evaluate the free Var.
        (Not(Var("FREE")), "REP002"),
        (Eventually(suite[2]), "REP105"),
        (KnowsAt("a0", suite[3], 2), "REP105"),
        (_forged(GreatestFixpoint, "Z", Not(Var("Z"))), "REP003"),
    ]
    checkers = [
        ModelChecker(structure, backend=backend)
        for backend in ("frozenset", "bitset")
    ]
    for formula, expected in mutations:
        diagnostics = check_formula(formula, signature)
        assert any(d.code == expected and d.is_error for d in diagnostics), (
            formula,
            expected,
            render_diagnostics(diagnostics),
        )
        for checker in checkers:
            with pytest.raises((EvaluationError, UnknownAgentError)):
                checker.extension(formula)
