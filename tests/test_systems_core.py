"""Unit tests for the runs-and-systems substrate (runs, views, interpretations)."""

import pytest

from repro.errors import EvaluationError, ModelError, UnknownPointError
from repro.logic.syntax import (
    Always,
    C,
    CDiamond,
    CEps,
    D,
    E,
    Eventually,
    K,
    Not,
    prop,
)
from repro.systems.clocks import clocks_within, offset_clock, perfect_clock, validate_clock
from repro.systems.events import InternalEvent, Message, ReceiveEvent, SendEvent
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import LocalHistory, Point, Run, RunBuilder
from repro.systems.system import StaticValuation, System
from repro.systems.views import (
    ClockOnlyView,
    CompleteHistoryView,
    RecentEventsView,
    TrivialView,
)

DELIVERED = prop("delivered")


class TestClocks:
    def test_perfect_clock_reads_real_time(self):
        assert perfect_clock(3) == (0.0, 1.0, 2.0, 3.0)

    def test_offset_clock(self):
        assert offset_clock(2, 0.5) == (0.5, 1.5, 2.5)

    def test_validate_rejects_non_monotone(self):
        with pytest.raises(ModelError):
            validate_clock((0.0, 2.0, 1.0), 2)

    def test_validate_rejects_short_clock(self):
        with pytest.raises(ModelError):
            validate_clock((0.0,), 2)

    def test_clocks_within(self):
        assert clocks_within(perfect_clock(3), offset_clock(3, 0.5), 0.5)
        assert not clocks_within(perfect_clock(3), offset_clock(3, 2.0), 0.5)


class TestRunBuilder:
    def test_builder_produces_consistent_run(self):
        builder = RunBuilder("r0", ["A", "B"], duration=3)
        message = builder.send("A", "B", "hi", time=0)
        builder.deliver(message, time=1)
        builder.act("B", "ack-noted", time=2)
        builder.add_fact_from(1, "delivered")
        run = builder.build()
        assert run.history("B", 2).received_messages()[0].content == "hi"
        assert run.performed("B", "ack-noted")
        assert run.facts_at(0) == frozenset()
        assert run.facts_at(3) == frozenset({"delivered"})

    def test_histories_exclude_current_time_events(self):
        builder = RunBuilder("r0", ["A", "B"], duration=2)
        message = builder.send("A", "B", "hi", time=1)
        run = builder.build()
        assert run.history("A", 1).sent_messages() == ()
        assert run.history("A", 2).sent_messages() == (message,)

    def test_history_before_wake_up_is_empty(self):
        builder = RunBuilder("r0", ["A"], duration=3, wake_times={"A": 2})
        run = builder.build()
        assert not run.history("A", 1).awake
        assert run.history("A", 2).awake

    def test_histories_omit_real_time_without_clocks(self):
        """Two runs differing only in *when* an event happens yield equal histories."""
        early = RunBuilder("early", ["A", "B"], duration=4)
        message = early.send("A", "B", "hi", time=0)
        early.deliver(message, time=1)
        late = RunBuilder("late", ["A", "B"], duration=4)
        message2 = late.send("A", "B", "hi", time=0)
        late.deliver(message2, time=3)
        # B's history once it has received the message is the same object either way
        # except for the message uid, which we align by construction here.
        h_early = early.build().history("B", 2)
        h_late = late.build().history("B", 4)
        assert [e.message.content for _, e in h_early.events] == [
            e.message.content for _, e in h_late.events
        ]
        assert h_early.clock_readings is None

    def test_event_before_wakeup_is_rejected(self):
        with pytest.raises(ModelError):
            Run(
                "bad",
                ["A"],
                duration=2,
                wake_times={"A": 2},
                events={"A": {0: (InternalEvent("x"),)}},
            )

    def test_extends_relation(self):
        builder = RunBuilder("r0", ["A", "B"], duration=3)
        message = builder.send("A", "B", "hi", time=0)
        builder.deliver(message, time=1)
        delivered = builder.build()
        silent_builder = RunBuilder("r1", ["A", "B"], duration=3)
        silent_builder.send("A", "B", "hi", time=0)
        lost = silent_builder.build()
        assert lost.extends(Point(delivered, 1))
        assert not lost.extends(Point(delivered, 2))

    def test_message_count_and_receive_times(self):
        builder = RunBuilder("r0", ["A", "B"], duration=3)
        message = builder.send("A", "B", "hi", time=0)
        builder.deliver(message, time=2)
        run = builder.build()
        assert run.receive_times() == (2,)
        assert run.messages_received_before(2) == 0
        assert run.messages_received_before(3) == 1
        assert run.messages_received_before(100) == 1


class TestSystem:
    def _tiny_runs(self):
        delivered = RunBuilder("delivered", ["A", "B"], duration=2)
        message = delivered.send("A", "B", "hi", time=0)
        delivered.deliver(message, time=1)
        delivered.add_fact_from(1, "delivered")
        lost = RunBuilder("lost", ["A", "B"], duration=2)
        lost.send("A", "B", "hi", time=0)
        return delivered.build(), lost.build()

    def test_system_requires_matching_processors(self):
        run_a = RunBuilder("a", ["A"], duration=1).build()
        run_b = RunBuilder("b", ["B"], duration=1).build()
        with pytest.raises(ModelError):
            System([run_a, run_b])

    def test_points_and_lookup(self):
        delivered, lost = self._tiny_runs()
        system = System([delivered, lost])
        assert system.point_count() == 6
        assert system.run("lost") is lost
        with pytest.raises(UnknownPointError):
            system.run("missing")

    def test_runs_with_no_deliveries(self):
        delivered, lost = self._tiny_runs()
        system = System([delivered, lost])
        assert system.runs_with_no_deliveries() == (lost,)

    def test_static_valuation(self):
        delivered, lost = self._tiny_runs()
        valuation = StaticValuation({("delivered", 1): {"delivered"}})
        assert valuation.facts_at(Point(delivered, 1)) == frozenset({"delivered"})
        assert valuation.facts_at(Point(lost, 1)) == frozenset()


class TestViews:
    def test_trivial_view_identifies_everything(self):
        view = TrivialView()
        run = RunBuilder("r", ["A"], duration=2).build()
        assert view.view("A", run, 0) == view.view("A", run, 2)

    def test_clock_only_view_tracks_the_clock(self):
        run = RunBuilder(
            "r", ["A"], duration=2, clocks={"A": perfect_clock(2)}
        ).build()
        view = ClockOnlyView()
        assert view.view("A", run, 1) != view.view("A", run, 2)

    def test_recent_events_view_forgets_old_events(self):
        builder = RunBuilder("r", ["A", "B"], duration=4)
        m1 = builder.send("A", "B", "one", time=0)
        m2 = builder.send("A", "B", "two", time=1)
        builder.deliver(m1, time=1)
        builder.deliver(m2, time=2)
        run = builder.build()
        window1 = RecentEventsView(window=1)
        # After both receptions, a window-1 view only remembers the latest one, so the
        # view equals that of a run where only the second message was ever received.
        view_after_two = window1.view("B", run, 3)
        assert len(view_after_two[2]) == 1


class TestViewBasedInterpretation:
    def test_knowledge_of_delivery(self, lossy_two_processor_system, lossy_interpretation):
        system, interp = lossy_two_processor_system, lossy_interpretation
        delivered_run = next(r for r in system.runs if not r.no_messages_received())
        lost_run = next(r for r in system.runs if r.no_messages_received())
        assert interp.holds(K("B", DELIVERED), delivered_run, 2)
        assert not interp.holds(K("B", DELIVERED), lost_run, 2)
        assert not interp.holds(K("A", K("B", DELIVERED)), delivered_run, 3)

    def test_distributed_versus_individual_knowledge(self, lossy_two_processor_system):
        interp = ViewBasedInterpretation(lossy_two_processor_system)
        delivered_run = next(
            r for r in lossy_two_processor_system.runs if not r.no_messages_received()
        )
        # B alone knows `delivered`; hence the group has distributed knowledge of it
        # while A does not know it individually.
        assert interp.holds(D(("A", "B"), DELIVERED), delivered_run, 2)
        assert not interp.holds(K("A", DELIVERED), delivered_run, 2)

    def test_common_knowledge_never_arises_on_lossy_channel(self, lossy_interpretation):
        assert lossy_interpretation.extension(C(("A", "B"), DELIVERED)) == frozenset()

    def test_eventually_and_always(self, lossy_two_processor_system):
        interp = ViewBasedInterpretation(lossy_two_processor_system)
        delivered_run = next(
            r for r in lossy_two_processor_system.runs if not r.no_messages_received()
        )
        assert interp.holds(Eventually(DELIVERED), delivered_run, 0)
        assert interp.holds(Always(DELIVERED), delivered_run, 1)
        assert not interp.holds(Always(DELIVERED), delivered_run, 0)

    def test_diamond_common_knowledge_on_lossy_channel_fails(self, lossy_interpretation):
        assert lossy_interpretation.extension(CDiamond(("A", "B"), DELIVERED)) == frozenset()

    def test_eps_operators_require_known_group(self, lossy_interpretation):
        with pytest.raises(Exception):
            lossy_interpretation.extension(CEps(("A", "zebra"), DELIVERED, 1))

    def test_to_kripke_preserves_static_formulas(self, lossy_two_processor_system):
        interp = ViewBasedInterpretation(lossy_two_processor_system)
        structure = interp.to_kripke()
        from repro.kripke.checker import ModelChecker

        checker = ModelChecker(structure)
        for formula in (DELIVERED, K("B", DELIVERED), C(("A", "B"), DELIVERED)):
            kripke_worlds = checker.extension(formula)
            system_points = interp.extension(formula)
            translated = {(p.run.name, p.time) for p in system_points}
            assert translated == set(kripke_worlds)

    def test_holds_rejects_foreign_points(self, lossy_interpretation):
        foreign = RunBuilder("foreign", ["A", "B"], duration=1).build()
        with pytest.raises(UnknownPointError):
            lossy_interpretation.holds(DELIVERED, foreign, 0)

    def test_trivial_view_makes_valid_facts_common_knowledge(
        self, lossy_two_processor_system
    ):
        interp = ViewBasedInterpretation(lossy_two_processor_system, view=TrivialView())
        # `delivered` is not valid, so it is not common knowledge anywhere...
        assert interp.extension(C(("A", "B"), DELIVERED)) == frozenset()
        # ...but a tautology is common knowledge everywhere.
        tautology = DELIVERED | Not(DELIVERED)
        assert interp.is_valid(C(("A", "B"), tautology))
