"""The deterministic fault-injection harness (:mod:`repro.experiments.chaos`).

The harness is the test instrument the supervision suite leans on, so its own
contract is pinned tightly: strict config validation (a malformed config must
never silently skip its faults), content-addressed point matching, and
cross-process attempt counting for transient-then-succeed faults.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ChaosError, ChaosInjectedError
from repro.experiments import chaos
from repro.experiments.chaos import (
    ENV_VAR,
    ChaosFault,
    maybe_inject,
    parse_config,
)

POINT = ("muddy_children", {"n": 4, "k": 1, "announced": False}, "frozenset")


def set_chaos(monkeypatch, config):
    monkeypatch.setenv(ENV_VAR, json.dumps(config))


# -- config validation ----------------------------------------------------------


@pytest.mark.parametrize(
    "raw, match",
    [
        ("not json", "not valid JSON"),
        ('["raise"]', "object with a 'faults' list"),
        ('{"faults": {}}', "must be a list"),
        ('{"faults": [], "bogus": 1}', "unknown field"),
        ('{"faults": [[]]}', "must be an object"),
        ('{"faults": [{"kind": "explode"}]}', "kind must be one of"),
        ('{"faults": [{"kind": "raise", "typo": 1}]}', "unknown field"),
        ('{"faults": [{"kind": "raise", "params": 3}]}', "params must be an object"),
        ('{"faults": [{"kind": "raise", "failures": 0}]}', "positive integer"),
        ('{"faults": [{"kind": "hang", "hang_seconds": -1}]}', "positive number"),
        ('{"faults": [{"kind": "raise", "failures": 1}]}', "need a 'state_dir'"),
        ('{"faults": [], "state_dir": 3}', "path string"),
    ],
)
def test_malformed_configs_fail_loudly(raw, match):
    with pytest.raises(ChaosError, match=match):
        parse_config(raw)


def test_malformed_env_config_fails_at_injection_time(monkeypatch):
    """A bad REPRO_CHAOS must error on use, not silently disable the faults."""
    monkeypatch.setenv(ENV_VAR, "{broken")
    with pytest.raises(ChaosError, match="not valid JSON"):
        maybe_inject(*POINT)


# -- point matching -------------------------------------------------------------


def test_fault_matching_is_a_params_subset_with_optional_scenario_and_backend():
    fault = ChaosFault(kind="raise", params=(("n", 4),))
    assert fault.matches(*POINT)
    assert not fault.matches("muddy_children", {"n": 5}, "frozenset")
    assert not fault.matches("muddy_children", {"k": 1}, "frozenset")  # n absent
    scoped = ChaosFault(
        kind="raise", scenario="gossip", params=(("n", 4),), backend="bitset"
    )
    assert not scoped.matches(*POINT)
    assert scoped.matches("gossip", {"n": 4}, "bitset")


def test_unset_env_is_a_no_op(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    maybe_inject(*POINT)  # must not raise


def test_raise_fault_fires_only_at_its_point(monkeypatch):
    set_chaos(monkeypatch, {"faults": [{"kind": "raise", "params": {"n": 4}}]})
    with pytest.raises(ChaosInjectedError, match="injected failure"):
        maybe_inject(*POINT)
    maybe_inject("muddy_children", {"n": 5}, "frozenset")  # unaffected


def test_config_cache_follows_the_env_string(monkeypatch):
    set_chaos(monkeypatch, {"faults": [{"kind": "raise", "params": {"n": 4}}]})
    with pytest.raises(ChaosInjectedError):
        maybe_inject(*POINT)
    set_chaos(monkeypatch, {"faults": []})
    maybe_inject(*POINT)  # the old fault list must not linger in the cache


# -- counted (transient) faults -------------------------------------------------


def test_counted_fault_heals_after_its_quota(monkeypatch, tmp_path):
    state = tmp_path / "chaos-state"
    state.mkdir()
    set_chaos(
        monkeypatch,
        {
            "state_dir": str(state),
            "faults": [{"kind": "raise", "params": {"n": 4}, "failures": 2}],
        },
    )
    for _ in range(2):
        with pytest.raises(ChaosInjectedError):
            maybe_inject(*POINT)
    maybe_inject(*POINT)  # third and later attempts succeed
    maybe_inject(*POINT)
    # Attempt claims are plain files, one per attempt — the cross-process
    # counting mechanism pool workers rely on.
    assert len(list(state.iterdir())) == 4


def test_counted_faults_track_points_independently(monkeypatch, tmp_path):
    state = tmp_path / "chaos-state"
    state.mkdir()
    set_chaos(
        monkeypatch,
        {
            "state_dir": str(state),
            "faults": [{"kind": "raise", "failures": 1}],
        },
    )
    with pytest.raises(ChaosInjectedError):
        maybe_inject(*POINT)
    # A *different* grid point has its own attempt counter.
    with pytest.raises(ChaosInjectedError):
        maybe_inject("muddy_children", {"n": 5}, "frozenset")
    maybe_inject(*POINT)


def test_counted_fault_requires_existing_state_dir(monkeypatch, tmp_path):
    set_chaos(
        monkeypatch,
        {
            "state_dir": str(tmp_path / "missing"),
            "faults": [{"kind": "raise", "params": {"n": 4}, "failures": 1}],
        },
    )
    with pytest.raises(ChaosError, match="does not exist"):
        maybe_inject(*POINT)


def test_point_digest_is_deterministic_and_distinct():
    digest = chaos._point_digest(*POINT, fault_index=0)
    assert digest == chaos._point_digest(*POINT, fault_index=0)
    assert digest != chaos._point_digest(*POINT, fault_index=1)
    assert digest != chaos._point_digest(
        "muddy_children", {"n": 5}, "frozenset", fault_index=0
    )


def test_hang_fault_sleeps_then_proceeds(monkeypatch):
    """An unsupervised run of a hung point is slow, not wedged forever."""
    set_chaos(
        monkeypatch,
        {"faults": [{"kind": "hang", "params": {"n": 4}, "hang_seconds": 0.01}]},
    )
    maybe_inject(*POINT)  # returns after the (tiny) sleep
