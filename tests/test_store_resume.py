"""Crash/resume differentials: an interrupted sweep plus ``--resume`` equals
one uninterrupted run.

The store's durability claim is exercised under the two realistic failure
shapes:

* **Worker failure** — a scenario builder raises mid-grid (here: an
  env-var-gated poison point in a scratch scenario that otherwise delegates to
  ``muddy_children``), killing the sweep after some rows were recorded;
* **Hard process death** — a subprocess consumes part of a streamed sweep and
  ``os._exit``s without unwinding a single ``finally`` (no sqlite close, no
  WAL checkpoint).

In both cases the rows recorded before the failure must be durable, a resumed
sweep must evaluate *only* the missing grid points (pinned via the runner's
``eval_count``), and the merged rows must be identical — timing fields
excepted — to a sweep that never failed, serially and under ``--jobs 2``, on
both engine backends.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.errors import ScenarioError
from repro.experiments import (
    ExperimentRunner,
    ResultStore,
    get_scenario,
    register_scenario,
    unregister_scenario,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
POISON_ENV = "REPRO_TEST_POISON_N"
BACKENDS = ("frozenset", "bitset")
GRID = {"n": [2, 3, 4]}
GRID_POINTS = len(GRID["n"]) * len(BACKENDS)


def comparable(reports):
    """Everything a sweep promises deterministically (timings excluded)."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


@pytest.fixture
def fragile_scenario():
    """``muddy_children`` with an env-gated transient failure at ``n``.

    Setting ``REPRO_TEST_POISON_N=4`` makes the builder raise for ``n=4`` —
    in this process *and* in forked pool workers, which inherit the
    environment and this runtime registration.  Unsetting the variable makes
    the exact same grid point build normally, which is what lets a resumed
    sweep complete a grid whose first attempt died.
    """
    real = get_scenario("muddy_children")
    name = "muddy_children_fragile"

    @register_scenario(
        name,
        summary="muddy children with an injectable transient builder failure",
        section="tests",
        parameters=real.parameters,
        formulas=real.formulas,
    )
    def build(**params):
        if os.environ.get(POISON_ENV) == str(params["n"]):
            raise ScenarioError(
                f"injected transient failure at n={params['n']}"
            )
        return real.builder(**params)

    yield name
    unregister_scenario(name)


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_failure_then_resume_matches_uninterrupted(
    fragile_scenario, tmp_path, monkeypatch, jobs
):
    expected = ExperimentRunner().sweep(fragile_scenario, GRID, backends=BACKENDS)
    assert len(expected) == GRID_POINTS

    path = str(tmp_path / "results.sqlite")
    monkeypatch.setenv(POISON_ENV, "4")
    with ResultStore(path) as store:
        runner = ExperimentRunner(store=store)
        with pytest.raises(ScenarioError, match="injected transient failure"):
            runner.sweep(fragile_scenario, GRID, backends=BACKENDS, jobs=jobs)
        recorded = store.stats()["rows"]
    # The poison point (n=4, both backends) can never have been recorded; rows
    # streamed back before the failure must have been.  Under --jobs the
    # failing chunk may take neighbours down with it, so the exact count is
    # schedule-dependent — durability of completed-and-streamed rows is not.
    assert recorded < GRID_POINTS
    if jobs == 1:
        assert recorded == 2  # serial order: n=2, n=3 recorded, then the raise

    monkeypatch.delenv(POISON_ENV)
    with ResultStore(path) as store:
        resumed_runner = ExperimentRunner(store=store)
        resumed = resumed_runner.sweep(
            fragile_scenario, GRID, backends=BACKENDS, jobs=jobs
        )
        # Only the missing grid points were evaluated; the rest were served.
        assert resumed_runner.store_hits == recorded
        assert resumed_runner.eval_count == GRID_POINTS - recorded
        assert comparable(resumed) == comparable(expected)

        # And now the grid is complete: a further resume evaluates nothing.
        final_runner = ExperimentRunner(store=store)
        final = final_runner.sweep(
            fragile_scenario, GRID, backends=BACKENDS, jobs=jobs
        )
        assert final_runner.eval_count == 0
        assert final_runner.store_hits == GRID_POINTS
        assert all(report.from_store for report in final)
        assert comparable(final) == comparable(expected)


def test_hard_process_death_then_resume_matches_uninterrupted(tmp_path):
    """``os._exit`` mid-sweep loses nothing that was already streamed.

    The child process gets no chance to close the sqlite connection or
    checkpoint the WAL; per-``put`` commit durability is the only thing
    standing between the recorded rows and oblivion.
    """
    path = str(tmp_path / "results.sqlite")
    script = tmp_path / "die_mid_sweep.py"
    script.write_text(
        "import os, sys\n"
        "from repro.experiments import ExperimentRunner, ResultStore\n"
        "runner = ExperimentRunner(store=ResultStore(sys.argv[1]))\n"
        "stream = runner.iter_sweep('muddy_children', {'n': [2, 3, 4, 5]},\n"
        "                           backends=('frozenset',))\n"
        "next(stream)\n"
        "next(stream)\n"
        "os._exit(3)\n"
    )
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    completed = subprocess.run(
        [sys.executable, str(script), path],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 3, completed.stderr

    # The child recorded on its own process default (frozenset); pin the same
    # backend here so its rows resume this process's sweep whatever
    # --engine-backend the suite runs under.
    expected = ExperimentRunner().sweep(
        "muddy_children", {"n": [2, 3, 4, 5]}, backends=("frozenset",)
    )
    with ResultStore(path) as store:
        assert store.stats()["rows"] == 2  # exactly the two consumed reports
        resumed_runner = ExperimentRunner(store=store)
        resumed = resumed_runner.sweep(
            "muddy_children", {"n": [2, 3, 4, 5]}, backends=("frozenset",)
        )
        assert resumed_runner.eval_count == 2
        assert resumed_runner.store_hits == 2
        assert [report.from_store for report in resumed] == [
            True,
            True,
            False,
            False,
        ]
        assert comparable(resumed) == comparable(expected)


def test_cli_resume_completes_a_killed_cli_sweep(tmp_path, capsys):
    """End-to-end through the CLI: kill ``repro sweep --store`` mid-stream,
    then ``repro sweep --store --resume`` serves + completes the grid."""
    path = str(tmp_path / "results.sqlite")
    src = os.path.join(REPO_ROOT, "src")
    env = dict(os.environ, PYTHONPATH=src)
    # SIGKILL the CLI once it has printed (hence durably recorded) two rows.
    driver = tmp_path / "kill_mid_sweep.py"
    driver.write_text(
        "import json, os, signal, subprocess, sys\n"
        "proc = subprocess.Popen(\n"
        "    [sys.executable, '-m', 'repro.cli', 'sweep', 'muddy_children',\n"
        "     '-g', 'n=2,3,4', '--backends', 'frozenset',\n"
        "     '--store', sys.argv[1], '--json'],\n"
        "    stdout=subprocess.PIPE, text=True)\n"
        "rows = 0\n"
        "while rows < 2:\n"
        "    line = proc.stdout.readline()\n"
        "    rows += line.count('\"scenario\"')\n"
        "proc.send_signal(signal.SIGKILL)\n"
        "proc.wait()\n"
        "sys.exit(0)\n"
    )
    completed = subprocess.run(
        [sys.executable, str(driver), path],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr

    code = cli_main(
        ["sweep", "muddy_children", "-g", "n=2,3,4", "--backends", "frozenset",
         "--store", path, "--resume", "--json"]
    )
    out = capsys.readouterr().out
    assert code == 0
    reports = json.loads(out)
    assert len(reports) == 3
    # At least the two rows the driver saw printed were served from the store.
    assert sum(report["from_store"] for report in reports) >= 2
    assert [report["params"]["n"] for report in reports] == [2, 3, 4]


def test_concurrent_sweeps_sharing_one_store_match_isolated_runs(tmp_path):
    """Two simultaneous ``--jobs 2`` CLI sweeps writing the same store file.

    Maximum contention: identical grids, so every canonical request key is
    raced by both processes (plus their pool workers).  Both sweeps must
    finish cleanly, the store must end up with exactly one row per grid
    point, and the recorded rows must be identical to an isolated run's.
    """
    path = str(tmp_path / "shared.sqlite")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    argv = [
        sys.executable, "-m", "repro", "sweep", "muddy_children",
        "-g", "n=2,3,4,5", "--backends", "frozenset", "--jobs", "2",
        "--store", path, "--json",
    ]
    first = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    second = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    outputs = []
    for proc in (first, second):
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        outputs.append(json.loads(out))
    for payload in outputs:
        assert [report["params"]["n"] for report in payload] == [2, 3, 4, 5]

    expected = ExperimentRunner().sweep(
        "muddy_children", {"n": [2, 3, 4, 5]}, backends=("frozenset",)
    )
    with ResultStore(path) as store:
        # One row per grid point — racing writers never duplicate a key.
        assert store.stats()["rows"] == len(expected)
        runner = ExperimentRunner(store=store)
        merged = runner.sweep(
            "muddy_children", {"n": [2, 3, 4, 5]}, backends=("frozenset",)
        )
        assert runner.eval_count == 0
        assert all(report.from_store for report in merged)
        assert comparable(merged) == comparable(expected)


def test_store_shared_between_serial_and_parallel_runs(tmp_path):
    """Rows recorded by a parallel sweep resume a serial one, and vice versa."""
    path = str(tmp_path / "results.sqlite")
    with ResultStore(path) as store:
        parallel_runner = ExperimentRunner(store=store)
        fresh = parallel_runner.sweep("muddy_children", GRID, jobs=2)
        assert parallel_runner.eval_count == len(fresh)

    with ResultStore(path) as store:
        serial_runner = ExperimentRunner(store=store)
        serial = serial_runner.sweep("muddy_children", GRID)
        assert serial_runner.eval_count == 0
        assert all(report.from_store for report in serial)
        assert comparable(serial) == comparable(fresh)

        wider = ExperimentRunner(store=store)
        grown = wider.sweep("muddy_children", {"n": [2, 3, 4, 5]}, jobs=2)
        assert wider.eval_count == 1  # only n=5 is new
        assert comparable(grown[:3]) == comparable(fresh)
