"""Unit tests for the formula AST (repro.logic.syntax)."""

import pytest

from repro.errors import FormulaError
from repro.logic.agents import Group, as_group
from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    C,
    CDiamond,
    CEps,
    CT,
    Common,
    D,
    E,
    EDiamond,
    EEps,
    ET,
    Everyone,
    Implies,
    K,
    KT,
    Knows,
    Mu,
    Not,
    Nu,
    Or,
    Prop,
    S,
    Var,
    conjunction,
    disjunction,
    prop,
    props,
)


class TestGroups:
    def test_group_is_order_insensitive(self):
        assert Group(["a", "b"]) == Group(["b", "a"])

    def test_group_rejects_empty(self):
        with pytest.raises(FormulaError):
            Group([])

    def test_as_group_treats_string_as_single_agent(self):
        assert as_group("alice").members == frozenset({"alice"})

    def test_as_group_accepts_iterables(self):
        assert as_group(["a", "b"]).members == frozenset({"a", "b"})

    def test_group_set_operations(self):
        g = Group(["a", "b"])
        assert g.union(["c"]).members == frozenset({"a", "b", "c"})
        assert g.without("a").members == frozenset({"b"})
        assert g.issubset(["a", "b", "c"])


class TestConstruction:
    def test_structural_equality(self):
        p = prop("p")
        assert K("a", p) == K("a", p)
        assert K("a", p) != K("b", p)
        assert C(["a", "b"], p) == C(["b", "a"], p)

    def test_formulas_are_hashable(self):
        p, q = props("p", "q")
        formulas = {K("a", p), K("a", p), K("a", q)}
        assert len(formulas) == 2

    def test_operator_overloads(self):
        p, q = props("p", "q")
        assert isinstance(~p, Not)
        assert isinstance(p & q, And)
        assert isinstance(p | q, Or)
        assert isinstance(p >> q, Implies)

    def test_e_power_builds_nested_everyone(self):
        p = prop("p")
        nested = E(["a", "b"], p, 3)
        assert isinstance(nested, Everyone)
        assert isinstance(nested.operand, Everyone)
        assert isinstance(nested.operand.operand, Everyone)
        assert nested.operand.operand.operand == p

    def test_e_power_rejects_zero(self):
        with pytest.raises(FormulaError):
            E(["a"], prop("p"), 0)

    def test_prop_requires_nonempty_name(self):
        with pytest.raises(FormulaError):
            Prop("")

    def test_bool_conversion_is_an_error(self):
        with pytest.raises(FormulaError):
            bool(prop("p"))

    def test_formulas_are_immutable(self):
        p = prop("p")
        with pytest.raises(AttributeError):
            p.name = "q"

    def test_conjunction_and_disjunction_of_empty(self):
        assert conjunction([]) == TRUE
        assert disjunction([]) == FALSE

    def test_conjunction_of_single_formula_is_identity(self):
        p = prop("p")
        assert conjunction([p]) == p
        assert disjunction([p]) == p


class TestStructure:
    def test_atoms(self):
        p, q = props("p", "q")
        formula = K("a", p) & C(["a", "b"], q)
        assert formula.atoms() == frozenset({"p", "q"})

    def test_agents(self):
        p = prop("p")
        formula = K("a", p) & D(["b", "c"], p) & KT("d", p, 3.0)
        assert formula.agents() == frozenset({"a", "b", "c", "d"})

    def test_size_and_depth(self):
        p = prop("p")
        formula = K("a", K("b", p))
        assert formula.size() == 3
        assert formula.depth() == 2
        assert p.depth() == 0

    def test_is_epistemic_free(self):
        p, q = props("p", "q")
        assert (p & ~q).is_epistemic_free()
        assert not K("a", p).is_epistemic_free()
        assert not CDiamond(["a", "b"], p).is_epistemic_free()

    def test_free_variables(self):
        p = prop("p")
        open_formula = Var("X") & p
        assert open_formula.free_variables() == frozenset({"X"})
        closed = Nu("X", Everyone(["a"], p & Var("X")))
        assert closed.free_variables() == frozenset()


class TestFixpointSyntax:
    def test_negative_occurrence_is_rejected(self):
        p = prop("p")
        with pytest.raises(FormulaError):
            Nu("X", ~Var("X"))

    def test_positive_occurrence_under_double_negation_is_accepted(self):
        formula = Nu("X", ~~Var("X"))
        assert formula.variable == "X"

    def test_occurrence_in_antecedent_is_negative(self):
        p = prop("p")
        with pytest.raises(FormulaError):
            Mu("X", Var("X") >> p)

    def test_rebinding_shadows_outer_variable(self):
        inner = Nu("X", Var("X"))
        outer = Nu("X", Everyone(["a"], inner))
        assert outer.free_variables() == frozenset()


class TestTemporalOperators:
    def test_eps_operators_record_eps(self):
        p = prop("p")
        assert CEps(["a", "b"], p, 2).eps == 2
        assert EEps(["a", "b"], p, 0).eps == 0
        with pytest.raises(FormulaError):
            CEps(["a"], p, -1)

    def test_timestamped_operators_record_timestamp(self):
        p = prop("p")
        assert CT(["a", "b"], p, 5.0).timestamp == 5.0
        assert ET(["a"], p, 1.5).timestamp == 1.5
        assert KT("a", p, 2.0).timestamp == 2.0

    def test_diamond_operators_have_groups(self):
        p = prop("p")
        assert CDiamond(["a", "b"], p).group == as_group(["a", "b"])
        assert EDiamond(["a"], p).group == as_group("a")

    def test_distinct_eps_values_distinct_formulas(self):
        p = prop("p")
        assert CEps(["a"], p, 1) != CEps(["a"], p, 2)


class TestRepr:
    def test_repr_round_trips_basic_shapes(self):
        p = prop("p")
        assert "K_a" in repr(K("a", p))
        assert "C_" in repr(C(["a", "b"], p))
        assert "nu" in repr(Nu("X", Var("X")))
