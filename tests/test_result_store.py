"""The persistent result store: key stability, round-trips, and error paths.

Three families of guarantees live here:

* **Key stability** — :class:`~repro.experiments.store.StoreKey` is the
  store's entire correctness story: two requests share a row exactly when
  their keys agree.  Property tests over seeded random formula batches pin
  that the key round-trips every component (``params_from_key``,
  ``parse(pretty(f))``), ignores dict spelling order and the hash seed of the
  computing process, and changes whenever *any* of its six components does.
* **Store behaviour** — put/get round-trips, the runner's resume semantics
  (``eval_count``/``store_hits`` bookkeeping, ``resume=False`` write-only
  mode, the ``--no-store`` bypass), and the CLI ``store stats``/``gc``
  surface.
* **Error paths** — garbage files, truncated databases, semantics-version
  and schema-version mismatches must fail with a :class:`StoreError` that
  names the offending path and a remedy, never a bare sqlite traceback.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import sqlite3
import subprocess
import sys

import pytest

from test_pretty_roundtrip import generate

from repro.cli import main as cli_main
from repro.errors import FormulaError, StoreError
from repro.experiments import (
    SCHEMA_VERSION,
    SEMANTICS_VERSION,
    ExperimentRunner,
    ResultStore,
    StoreKey,
    get_scenario,
    params_from_key,
    params_to_key,
)
from repro.logic.parser import parse
from repro.logic.pretty import pretty
from repro.logic.syntax import Knows, Prop


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def comparable(reports):
    """Everything a report promises deterministically (timings excluded)."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


def random_request(seed):
    """A seeded random evaluation request: validated params + formula batch."""
    rng = random.Random(seed)
    spec = get_scenario("muddy_children")
    validated = spec.validate_params({"n": rng.randint(2, 6)})
    batch = [
        (f"f{i}", generate(rng, rng.randint(1, 3)))
        for i in range(rng.randint(1, 4))
    ]
    backend = rng.choice(("frozenset", "bitset"))
    minimize = rng.choice((False, True))
    return spec, validated, batch, backend, minimize


# -- key stability -------------------------------------------------------------


@pytest.mark.parametrize("seed", range(25))
def test_store_key_round_trips_every_component(seed):
    """Params and formulas are recoverable from the key — nothing is lossy."""
    spec, validated, batch, backend, minimize = random_request(seed)
    key = StoreKey.for_request(
        spec.name, params_to_key(validated), batch, backend, minimize
    )
    assert key.scenario == spec.name
    assert params_from_key(key.params) == validated
    assert key.backend == backend
    assert key.minimize == minimize
    assert key.semantics_version == SEMANTICS_VERSION
    assert len(key.formulas) == len(batch)
    for (label, formula), (key_label, text) in zip(batch, key.formulas):
        assert key_label == label
        assert parse(text) == formula


@pytest.mark.parametrize("seed", range(25))
def test_store_key_is_content_addressed(seed):
    """Structurally equal requests digest identically, however they were built.

    The params dict is re-spelled in reversed insertion order and every
    formula is rebuilt from its own pretty-printed text; neither may move the
    digest, because neither changes the request.
    """
    spec, validated, batch, backend, minimize = random_request(seed)
    key = StoreKey.for_request(
        spec.name, params_to_key(validated), batch, backend, minimize
    )
    reordered = dict(reversed(list(validated.items())))
    rebuilt_batch = [(label, parse(pretty(formula))) for label, formula in batch]
    rebuilt = StoreKey.for_request(
        spec.name, params_to_key(reordered), rebuilt_batch, backend, minimize
    )
    assert rebuilt == key
    assert rebuilt.digest == key.digest


def test_store_key_stable_across_processes(tmp_path):
    """The digest is a function of the request, not of the computing process.

    A worker process must derive the same content address the parent did, or
    resumed sweeps would silently re-evaluate everything.  Re-deriving the
    digest under two different fixed hash seeds also rules out any dependence
    on ``PYTHONHASHSEED`` (i.e. on set/dict iteration order).
    """
    spec = get_scenario("muddy_children")
    validated = spec.validate_params({"n": 3})
    batch = list(spec.default_formulas(validated).items())
    key = StoreKey.for_request(
        spec.name, params_to_key(validated), batch, "frozenset", False
    )
    script = tmp_path / "digest_of.py"
    script.write_text(
        "from repro.experiments import StoreKey, get_scenario, params_to_key\n"
        "spec = get_scenario('muddy_children')\n"
        "params = spec.validate_params({'n': 3})\n"
        "batch = list(spec.default_formulas(params).items())\n"
        "key = StoreKey.for_request(\n"
        "    spec.name, params_to_key(params), batch, 'frozenset', False)\n"
        "print(key.digest)\n"
    )
    for hash_seed in ("0", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src
        completed = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip() == key.digest


def test_store_key_changes_with_every_component():
    """Each of the six key components moves the digest on its own."""
    spec = get_scenario("muddy_children")
    validated = spec.validate_params({"n": 3})
    batch = [("goal", Knows("child_0", Prop("muddy_0")))]

    def key(scenario=spec.name, params=None, formulas=batch,
            backend="frozenset", minimize=False):
        return StoreKey.for_request(
            scenario,
            params_to_key(spec.validate_params(params) if params else validated),
            formulas,
            backend,
            minimize,
        )

    base = key()
    variants = [
        key(scenario="coordinated_attack"),
        key(params={"n": 4}),
        key(formulas=[("renamed", batch[0][1])]),
        key(formulas=[("goal", Knows("child_1", Prop("muddy_0")))]),
        key(backend="bitset"),
        key(minimize=True),
        dataclasses.replace(base, semantics_version=SEMANTICS_VERSION + 1),
    ]
    digests = {base.digest} | {variant.digest for variant in variants}
    assert len(digests) == len(variants) + 1


# -- store behaviour -----------------------------------------------------------


def test_put_get_round_trip_across_connections(tmp_path):
    """A report survives the sqlite round trip and a fresh connection."""
    path = str(tmp_path / "results.sqlite")
    runner = ExperimentRunner(store=ResultStore(path))
    report = runner.run("muddy_children", {"n": 3})
    assert not report.from_store
    runner.store.close()

    spec = get_scenario("muddy_children")
    validated = spec.validate_params({"n": 3})
    key = StoreKey.for_request(
        spec.name,
        params_to_key(validated),
        list(spec.default_formulas(validated).items()),
        report.backend,  # whatever the suite's --engine-backend resolved to
        False,
    )
    with ResultStore(path) as store:
        assert key in store
        served = store.get(key)
        assert served is not None
        assert served.from_store
        assert comparable([served]) == comparable([report])
        # Recorded timings are preserved verbatim, not re-measured.
        assert served.eval_seconds == report.eval_seconds
        missing = dataclasses.replace(key, minimize=True)
        assert missing not in store
        assert store.get(missing) is None


def test_runner_resume_bookkeeping(tmp_path):
    """Second identical run is served from the store: zero new evaluations."""
    store = ResultStore(str(tmp_path / "results.sqlite"))
    runner = ExperimentRunner(store=store)
    first = runner.run("muddy_children", {"n": 3})
    again = runner.run("muddy_children", {"n": 3})
    assert runner.eval_count == 1
    assert runner.store_hits == 1
    assert not first.from_store and again.from_store
    assert comparable([again]) == comparable([first])
    store.close()


def test_runner_resume_false_records_but_reevaluates(tmp_path):
    """``resume=False`` keeps the store write-only: record always, read never."""
    store = ResultStore(str(tmp_path / "results.sqlite"))
    runner = ExperimentRunner(store=store, resume=False)
    runner.run("muddy_children", {"n": 3})
    again = runner.run("muddy_children", {"n": 3})
    assert runner.eval_count == 2
    assert runner.store_hits == 0
    assert not again.from_store
    assert store.stats()["rows"] == 1
    store.close()


def test_non_canonical_formula_bypasses_store(tmp_path):
    """A formula the pretty-printer refuses cannot be keyed — run it fresh."""
    awkward = Prop("not a name")  # no concrete-syntax spelling
    with pytest.raises(FormulaError):
        pretty(awkward)
    store = ResultStore(str(tmp_path / "results.sqlite"))
    runner = ExperimentRunner(store=store)
    report = runner.run("muddy_children", {"n": 2}, formulas=[("odd", awkward)])
    again = runner.run("muddy_children", {"n": 2}, formulas=[("odd", awkward)])
    assert [row.label for row in report.rows] == ["odd"]
    assert runner.eval_count == 2  # never served from the store...
    assert store.stats()["rows"] == 0  # ...and never recorded in it
    assert not again.from_store
    store.close()


# -- the CLI surface -----------------------------------------------------------


def test_cli_resume_needs_a_store(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    code, _, err = run_cli(capsys, "sweep", "muddy_children", "-g", "n=2", "--resume")
    assert code == 2
    assert "--store" in err and "REPRO_STORE" in err


def test_cli_sweep_store_resume_round_trip(tmp_path, capsys):
    path = str(tmp_path / "results.sqlite")
    fresh_code, fresh_out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3",
        "--store", path, "--resume", "--json",
    )
    resumed_code, resumed_out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3",
        "--store", path, "--resume", "--json",
    )
    assert fresh_code == 0 and resumed_code == 0
    fresh = json.loads(fresh_out)
    resumed = json.loads(resumed_out)
    assert [r["from_store"] for r in fresh] == [False, False]
    assert [r["from_store"] for r in resumed] == [True, True]

    def strip(reports):
        return [
            {
                k: v
                for k, v in report.items()
                if not k.endswith("_seconds") and k != "from_store"
            }
            for report in reports
        ]

    assert strip(resumed) == strip(fresh)


def test_cli_no_store_bypasses_even_the_env_default(tmp_path, capsys, monkeypatch):
    path = str(tmp_path / "env.sqlite")
    monkeypatch.setenv("REPRO_STORE", path)
    code, _, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2", "--no-store", "--json"
    )
    assert code == 0
    assert not os.path.exists(path)  # bypass means no store is even created
    code, out, _ = run_cli(capsys, "sweep", "muddy_children", "-g", "n=2", "--json")
    assert code == 0
    assert os.path.exists(path)  # REPRO_STORE is the default sink
    assert json.loads(out)[0]["from_store"] is False  # recorded, not read


def test_cli_store_stats_and_gc(tmp_path, capsys):
    path = str(tmp_path / "results.sqlite")
    code, _, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3", "--store", path
    )
    assert code == 0

    code, out, _ = run_cli(capsys, "store", "stats", path, "--json")
    assert code == 0
    stats = json.loads(out)
    assert stats["rows"] == 2 and stats["stale_rows"] == 0
    assert stats["meta"]["schema_version"] == str(SCHEMA_VERSION)
    assert stats["meta"]["semantics_version"] == str(SEMANTICS_VERSION)
    assert stats["slices"] == [
        {
            "scenario": "muddy_children",
            "backend": "frozenset",  # the CLI's explicit --backends default
            "minimized": False,
            "rows": 2,
        }
    ]

    code, _, err = run_cli(capsys, "store", "gc", path)
    assert code == 2 and "selector" in err

    code, out, _ = run_cli(capsys, "store", "gc", path, "--scenario", "gossip")
    assert code == 0 and "removed 0 row(s); 2 remaining" in out
    code, out, _ = run_cli(
        capsys, "store", "gc", path, "--scenario", "muddy_children", "--json"
    )
    assert code == 0
    assert json.loads(out) == {"removed": 2, "remaining": 0}


def test_cli_store_stats_refuses_to_create(tmp_path, capsys):
    """Inspecting a path that holds no store must not conjure an empty one."""
    path = str(tmp_path / "nothing_here.sqlite")
    code, _, err = run_cli(capsys, "store", "stats", path)
    assert code == 2
    assert "no result store" in err and "nothing_here.sqlite" in err
    assert not os.path.exists(path)


# -- error paths ---------------------------------------------------------------


def test_garbage_file_raises_store_error(tmp_path):
    path = tmp_path / "garbage.sqlite"
    path.write_bytes(b"this is not a sqlite database at all\n")
    with pytest.raises(StoreError) as excinfo:
        ResultStore(str(path))
    message = str(excinfo.value)
    assert str(path) in message
    assert "delete the file" in message and "--no-store" in message


def test_foreign_sqlite_database_raises_store_error(tmp_path):
    """A valid sqlite file that is not a result store is refused by name."""
    path = tmp_path / "other.sqlite"
    conn = sqlite3.connect(str(path))
    conn.execute("CREATE TABLE unrelated (x)")
    conn.commit()
    conn.close()
    with pytest.raises(StoreError, match="meta/results tables"):
        ResultStore(str(path))


def test_truncated_store_raises_store_error(tmp_path):
    path = str(tmp_path / "results.sqlite")
    runner = ExperimentRunner(store=ResultStore(path))
    runner.run("muddy_children", {"n": 3})
    runner.store.close()
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
    with pytest.raises(StoreError) as excinfo:
        ResultStore(path)
    assert path in str(excinfo.value)


def _tamper(path, sql, *values):
    conn = sqlite3.connect(path)
    conn.execute(sql, values)
    conn.commit()
    conn.close()


def test_semantics_mismatch_refuses_with_remedy(tmp_path, capsys):
    """A store from other semantics refuses to serve; ``gc --stale`` heals it."""
    path = str(tmp_path / "results.sqlite")
    runner = ExperimentRunner(store=ResultStore(path))
    runner.run("muddy_children", {"n": 3})
    runner.store.close()
    _tamper(path, "UPDATE meta SET value = '999' WHERE key = 'semantics_version'")
    _tamper(path, "UPDATE results SET semantics_version = 999")

    with pytest.raises(StoreError) as excinfo:
        ResultStore(path)
    message = str(excinfo.value)
    assert path in message
    assert "semantics version 999" in message
    assert f"semantics version {SEMANTICS_VERSION}" in message
    assert "repro store gc --stale" in message

    # stats still works (inspection skips the semantics check) and counts them.
    code, out, _ = run_cli(capsys, "store", "stats", path, "--json")
    assert code == 0 and json.loads(out)["stale_rows"] == 1

    # The named remedy prunes the orphaned rows and re-stamps the meta table.
    code, out, _ = run_cli(capsys, "store", "gc", path, "--stale")
    assert code == 0 and "removed 1 row(s); 0 remaining" in out
    with ResultStore(path) as healed:  # opens normally again
        assert healed.stats()["rows"] == 0
        assert healed.meta["semantics_version"] == str(SEMANTICS_VERSION)


def test_schema_mismatch_refuses(tmp_path):
    path = str(tmp_path / "results.sqlite")
    ResultStore(path).close()
    _tamper(path, "UPDATE meta SET value = '0' WHERE key = 'schema_version'")
    with pytest.raises(StoreError) as excinfo:
        ResultStore(path)
    message = str(excinfo.value)
    assert "store schema version 0" in message
    assert f"expects {SCHEMA_VERSION}" in message


def test_closed_store_raises(tmp_path):
    store = ResultStore(str(tmp_path / "results.sqlite"))
    store.close()
    store.close()  # idempotent
    with pytest.raises(StoreError, match="closed"):
        store.stats()


def test_store_is_usable_from_many_threads(tmp_path):
    # The evaluation service runs model checks on a thread pool sharing one
    # store.  sqlite connections are not shareable across threads, so the
    # store hands each thread its own lazily-opened connection; before that
    # fix this hammer died with "SQLite objects created in a thread can
    # only be used in that same thread".
    import threading

    store = ResultStore(str(tmp_path / "threads.sqlite"))
    runner = ExperimentRunner(store=store, resume=True)
    errors = []
    barrier = threading.Barrier(8)

    def work(index):
        try:
            barrier.wait(timeout=30)
            for n in (2, 3, 4):
                report = runner.run("muddy_children", {"n": n, "k": 1})
                assert report.rows
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    # every thread saw all three rows; only three evaluations were persisted
    assert store.stats()["rows"] == 3
    assert runner.eval_count + runner.store_hits == 8 * 3
    store.close()


def test_close_invalidates_every_threads_connection(tmp_path):
    # close() must be global: a connection lazily opened by another thread
    # is closed too, and later use from any thread is a StoreError, not a
    # half-alive sqlite handle
    import threading

    store = ResultStore(str(tmp_path / "closed.sqlite"))
    opened = threading.Event()
    release = threading.Event()
    results = {}

    def other_thread():
        results["conn"] = store.connection  # lazily opens this thread's conn
        opened.set()
        release.wait(timeout=30)
        try:
            store.connection
        except StoreError as error:
            results["error"] = error

    thread = threading.Thread(target=other_thread)
    thread.start()
    assert opened.wait(timeout=30)
    store.close()
    release.set()
    thread.join(timeout=30)
    assert "error" in results
    with pytest.raises(sqlite3.ProgrammingError):
        results["conn"].execute("SELECT 1")  # the foreign conn is truly closed


def test_gc_requires_a_selector(tmp_path):
    with ResultStore(str(tmp_path / "results.sqlite")) as store:
        with pytest.raises(StoreError, match="selector"):
            store.gc()
