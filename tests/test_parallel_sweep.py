"""Differential and behavioural tests for the sharded parallel sweep.

The contract under test: ``sweep(jobs=N)`` is observably the serial sweep —
same reports, same order, same ``minimized`` flags — for every backend and
both scenario kinds; only the timing fields may differ.  Plus the plumbing
that makes that safe: picklable run specs, parameter-key round trips, worker
error propagation, and the streaming CLI output.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.cli import main as cli_main
from repro.errors import ScenarioError
from repro.experiments import ExperimentRunner, params_from_key, params_to_key
from repro.experiments.parallel import RunSpec, available_cpus, resolve_jobs
from repro.logic.syntax import CDiamond, EEps, Eventually, Knows, Prop

JOBS = 4


def comparable(reports):
    """Everything a sweep promises deterministically (timings excluded)."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


# -- the differential: parallel == serial ---------------------------------------


def test_parallel_matches_serial_kripke_both_backends():
    """Kripke scenario, both backends: jobs=4 and jobs=1 yield identical rows."""
    serial = ExperimentRunner().sweep(
        "muddy_children", {"n": range(2, 5)}, backends=("frozenset", "bitset")
    )
    parallel = ExperimentRunner().sweep(
        "muddy_children",
        {"n": range(2, 5)},
        backends=("frozenset", "bitset"),
        jobs=JOBS,
    )
    assert comparable(parallel) == comparable(serial)


def test_parallel_matches_serial_system_both_backends():
    """System scenario (temporal default formulas), both backends."""
    grid = {"depth": [2], "horizon": [3, 4]}
    serial = ExperimentRunner().sweep(
        "coordinated_attack", grid, backends=("frozenset", "bitset")
    )
    parallel = ExperimentRunner().sweep(
        "coordinated_attack", grid, backends=("frozenset", "bitset"), jobs=JOBS
    )
    assert comparable(parallel) == comparable(serial)


def test_parallel_with_explicit_formulas_and_minimize():
    """Explicit formula objects + strings cross the pool; minimize flags survive."""
    formulas = [
        "K_child_0 at_least_one",
        ("common", "C_{child_0,child_1} at_least_one"),
        ("labelled", Knows("child_0", Prop("at_least_one"))),
    ]
    serial = ExperimentRunner().sweep(
        "muddy_children", {"n": [2, 3]}, formulas=formulas, minimize=True
    )
    parallel = ExperimentRunner().sweep(
        "muddy_children", {"n": [2, 3]}, formulas=formulas, minimize=True, jobs=2
    )
    assert comparable(parallel) == comparable(serial)
    assert all(report.minimized for report in parallel)


def test_parallel_temporal_formula_objects_on_system():
    """Temporal formulas (PR 4 operators) ship to workers as structures."""
    formulas = [
        ("ev", Eventually(Prop("intend_attack"))),
        ("eeps", EEps(("A", "B"), Prop("intend_attack"), 1)),
        ("cd", CDiamond(("A", "B"), Prop("intend_attack"))),
    ]
    grid = {"horizon": [3, 4]}
    serial = ExperimentRunner().sweep("coordinated_attack", grid, formulas=formulas)
    parallel = ExperimentRunner().sweep(
        "coordinated_attack", grid, formulas=formulas, jobs=2
    )
    assert comparable(parallel) == comparable(serial)


def test_iter_sweep_streams_in_grid_order():
    """iter_sweep yields the exact sequence sweep() returns, serial and parallel."""
    runner = ExperimentRunner()
    expected = comparable(runner.sweep("muddy_children", {"n": [2, 3, 4]}))
    serial_stream = comparable(
        list(ExperimentRunner().iter_sweep("muddy_children", {"n": [2, 3, 4]}))
    )
    parallel_stream = comparable(
        list(
            ExperimentRunner().iter_sweep("muddy_children", {"n": [2, 3, 4]}, jobs=2)
        )
    )
    assert serial_stream == expected
    assert parallel_stream == expected


def test_worker_errors_propagate():
    """A builder failure inside a worker surfaces as the usual ScenarioError."""
    with pytest.raises(ScenarioError, match="between 0 and n"):
        ExperimentRunner().sweep(
            "muddy_children", {"n": [2, 3], "k": [5]}, jobs=2
        )


def test_parallel_validates_grid_in_parent():
    """Bad axes fail fast in the parent, before any worker is spawned."""
    with pytest.raises(ScenarioError, match="no parameter"):
        ExperimentRunner().sweep("muddy_children", {"bogus": [1, 2]}, jobs=2)
    with pytest.raises(ScenarioError, match="expects int"):
        ExperimentRunner().sweep("muddy_children", {"n": ["two", "three"]}, jobs=2)


# -- spec plumbing --------------------------------------------------------------


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == available_cpus()
    with pytest.raises(ScenarioError, match=">= 0"):
        resolve_jobs(-1)
    with pytest.raises(ScenarioError, match="integer"):
        resolve_jobs(2.5)


def test_available_cpus_honors_scheduling_affinity():
    """``--jobs 0`` sizes the pool by the CPUs this process may *run on*
    (cgroup/taskset mask), not by what the machine physically has."""
    assert available_cpus() >= 1
    if hasattr(os, "sched_getaffinity"):
        assert available_cpus() == len(os.sched_getaffinity(0))
    else:  # pragma: no cover - non-Linux fallback
        assert available_cpus() == (os.cpu_count() or 1)
    with pytest.raises(ScenarioError, match="integer"):
        resolve_jobs(True)


def test_params_key_round_trip():
    params = {"n": 4, "k": 2, "announced": False}
    key = params_to_key(params)
    assert key == (("announced", False), ("k", 2), ("n", 4))
    assert params_from_key(key) == params
    # Order-insensitive: the canonical key is what the cache indexes on.
    assert params_to_key({"k": 2, "announced": False, "n": 4}) == key


def test_run_spec_pickles_round_trip():
    """The exact payload shipped to workers survives pickling unchanged."""
    spec = RunSpec(
        scenario="coordinated_attack",
        params_key=params_to_key({"depth": 2, "horizon": 4}),
        formulas=(
            ("ev", Eventually(Prop("intend_attack"))),
            ("eeps", EEps(("A", "B"), Prop("intend_attack"), 0.5)),
        ),
        backend="bitset",
        minimize=False,
        fresh_evaluator=True,
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.formulas[1][1].eps == 0.5


# -- CLI surface ----------------------------------------------------------------


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_sweep_jobs_json_matches_serial(capsys):
    serial_code, serial_out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3", "--json"
    )
    parallel_code, parallel_out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3", "--json", "--jobs", "2"
    )
    assert serial_code == 0 and parallel_code == 0

    def strip(reports):
        return [
            {k: v for k, v in report.items() if not k.endswith("_seconds")}
            for report in reports
        ]

    serial_payload = json.loads(serial_out)
    parallel_payload = json.loads(parallel_out)
    assert strip(parallel_payload) == strip(serial_payload)


def test_cli_sweep_json_streams_standard_format(capsys):
    """The streamed array is byte-identical to a one-shot json.dumps."""
    code, out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3", "--json", "--jobs", "2"
    )
    assert code == 0
    payload = json.loads(out)
    assert out == json.dumps(payload, indent=2) + "\n"


def test_cli_sweep_jobs_table(capsys):
    code, out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2..4", "--jobs", "2"
    )
    assert code == 0
    lines = [line for line in out.splitlines() if line and not line.startswith(("n", "-"))]
    assert len(lines) == 3


def test_cli_sweep_rejects_negative_jobs(capsys):
    code, _, err = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3", "--jobs", "-2"
    )
    assert code == 2
    assert "jobs" in err


def test_cli_sweep_json_stays_well_formed_when_a_grid_point_fails(capsys):
    """A mid-stream builder failure closes the array and exits 1 (aborted
    sweep, not a usage error): stdout is valid JSON holding the completed
    prefix, and the error still lands on stderr."""
    code, out, err = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=6,2", "-p", "k=5", "--json"
    )
    assert code == 1
    assert "between 0 and n" in err
    payload = json.loads(out)  # must not be a truncated array
    assert [report["params"]["n"] for report in payload] == [6]


def test_abandoning_the_parallel_stream_early_does_not_finish_the_grid():
    """Closing the generator after one report cancels the not-yet-started
    chunks instead of silently evaluating the whole grid."""
    stream = ExperimentRunner().iter_sweep(
        "muddy_children", {"n": [2, 3, 4, 5]}, jobs=2
    )
    first = next(stream)
    assert first.params["n"] == 2
    stream.close()  # must return promptly and without raising


def test_run_specs_honours_the_cache_bound():
    from repro.experiments.parallel import run_specs

    specs = [
        RunSpec(
            scenario="muddy_children",
            params_key=params_to_key({"n": n, "k": 1, "announced": False}),
            formulas=None,
            backend="frozenset",
        )
        for n in range(2, 6)
    ]
    reports = run_specs(specs, max_cached_instances=2)
    assert [report.params["n"] for report in reports] == [2, 3, 4, 5]
