"""The random-protocol differential harness (fuzzing the DSL end to end).

Every test here runs *generated* scenarios — seeded random protocols from
:mod:`repro.simulation.fuzz` across the delivery-model matrix — and checks that
independent implementations agree:

* the frozenset reference backend and the bitset fast path compute identical
  extensions, for the standard fuzz suite and for randomly generated formulas;
* a parallel ``--jobs`` sweep of the registered ``random_protocol`` scenario
  reproduces the serial sweep row for row (workers rebuild the generated
  protocols from the registry, so this is the cross-process determinism claim);
* evaluation on the bisimulation quotient (``minimize=True``) preserves
  satisfiability, validity and focus truth for static formulas.

The default (tier-1) seed range is fixed so failures replay exactly;
``--fuzz-extended`` widens it, and ``FUZZ_SEED_OFFSET`` rotates the window for
the scheduled CI job (see ``tests/conftest.py``).
"""

from __future__ import annotations

import pytest

from _engine_gen import formula_suite
from repro.experiments import ExperimentRunner
from repro.simulation.fuzz import (
    ACTION_LABELS,
    DELIVERY_KINDS,
    fuzz_formulas,
    fuzz_processors,
    random_protocol,
    random_system,
)
from repro.systems.interpretation import ViewBasedInterpretation


def comparable(reports):
    """Everything a sweep promises deterministically (timings excluded)."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


# -- backend differential over the full fuzz matrix -----------------------------


def test_backends_agree_across_fuzz_matrix(fuzz_seeds):
    """Frozenset and bitset extensions agree on every (seed, delivery) system.

    This is the headline fuzz differential: 50 seeds x 4 delivery kinds = 200
    generated protocols on the default range (800 under ``--fuzz-extended``),
    each evaluated on both backends over the standard knowledge/temporal suite.
    """
    checked = 0
    for seed in fuzz_seeds:
        for kind in DELIVERY_KINDS:
            system = random_system(seed, delivery=kind)
            suite = fuzz_formulas(fuzz_processors(2))
            reference = ViewBasedInterpretation(system, backend="frozenset")
            fast = ViewBasedInterpretation(system, backend="bitset")
            for label, formula in suite.items():
                assert reference.extension(formula) == fast.extension(formula), (
                    f"backend disagreement: seed={seed} delivery={kind} "
                    f"formula={label!r}"
                )
            checked += 1
    assert checked >= 200


def test_backends_agree_on_random_formulas(fuzz_seeds):
    """Random formulas (temporal operators included) over the fuzz vocabulary."""
    processors = fuzz_processors(2)
    props = (
        "quiet",
        *(f"recv_{p}" for p in processors),
        *(f"did_{label}_{p}" for label in ACTION_LABELS for p in processors),
    )
    for seed in list(fuzz_seeds)[::5]:
        kind = DELIVERY_KINDS[seed % len(DELIVERY_KINDS)]
        system = random_system(seed, delivery=kind)
        reference = ViewBasedInterpretation(system, backend="frozenset")
        fast = ViewBasedInterpretation(system, backend="bitset")
        for formula in formula_suite(seed, props, processors, count=6, temporal=True):
            assert reference.extension(formula) == fast.extension(formula), (
                f"backend disagreement: seed={seed} delivery={kind} "
                f"formula={formula}"
            )


def test_generated_protocols_are_deterministic(fuzz_seeds):
    """Rebuilding the same seed yields the identical system of runs."""
    for seed in list(fuzz_seeds)[::10]:
        first = random_system(seed, delivery="unreliable")
        second = random_system(seed, delivery="unreliable")
        assert first.name == second.name
        assert list(first.runs) == list(second.runs)


def test_distinct_seeds_usually_differ():
    """The generator actually varies behaviour with the seed (not a constant)."""
    signatures = set()
    for seed in range(20):
        protocol = random_protocol(seed)
        system = random_system(seed, delivery="bounded")
        signatures.add(
            (
                protocol.seed,
                len(system.runs),
                tuple(run.name for run in system.runs),
            )
        )
    assert len(signatures) > 10


# -- serial vs parallel sweeps over the registered family -----------------------


def test_parallel_sweep_matches_serial_on_fuzzed_scenario(fuzz_seeds):
    """``--jobs`` workers rebuild generated protocols and match the serial rows."""
    seeds = list(fuzz_seeds)[:4]
    grid = {"seed": seeds, "delivery": ["reliable", "unreliable"]}
    serial = ExperimentRunner().sweep("random_protocol", grid)
    parallel = ExperimentRunner().sweep("random_protocol", grid, jobs=2)
    assert comparable(parallel) == comparable(serial)


def test_parallel_sweep_matches_serial_both_backends(fuzz_seeds):
    """Same identity with both engine backends in one sweep."""
    seeds = list(fuzz_seeds)[:2]
    grid = {"seed": seeds, "delivery": ["async"]}
    serial = ExperimentRunner().sweep(
        "random_protocol", grid, backends=("frozenset", "bitset")
    )
    parallel = ExperimentRunner().sweep(
        "random_protocol", grid, backends=("frozenset", "bitset"), jobs=2
    )
    assert comparable(parallel) == comparable(serial)


# -- minimize differential ------------------------------------------------------

STATIC_FORMULAS = [
    ("quiet", "quiet"),
    ("K quiet", "K_p0 quiet"),
    ("E quiet", "E_{p0,p1} quiet"),
    ("C quiet", "C_{p0,p1} quiet"),
    ("K recv", "K_p1 recv_p1"),
]


def invariant_under_minimize(reports):
    """The fields bisimulation quotienting must preserve, per report row."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            [(row.label, row.satisfiable, row.valid, row.holds_at_focus) for row in report.rows],
        )
        for report in reports
    ]


def test_minimize_preserves_static_verdicts(fuzz_seeds):
    """minimize=True evaluates on the quotient but keeps sat/valid verdicts."""
    seeds = list(fuzz_seeds)[:6]
    grid = {"seed": seeds, "delivery": ["unreliable"]}
    plain = ExperimentRunner().sweep("random_protocol", grid, formulas=STATIC_FORMULAS)
    minimized = ExperimentRunner().sweep(
        "random_protocol", grid, formulas=STATIC_FORMULAS, minimize=True
    )
    assert all(report.minimized for report in minimized)
    assert invariant_under_minimize(minimized) == invariant_under_minimize(plain)
