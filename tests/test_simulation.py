"""Tests for protocols, delivery models and the exhaustive simulator."""

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.simulation.network import (
    Asynchronous,
    BoundedUncertain,
    ReliableSynchronous,
    Unreliable,
)
from repro.simulation.protocol import (
    Action,
    FunctionProtocol,
    JointProtocol,
    SilentProtocol,
    as_joint_protocol,
)
from repro.simulation.simulator import Environment, Simulator, simulate
from repro.systems.events import Message


class TestActions:
    def test_action_builders_compose(self):
        action = Action.send("B", "x").also_act("decide", 1).also_send("C", "y")
        assert len(action.sends) == 2
        assert action.internal[0].label == "decide"

    def test_nothing_is_empty(self):
        assert Action.nothing().sends == ()
        assert Action.nothing().internal == ()


class TestJointProtocols:
    def test_single_protocol_is_broadcast_to_all(self):
        joint = as_joint_protocol(SilentProtocol(), ["A", "B"])
        assert set(joint.processors) == {"A", "B"}

    def test_mapping_must_cover_all_processors(self):
        with pytest.raises(ProtocolError):
            as_joint_protocol({"A": SilentProtocol()}, ["A", "B"])

    def test_function_protocol_validates_return_type(self):
        bad = FunctionProtocol(lambda processor, history, time: "not an action")
        with pytest.raises(ProtocolError):
            bad.step("A", None, 0)


class TestDeliveryModels:
    MESSAGE = Message("A", "B", "x", uid=0)

    def test_reliable_synchronous(self):
        assert ReliableSynchronous(2).outcomes(self.MESSAGE, 1, 10) == (3,)
        assert ReliableSynchronous(2).outcomes(self.MESSAGE, 9, 10) == (None,)

    def test_bounded_uncertain(self):
        assert BoundedUncertain(1, 3).outcomes(self.MESSAGE, 0, 10) == (1, 2, 3)

    def test_unreliable_always_includes_loss(self):
        assert None in Unreliable(delay=1).outcomes(self.MESSAGE, 0, 10)

    def test_asynchronous_covers_horizon_and_beyond(self):
        outcomes = Asynchronous(1).outcomes(self.MESSAGE, 0, 3)
        assert outcomes == (1, 2, 3, None)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            BoundedUncertain(3, 1)
        with pytest.raises(SimulationError):
            ReliableSynchronous(-1)


class TestSimulator:
    class PingPong:
        """A sends ping; B replies pong upon receipt."""

        name = "ping-pong"

        def step(self, processor, history, time):
            if processor == "A" and time == 0:
                return Action.send("B", "ping")
            if processor == "B" and history.received_messages() and not history.sent_messages():
                return Action.send("A", "pong")
            return Action.nothing()

    def _wrap(self):
        from repro.simulation.protocol import FunctionProtocol

        pingpong = self.PingPong()
        return FunctionProtocol(pingpong.step, name="ping-pong")

    def test_reliable_delivery_gives_single_run(self):
        system = simulate(self._wrap(), ["A", "B"], duration=4, delivery=ReliableSynchronous(1))
        assert len(system.runs) == 1
        run = system.runs[0]
        assert run.history("A", 4).received_messages()[0].content == "pong"

    def test_unreliable_delivery_enumerates_all_loss_patterns(self):
        system = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        # ping lost; ping delivered & pong lost; ping delivered & pong delivered.
        assert len(system.runs) == 3
        assert len(system.runs_with_no_deliveries()) == 1

    def test_initial_configuration_choices_multiply_runs(self):
        system = simulate(
            SilentProtocol(),
            ["A", "B"],
            duration=1,
            initial_states={"A": ("x", "y")},
            wake_times={"B": (0, 1)},
        )
        assert len(system.runs) == 4

    def test_run_names_are_unique(self):
        system = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        names = [run.name for run in system.runs]
        assert len(names) == len(set(names))

    def test_max_runs_guard(self):
        with pytest.raises(SimulationError):
            simulate(
                self._wrap(),
                ["A", "B"],
                duration=6,
                delivery=Asynchronous(1),
                max_runs=3,
            )

    def test_fact_rules_are_applied(self):
        def pong_fact(run):
            received = [
                t
                for t in run.times()
                if any(
                    type(e).__name__ == "ReceiveEvent"
                    and e.message.content == "pong"
                    for e in run.events_at("A", t)
                )
            ]
            if not received:
                return {}
            return {t: {"pong_received"} for t in range(received[0], run.duration + 1)}

        system = simulate(
            self._wrap(),
            ["A", "B"],
            duration=4,
            delivery=ReliableSynchronous(1),
            fact_rules=[pong_fact],
        )
        run = system.runs[0]
        assert "pong_received" in run.facts_at(4)
        assert "pong_received" not in run.facts_at(0)

    def test_protocol_sending_to_unknown_processor_is_an_error(self):
        class Rogue:
            name = "rogue"

            def step(self, processor, history, time):
                return Action.send("nobody", "x") if processor == "A" else Action.nothing()

        from repro.simulation.protocol import FunctionProtocol

        with pytest.raises(SimulationError):
            simulate(FunctionProtocol(Rogue().step), ["A", "B"], duration=1)

    def test_environment_validates_clocks(self):
        from repro.systems.clocks import perfect_clock

        with pytest.raises(Exception):
            Environment(
                processors=("A",),
                duration=5,
                clocks={"A": (perfect_clock(1),)},  # too short for the duration
            )

    def test_deterministic_enumeration_order(self):
        first = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        second = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        assert [r.name for r in first.runs] == [r.name for r in second.runs]
