"""Tests for protocols, delivery models and the exhaustive simulator."""

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.simulation.network import (
    Asynchronous,
    BoundedUncertain,
    ReliableSynchronous,
    Unreliable,
)
from repro.simulation.protocol import (
    Action,
    FunctionProtocol,
    JointProtocol,
    SilentProtocol,
    as_joint_protocol,
)
from repro.simulation.simulator import Environment, Simulator, simulate
from repro.systems.events import Message


class TestActions:
    def test_action_builders_compose(self):
        action = Action.send("B", "x").also_act("decide", 1).also_send("C", "y")
        assert len(action.sends) == 2
        assert action.internal[0].label == "decide"

    def test_nothing_is_empty(self):
        assert Action.nothing().sends == ()
        assert Action.nothing().internal == ()


class TestJointProtocols:
    def test_single_protocol_is_broadcast_to_all(self):
        joint = as_joint_protocol(SilentProtocol(), ["A", "B"])
        assert set(joint.processors) == {"A", "B"}

    def test_mapping_must_cover_all_processors(self):
        with pytest.raises(ProtocolError):
            as_joint_protocol({"A": SilentProtocol()}, ["A", "B"])

    def test_function_protocol_validates_return_type(self):
        bad = FunctionProtocol(lambda processor, history, time: "not an action")
        with pytest.raises(ProtocolError):
            bad.step("A", None, 0)


class TestDeliveryModels:
    MESSAGE = Message("A", "B", "x", uid=0)

    def test_reliable_synchronous(self):
        assert ReliableSynchronous(2).outcomes(self.MESSAGE, 1, 10) == (3,)
        assert ReliableSynchronous(2).outcomes(self.MESSAGE, 9, 10) == (None,)

    def test_bounded_uncertain(self):
        assert BoundedUncertain(1, 3).outcomes(self.MESSAGE, 0, 10) == (1, 2, 3)

    def test_unreliable_always_includes_loss(self):
        assert None in Unreliable(delay=1).outcomes(self.MESSAGE, 0, 10)

    def test_asynchronous_covers_horizon_and_beyond(self):
        outcomes = Asynchronous(1).outcomes(self.MESSAGE, 0, 3)
        assert outcomes == (1, 2, 3, None)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            BoundedUncertain(3, 1)
        with pytest.raises(SimulationError):
            ReliableSynchronous(-1)


class TestDeliveryModelEdgeCases:
    """Boundary semantics of the delivery models (the environment half of NG1/NG2)."""

    MESSAGE = Message("A", "B", "x", uid=0)

    def test_unreliable_beyond_horizon_drops_everything(self):
        """When every delay overshoots the horizon, loss is the *only* outcome."""
        assert Unreliable(delay=5).outcomes(self.MESSAGE, 0, 3) == (None,)
        assert Unreliable(delay_range=(4, 9)).outcomes(self.MESSAGE, 0, 3) == (None,)
        # ... and right at the edge the arrival is kept alongside the loss.
        assert Unreliable(delay=3).outcomes(self.MESSAGE, 0, 3) == (3, None)

    def test_bounded_uncertain_zero_bound_equals_reliable_synchronous(self):
        """BoundedUncertain(d, d) is ReliableSynchronous(d), outcome for outcome."""
        for delay in (0, 1, 3):
            degenerate = BoundedUncertain(delay, delay)
            reliable = ReliableSynchronous(delay)
            for send_time in range(0, 6):
                assert degenerate.outcomes(self.MESSAGE, send_time, 4) == reliable.outcomes(
                    self.MESSAGE, send_time, 4
                ), (delay, send_time)

    def test_bounded_uncertain_zero_delay_is_same_step_delivery(self):
        assert BoundedUncertain(0, 0).outcomes(self.MESSAGE, 2, 4) == (2,)

    def test_bounded_uncertain_truncates_tail_at_horizon(self):
        # Only the arrivals inside the horizon survive; past it, loss.
        assert BoundedUncertain(1, 3).outcomes(self.MESSAGE, 8, 10) == (9, 10)
        assert BoundedUncertain(2, 3).outcomes(self.MESSAGE, 9, 10) == (None,)

    def test_asynchronous_zero_min_delay_includes_same_step(self):
        assert Asynchronous(0).outcomes(self.MESSAGE, 2, 4) == (2, 3, 4, None)

    def test_asynchronous_late_send_only_pending(self):
        # A message sent at the horizon with min_delay > 0 can only be in flight.
        assert Asynchronous(1).outcomes(self.MESSAGE, 4, 4) == (None,)


class TestSimulator:
    class PingPong:
        """A sends ping; B replies pong upon receipt."""

        name = "ping-pong"

        def step(self, processor, history, time):
            if processor == "A" and time == 0:
                return Action.send("B", "ping")
            if processor == "B" and history.received_messages() and not history.sent_messages():
                return Action.send("A", "pong")
            return Action.nothing()

    def _wrap(self):
        from repro.simulation.protocol import FunctionProtocol

        pingpong = self.PingPong()
        return FunctionProtocol(pingpong.step, name="ping-pong")

    def test_reliable_delivery_gives_single_run(self):
        system = simulate(self._wrap(), ["A", "B"], duration=4, delivery=ReliableSynchronous(1))
        assert len(system.runs) == 1
        run = system.runs[0]
        assert run.history("A", 4).received_messages()[0].content == "pong"

    def test_unreliable_delivery_enumerates_all_loss_patterns(self):
        system = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        # ping lost; ping delivered & pong lost; ping delivered & pong delivered.
        assert len(system.runs) == 3
        assert len(system.runs_with_no_deliveries()) == 1

    def test_initial_configuration_choices_multiply_runs(self):
        system = simulate(
            SilentProtocol(),
            ["A", "B"],
            duration=1,
            initial_states={"A": ("x", "y")},
            wake_times={"B": (0, 1)},
        )
        assert len(system.runs) == 4

    def test_run_names_are_unique(self):
        system = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        names = [run.name for run in system.runs]
        assert len(names) == len(set(names))

    def test_max_runs_guard(self):
        with pytest.raises(SimulationError):
            simulate(
                self._wrap(),
                ["A", "B"],
                duration=6,
                delivery=Asynchronous(1),
                max_runs=3,
            )

    def test_fact_rules_are_applied(self):
        def pong_fact(run):
            received = [
                t
                for t in run.times()
                if any(
                    type(e).__name__ == "ReceiveEvent"
                    and e.message.content == "pong"
                    for e in run.events_at("A", t)
                )
            ]
            if not received:
                return {}
            return {t: {"pong_received"} for t in range(received[0], run.duration + 1)}

        system = simulate(
            self._wrap(),
            ["A", "B"],
            duration=4,
            delivery=ReliableSynchronous(1),
            fact_rules=[pong_fact],
        )
        run = system.runs[0]
        assert "pong_received" in run.facts_at(4)
        assert "pong_received" not in run.facts_at(0)

    def test_protocol_sending_to_unknown_processor_is_an_error(self):
        class Rogue:
            name = "rogue"

            def step(self, processor, history, time):
                return Action.send("nobody", "x") if processor == "A" else Action.nothing()

        from repro.simulation.protocol import FunctionProtocol

        with pytest.raises(SimulationError):
            simulate(FunctionProtocol(Rogue().step), ["A", "B"], duration=1)

    def test_environment_validates_clocks(self):
        from repro.systems.clocks import perfect_clock

        with pytest.raises(Exception):
            Environment(
                processors=("A",),
                duration=5,
                clocks={"A": (perfect_clock(1),)},  # too short for the duration
            )

    def test_deterministic_enumeration_order(self):
        first = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        second = simulate(self._wrap(), ["A", "B"], duration=4, delivery=Unreliable(delay=1))
        assert [r.name for r in first.runs] == [r.name for r in second.runs]


def _send_once(processor, history, time):
    """A sends one message to B at time 0; everyone else stays silent."""
    if processor == "A" and time == 0 and not history.sent_messages():
        return Action.send("B", "hello")
    return Action.nothing()


def _send_once_protocol():
    from repro.simulation.protocol import FunctionProtocol

    return FunctionProtocol(_send_once, name="send-once")


def _fingerprint(system):
    """Runs as comparable data: names plus every processor's event trace."""
    return [
        (
            run.name,
            {
                p: {
                    t: [type(e).__name__ for e in run.events_at(p, t)]
                    for t in run.times()
                }
                for p in run.processors
            },
        )
        for run in system.runs
    ]


def _delivery_times(system, recipient="B"):
    """For each run, when (if ever) the recipient saw a ReceiveEvent."""
    times = []
    for run in system.runs:
        received = [
            t
            for t in run.times()
            if any(type(e).__name__ == "ReceiveEvent" for e in run.events_at(recipient, t))
        ]
        times.append(received[0] if received else None)
    return times


class TestDeliverySemanticsThroughTheSimulator:
    """The delivery edge cases observed through whole-system run enumeration."""

    def test_unreliable_drop_all_collapses_to_one_quiet_run(self):
        """With every delay beyond the horizon the only branch is total loss."""
        system = simulate(
            _send_once_protocol(), ["A", "B"], duration=3, delivery=Unreliable(delay=9)
        )
        assert len(system.runs) == 1
        assert len(system.runs_with_no_deliveries()) == 1
        assert _delivery_times(system) == [None]

    def test_degenerate_bounded_uncertain_generates_the_reliable_system(self):
        """BoundedUncertain(d, d) and ReliableSynchronous(d) enumerate identical
        runs — same names (the delivery-choice encoding) and same event traces —
        including the bound=0 same-step case."""
        for delay in (0, 1):
            bounded = simulate(
                _send_once_protocol(),
                ["A", "B"],
                duration=3,
                delivery=BoundedUncertain(delay, delay),
            )
            reliable = simulate(
                _send_once_protocol(),
                ["A", "B"],
                duration=3,
                delivery=ReliableSynchronous(delay),
            )
            assert _fingerprint(bounded) == _fingerprint(reliable), delay
            assert _delivery_times(bounded) == [delay]

    def test_asynchronous_enumerates_every_tail(self):
        """One message under Asynchronous(m) on horizon H branches into one run
        per arrival time m..H plus exactly one still-in-flight run."""
        horizon = 4
        for min_delay in (0, 1, 2):
            system = simulate(
                _send_once_protocol(),
                ["A", "B"],
                duration=horizon,
                delivery=Asynchronous(min_delay),
            )
            times = _delivery_times(system)
            assert len(system.runs) == horizon - min_delay + 2
            assert sorted(t for t in times if t is not None) == list(
                range(min_delay, horizon + 1)
            )
            assert times.count(None) == 1
            assert len(system.runs_with_no_deliveries()) == 1


class TestDeliveryInvariantsOverGeneratedProtocols:
    """The drop-all and tail-enumeration invariants, as *properties*.

    The hand-written cases above pin the edge semantics for one fixed
    protocol; these tests quantify over seeded random protocols (see
    :mod:`repro.simulation.fuzz`), parsing the delivery choices back out of
    the run names (``m{uid}@{t}`` / ``m{uid}:lost``) and checking each
    branch point against the delivery model's own ``outcomes``.
    """

    SEEDS = range(12)
    HORIZON = 3

    @staticmethod
    def _choices(run):
        suffix = run.name.split("-", 1)[1]
        return () if suffix == "quiet" else tuple(suffix.split("."))

    @staticmethod
    def _sent_messages(run):
        """uid -> (message, send time), read off the run's send events."""
        sent = {}
        for processor in run.processors:
            for time in run.times():
                for event in run.events_at(processor, time):
                    if type(event).__name__ == "SendEvent":
                        sent[event.message.uid] = (event.message, time)
        return sent

    def test_unreliable_beyond_horizon_is_the_adversarial_drop_all(self):
        """When every delay overshoots the horizon, the system is exactly the
        one an adversary that drops everything produces: a single run per
        initial configuration, no deliveries, identical events."""
        from repro.simulation.fuzz import fuzz_initial_states, random_protocol
        from repro.simulation.network import AdversarialDrops

        for seed in self.SEEDS:
            protocol = random_protocol(seed, horizon=self.HORIZON)
            kwargs = dict(
                processors=protocol.processors,
                duration=self.HORIZON,
                initial_states=fuzz_initial_states(seed, 2, self.HORIZON),
            )
            lossy = simulate(
                protocol, delivery=Unreliable(delay=self.HORIZON + 5), **kwargs
            )
            adversarial = simulate(
                protocol,
                delivery=AdversarialDrops(
                    ReliableSynchronous(1), lambda message, time: True
                ),
                **kwargs,
            )
            assert len(lossy.runs) == 1
            assert lossy.runs_with_no_deliveries() == lossy.runs
            assert list(lossy.runs) == list(adversarial.runs), seed

    @pytest.mark.parametrize("kind", ["bounded", "unreliable", "async"])
    def test_every_branch_point_enumerates_the_full_outcome_set(self, kind):
        """At each delivery-choice position, the runs sharing that choice
        prefix realise *exactly* the model's outcome set for the message —
        every arrival time in the window, plus loss where the model allows it
        (the tail-enumeration/drop invariants, over generated protocols)."""
        from repro.simulation.fuzz import delivery_models, random_system

        model = delivery_models(kind, self.HORIZON)
        for seed in self.SEEDS:
            system = random_system(seed, horizon=self.HORIZON, delivery=kind)
            runs = list(system.runs)
            for run in runs:
                choices = self._choices(run)
                sent = self._sent_messages(run)
                for position, entry in enumerate(choices):
                    uid = int(entry[1:].split("@")[0].split(":")[0])
                    message, send_time = sent[uid]
                    expected = {
                        f"m{uid}:lost" if outcome is None else f"m{uid}@{outcome}"
                        for outcome in model.outcomes(message, send_time, self.HORIZON)
                    }
                    siblings = {
                        self._choices(other)[position]
                        for other in runs
                        if self._choices(other)[:position] == choices[:position]
                    }
                    assert siblings == expected, (seed, run.name, position)

    def test_asynchronous_exactly_one_still_in_flight_branch_per_message(self):
        """Under Asynchronous every sent message has exactly one lost branch
        among the runs sharing its choice prefix (the in-flight tail)."""
        from repro.simulation.fuzz import random_system

        for seed in self.SEEDS:
            system = random_system(seed, horizon=self.HORIZON, delivery="async")
            runs = list(system.runs)
            for run in runs:
                choices = self._choices(run)
                for position in range(len(choices)):
                    siblings = [
                        self._choices(other)[position]
                        for other in runs
                        if self._choices(other)[:position] == choices[:position]
                        and self._choices(other)[position : position + 1]
                    ]
                    lost = [entry for entry in set(siblings) if entry.endswith(":lost")]
                    assert len(lost) == 1, (seed, run.name, position)
