"""Tests for the communication conditions (Section 8 / Appendix B) and epistemic
interpretations / internal knowledge consistency (Sections 6 and 13)."""

import pytest

from repro.logic.syntax import And, Common, K, Not, prop
from repro.scenarios.commit import (
    COMMITTED,
    GROUP,
    build_commit_system,
    eager_interpretation,
    fastest_delivery_runs,
)
from repro.simulation.network import Asynchronous, BoundedUncertain, ReliableSynchronous, Unreliable
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.conditions import (
    communication_not_guaranteed,
    has_temporal_imprecision,
    satisfies_ng1,
    satisfies_ng2,
    satisfies_unbounded_delivery,
    uncertain_start_times,
)
from repro.systems.epistemic import EpistemicInterpretation, eager_belief_assignment
from repro.systems.runs import Point
from repro.systems.system import System


class _SendOnce(Protocol):
    def step(self, processor, history, time):
        if processor == "A" and time == 0 and not history.sent_messages():
            return Action.send("B", "hello")
        return Action.nothing()


def _build(delivery, duration=3, wake_times=None):
    return simulate(
        _SendOnce(),
        ["A", "B"],
        duration=duration,
        delivery=delivery,
        wake_times=wake_times or {},
        system_name="conditions",
    )


class TestCommunicationConditions:
    def test_unreliable_channel_satisfies_ng1_and_ng2(self):
        system = _build(Unreliable(delay=1))
        assert satisfies_ng1(system)
        assert satisfies_ng2(system)
        assert communication_not_guaranteed(system)

    def test_reliable_channel_violates_ng1(self):
        system = _build(ReliableSynchronous(delay=1))
        report = satisfies_ng1(system)
        assert not report
        assert report.counterexamples

    def test_asynchronous_channel_satisfies_unbounded_delivery(self):
        system = _build(Asynchronous(min_delay=1))
        assert satisfies_unbounded_delivery(system)
        assert satisfies_ng2(system)

    def test_reliable_channel_violates_unbounded_delivery(self):
        system = _build(ReliableSynchronous(delay=1))
        assert not satisfies_unbounded_delivery(system)

    def test_strict_temporal_imprecision_holds_for_event_free_system(self):
        # With no events and no clocks every history is constant, so the same run
        # witnesses every required shift and the strict grid condition holds.
        from repro.simulation.protocol import SilentProtocol

        system = simulate(SilentProtocol(), ["A", "B"], duration=2)
        assert has_temporal_imprecision(system, shift=1)

    def test_strict_temporal_imprecision_fails_at_finite_boundaries(self):
        # The sender always sends at time 0, so no run shifts the sender's history;
        # the strict discrete condition correctly reports the boundary failure (see
        # verify_theorem8's docstring for how Theorem 8 is checked instead).
        system = _build(BoundedUncertain(1, 2), duration=4)
        report = has_temporal_imprecision(system, shift=1)
        assert not report
        assert report.counterexamples

    def test_fixed_delivery_has_no_temporal_imprecision(self):
        system = _build(ReliableSynchronous(delay=1), duration=3)
        assert not has_temporal_imprecision(system, shift=1)

    def test_uncertain_start_times_condition(self):
        flexible = _build(
            Unreliable(delay=1), duration=3, wake_times={"B": (0, 1), "A": (0,)}
        )
        report = uncertain_start_times(flexible, shift=1)
        assert report
        rigid = _build(Unreliable(delay=1), duration=3, wake_times={"B": (1,), "A": (0,)})
        assert not uncertain_start_times(rigid, shift=1)


class TestEpistemicInterpretations:
    def test_view_based_equivalent_beliefs_are_knowledge(self, lossy_two_processor_system):
        delivered = prop("delivered")

        def careful(processor, history):
            # Believe `delivered` only once you have actually received the message.
            if processor == "B" and history.awake and history.received_messages():
                return frozenset({delivered})
            return frozenset()

        interp = EpistemicInterpretation(lossy_two_processor_system, careful)
        assert interp.is_knowledge_interpretation()

    def test_eager_commit_interpretation_is_not_knowledge_consistent(self):
        system = build_commit_system()
        eager = eager_interpretation(system)
        violations = eager.knowledge_axiom_violations()
        assert violations  # the coordinator's belief is false during the window
        assert not eager.is_knowledge_interpretation()

    def test_eager_commit_interpretation_is_internally_consistent(self):
        system = build_commit_system()
        eager = eager_interpretation(system)
        witness = fastest_delivery_runs(system, delay=0)
        assert witness
        assert eager.is_internally_consistent_with(witness)

    def test_slow_subsystem_is_not_a_witness(self):
        system = build_commit_system()
        eager = eager_interpretation(system)
        slow = fastest_delivery_runs(system, delay=1)
        assert slow
        assert not eager.is_internally_consistent_with(slow)

    def test_search_finds_a_witness(self):
        system = build_commit_system()
        eager = eager_interpretation(system)
        found = eager.find_internally_consistent_subsystem()
        assert found is not None
        assert eager.is_internally_consistent_with(found)

    def test_common_knowledge_via_fixed_point_semantics(self):
        system = build_commit_system()
        eager = eager_interpretation(system)
        fast_run = fastest_delivery_runs(system, delay=0)[0]
        claim = Common(GROUP, COMMITTED)
        # Once both sites have locally learned of the commit, the eager interpretation
        # makes the commit common knowledge in its own (fixed-point) sense.
        assert eager.holds(claim, fast_run, fast_run.duration)
        # At time 0 nobody believes anything yet.
        assert not eager.holds(claim, fast_run, 0)
