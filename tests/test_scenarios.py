"""Scenario tests: the paper's worked examples behave as the paper predicts."""

import pytest

from repro.logic.syntax import C, E, K, prop
from repro.kripke.checker import ModelChecker
from repro.scenarios.cheating_husbands import run_cheating_husbands
from repro.scenarios.muddy_children import MuddyChildren, run_muddy_children
from repro.scenarios import broadcast, ok_protocol, phases, r2d2
from repro.scenarios.coordinated_attack import (
    GENERALS,
    INTEND,
    alternating_knowledge_formula,
    attack_implies_common_knowledge,
    build_handshake_system,
    evaluate_attack_policy,
    knowledge_depth_after_deliveries,
    search_for_correct_policy,
    AttackPolicy,
)
from repro.systems.interpretation import ViewBasedInterpretation


class TestMuddyChildren:
    @pytest.mark.parametrize("n,k", [(2, 1), (3, 1), (3, 2), (3, 3), (4, 2), (4, 4), (5, 3)])
    def test_muddy_children_answer_yes_in_round_k(self, n, k):
        result = run_muddy_children(n, k)
        assert result.first_yes_round == k
        assert result.muddy_children_answered_yes

    @pytest.mark.parametrize("n,k", [(3, 1), (3, 2), (4, 3)])
    def test_without_announcement_nobody_ever_answers(self, n, k):
        result = run_muddy_children(n, k, father_announces=False, rounds=n + 2)
        assert result.first_yes_round == 0

    def test_e_level_before_announcement_is_k_minus_one(self):
        for k in (1, 2, 3):
            puzzle = MuddyChildren(3, muddy=list(range(k)))
            assert puzzle.e_level_of_m() == k - 1

    def test_announcement_makes_m_common_knowledge(self):
        puzzle = MuddyChildren(4, muddy=[0, 1])
        assert not puzzle.holds_initially(C(puzzle.children, puzzle.at_least_one_muddy))
        assert puzzle.common_knowledge_of_m_after_announcement()

    def test_k_zero_cannot_be_announced(self):
        puzzle = MuddyChildren(3, muddy=[])
        with pytest.raises(Exception):
            puzzle.play()

    def test_clean_children_never_answer_yes(self):
        result = run_muddy_children(4, 2)
        for outcome in result.rounds:
            for child, answer in outcome.answers.items():
                if child not in result.muddy:
                    assert not answer

    def test_cheating_husbands_matches_muddy_children(self):
        result = run_cheating_husbands(4, 3)
        assert result.first_yes_round == 3
        assert result.muddy_children_answered_yes


class TestCoordinatedAttack:
    def test_knowledge_depth_tracks_deliveries(self, handshake_system):
        # The run in which both handshake messages are delivered.
        run = max(
            handshake_system.runs,
            key=lambda r: r.messages_received_before(r.duration + 1),
        )
        assert run.messages_received_before(run.duration + 1) == 2
        depth_by_time = [
            knowledge_depth_after_deliveries(handshake_system, run, t) for t in run.times()
        ]
        # One level per delivered message (with the one-step observation lag).
        assert max(depth_by_time) == 2
        assert depth_by_time == sorted(depth_by_time)

    def test_no_message_run_gives_no_knowledge_of_intent(self, handshake_system):
        interp = ViewBasedInterpretation(handshake_system)
        silent = next(
            r
            for r in handshake_system.runs
            if r.no_messages_received() and r.initial_state("A") == "attack"
        )
        assert not interp.holds(alternating_knowledge_formula(1), silent, silent.duration)

    def test_intend_never_becomes_common_knowledge(self, handshake_system):
        interp = ViewBasedInterpretation(handshake_system)
        assert interp.extension(C(GENERALS, INTEND)) == frozenset()

    def test_proposition4_holds_vacuously_or_not_attacks_are_ck(self, handshake_system):
        assert attack_implies_common_knowledge(handshake_system)

    def test_no_threshold_policy_is_a_correct_protocol(self):
        outcomes = search_for_correct_policy(depth=2, horizon=5)
        assert outcomes
        assert not any(outcome.is_correct for outcome in outcomes)

    def test_aggressive_policy_attacks_but_uncoordinated(self):
        outcome = evaluate_attack_policy(
            depth=2, horizon=5, policy=AttackPolicy(threshold_a=0, threshold_b=1, attack_time=5)
        )
        assert outcome.attacks_in_some_run
        assert outcome.uncoordinated_run is not None

    def test_never_attacking_policy_never_attacks(self):
        outcome = evaluate_attack_policy(
            depth=2, horizon=5, policy=AttackPolicy(threshold_a=None, threshold_b=None, attack_time=5)
        )
        assert outcome.never_attacks


class TestR2D2:
    def test_knowledge_staircase(self):
        system = r2d2.build_uncertain_system(epsilon=1, send_window=5)
        run = next(
            r
            for r in system.runs
            if r.initial_state(r2d2.R2) == 0 and not r.no_messages_received()
            and "@1" in r.name
        )
        steps = r2d2.knowledge_staircase(system, run, epsilon=1, max_level=3, send_time=0)
        # Each level costs one more epsilon (plus the fixed one-tick observation lag).
        first_times = [step.first_time for step in steps]
        assert first_times == [step.predicted_time + 1 for step in steps]

    def test_common_knowledge_not_attained_in_the_uncertain_window(self):
        system = r2d2.build_uncertain_system(epsilon=1, send_window=5)
        run = next(
            r
            for r in system.runs
            if r.initial_state(r2d2.R2) == 0 and "@1" in r.name
        )
        last_send_time = 4  # send_window - 1 with epsilon = 1
        assert not r2d2.common_knowledge_ever_holds(system, run, before_time=last_send_time)

    def test_exact_delivery_gives_common_knowledge_after_epsilon(self):
        epsilon = 2
        system = r2d2.build_exact_delivery_system(epsilon=epsilon, send_window=3)
        interp = ViewBasedInterpretation(system)
        run = next(r for r in system.runs if r.initial_state(r2d2.R2) == 0)
        claim = C((r2d2.R2, r2d2.D2), r2d2.SENT)
        assert not interp.holds(claim, run, epsilon)
        assert interp.holds(claim, run, epsilon + 1)

    def test_global_clock_with_timestamp_gives_common_knowledge(self):
        epsilon = 2
        system = r2d2.build_global_clock_system(epsilon=epsilon, send_window=3)
        interp = ViewBasedInterpretation(system)
        run = next(
            r
            for r in system.runs
            if r.initial_state(r2d2.R2) == 0 and f"@{epsilon}" in r.name
        )
        claim = C((r2d2.R2, r2d2.D2), r2d2.SENT)
        assert not interp.holds(claim, run, epsilon - 1)
        assert interp.holds(claim, run, epsilon + 1)


class TestBroadcastAndVariants:
    def test_synchronous_broadcast_attains_eps_common_knowledge(self):
        system = broadcast.build_synchronous_broadcast_system(latency=1, spread=1)
        interp = ViewBasedInterpretation(system)
        claim = broadcast.eps_common_knowledge(eps=2)
        sending_runs = [r for r in system.runs if r.receive_times()]
        assert sending_runs
        # Once the broadcast is out, sent(m) is eps-common knowledge (spread + the
        # one-tick observation lag) in every run where it is delivered.
        assert all(interp.holds(claim, run, run.duration) for run in sending_runs)

    def test_synchronous_broadcast_has_no_common_knowledge_before_delivery_bound(self):
        system = broadcast.build_synchronous_broadcast_system(latency=1, spread=1)
        interp = ViewBasedInterpretation(system)
        group = (broadcast.SENDER,) + broadcast.RECEIVERS
        claim = C(group, broadcast.SENT)
        extension = interp.extension(claim)
        # Before every receiver can possibly have observed the broadcast
        # (latency + spread + the one-tick observation lag), sent(m) is not common
        # knowledge at any point, although it is already eps-common knowledge.
        assert all(point.time > 2 for point in extension)

    def test_asynchronous_broadcast_everyone_eventually_knows(self):
        from repro.logic import EDiamond

        system = broadcast.build_asynchronous_broadcast_system(horizon=3)
        interp = ViewBasedInterpretation(system)
        group = (broadcast.SENDER,) + broadcast.RECEIVERS
        claim = EDiamond(group, broadcast.SENT)
        delivered_everywhere = [
            run
            for run in system.runs
            if all(
                run.history(p, run.duration).received_messages()
                for p in broadcast.RECEIVERS
            )
        ]
        assert delivered_everywhere
        # In every run where the broadcast reaches everyone, everyone eventually
        # knows sent(m).  (The full C^<> fixed point requires the delivery guarantee
        # to be visible beyond the finite horizon; see EXPERIMENTS.md.)
        assert all(
            interp.holds(claim, run, 0) for run in delivered_everywhere
        )

    def test_asynchronous_broadcast_does_not_attain_eps_common_knowledge(self):
        system = broadcast.build_asynchronous_broadcast_system(horizon=3)
        interp = ViewBasedInterpretation(system)
        claim = broadcast.eps_common_knowledge(eps=1)
        # Theorem 11: unbounded delivery uncertainty rules out eps-common knowledge.
        assert interp.extension(claim) == frozenset()

    def test_ok_protocol_psi_holds_only_when_communication_fails(self):
        system = ok_protocol.build_ok_system(horizon=2)
        psi_name = ok_protocol.DELAYED.name
        for run in system.runs:
            psi_somewhere = any(psi_name in run.facts_at(t) for t in run.times())
            lossy = "lost" in run.name
            assert psi_somewhere == lossy

    def test_ok_protocol_total_loss_becomes_mutually_known(self):
        # The interior-point instance of the paper's "psi -> E psi" argument: in the
        # run where both time-0 "OK" messages are lost, each processor fails to see
        # the expected message and therefore knows psi two ticks later.  (The full
        # C^eps fixed point needs unbounded runs; EXPERIMENTS.md records this
        # truncation.)
        from repro.logic import E as EveryoneKnows

        system = ok_protocol.build_ok_system(horizon=2)
        interp = ViewBasedInterpretation(system)
        psi = ok_protocol.psi_formula()
        group = (ok_protocol.LEFT, ok_protocol.RIGHT)
        all_lost = next(r for r in system.runs if r.no_messages_received())
        assert interp.holds(EveryoneKnows(group, psi), all_lost, 2)

    def test_ok_protocol_successful_communication_prevents_eps_ck(self):
        system = ok_protocol.build_ok_system(horizon=2)
        interp = ViewBasedInterpretation(system)
        claim = ok_protocol.eps_common_knowledge_of_psi(eps=1)
        fully_prompt = [
            r
            for r in system.runs
            if r.receive_times()
            and all(
                ok_protocol.DELAYED.name not in r.facts_at(t) for t in r.times()
            )
        ]
        assert fully_prompt
        for run in fully_prompt:
            assert not any(interp.holds(claim, run, t) for t in run.times())


class TestPhases:
    def test_timestamped_common_knowledge_attained_despite_skew(self):
        system = phases.build_phase_system(phase_end=2, skew=1)
        interp = ViewBasedInterpretation(system)
        claim = phases.timestamped_common_knowledge(phase_end=2)
        assert interp.extension(claim)

    def test_plain_common_knowledge_with_zero_skew(self):
        system = phases.build_phase_system(phase_end=2, skew=0)
        interp = ViewBasedInterpretation(system)
        ct_points = interp.extension(phases.timestamped_common_knowledge(phase_end=2))
        c_points = interp.extension(phases.common_knowledge())
        assert ct_points
        # With identical clocks the two notions agree at the points where the clock
        # reads the phase-end time (Theorem 12(a)); in this single-run system C holds
        # from the decision onward.
        assert c_points

    def test_timestamped_implies_eventual(self):
        system = phases.build_phase_system(phase_end=2, skew=1)
        interp = ViewBasedInterpretation(system)
        ct_points = interp.extension(phases.timestamped_common_knowledge(phase_end=2))
        cd_points = interp.extension(phases.eventual_common_knowledge())
        assert ct_points <= cd_points
