"""Differential harness: the bitset backend must agree with the frozenset reference.

The engine refactor (see ``repro/engine``) is only admissible because the fast bitset
backend is *observably identical* to the reference semantics.  This module enforces
that with seeded random formula generation (no network, no wall clock): hundreds of
closed formulas covering every operator the checker supports, evaluated on the
muddy-children model, the coordinated-attack handshake model, and random Kripke
structures, under both common-knowledge strategies.
"""

from __future__ import annotations

import functools
import zlib

import pytest

from _engine_gen import (
    STATIC_NODE_TYPES,
    TEMPORAL_NODE_TYPES,
    formula_suite,
    node_types_used,
    random_structure,
)
from repro.kripke.checker import CommonKnowledgeStrategy, ModelChecker
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.kripke.builders import others_attribute_model
from repro.systems.interpretation import ViewBasedInterpretation

# How many random formulas each structure contributes.  The totals deliberately
# exceed the 200-formula floor of the harness spec.
_SUITE_SIZES = {
    "muddy-children": 90,
    "coordinated-attack": 60,
    "random-101": 40,
    "random-202": 40,
    "random-303": 40,
}


@functools.lru_cache(maxsize=None)
def _structure(name):
    if name == "muddy-children":
        return others_attribute_model(("a", "b", "c"))
    if name == "coordinated-attack":
        system = build_handshake_system(depth=2, horizon=5)
        return ViewBasedInterpretation(system).to_kripke()
    seed = int(name.split("-")[1])
    return random_structure(seed, n_worlds=14, n_agents=3, n_props=4)


@functools.lru_cache(maxsize=None)
def _suite(name):
    structure = _structure(name)
    props = sorted(structure.propositions())
    agents = sorted(structure.agents, key=repr)
    # crc32 rather than hash(): str hashing is salted per process, crc32 is stable.
    seed = zlib.crc32(name.encode("utf-8"))
    return formula_suite(seed, props, agents, _SUITE_SIZES[name])


def test_suite_is_large_and_covers_every_static_operator():
    """The generated corpus meets the harness floor: >= 200 formulas, all operators."""
    all_formulas = [f for name in _SUITE_SIZES for f in _suite(name)]
    assert len(all_formulas) >= 200
    used = node_types_used(all_formulas)
    missing = set(STATIC_NODE_TYPES) - used
    assert not missing, f"generator never produced {sorted(t.__name__ for t in missing)}"


@pytest.mark.parametrize("name", sorted(_SUITE_SIZES))
@pytest.mark.parametrize("strategy", CommonKnowledgeStrategy.ALL)
def test_bitset_backend_matches_reference(name, strategy):
    """Extension-by-extension agreement on every generated formula."""
    structure = _structure(name)
    reference = ModelChecker(structure, strategy, backend="frozenset")
    fast = ModelChecker(structure, strategy, backend="bitset")
    for formula in _suite(name):
        expected = reference.extension(formula)
        actual = fast.extension(formula)
        assert actual == expected, (
            f"backends disagree on {name} ({strategy}): {formula!r}\n"
            f"  reference: {sorted(map(repr, expected))}\n"
            f"  bitset:    {sorted(map(repr, actual))}"
        )


@pytest.mark.parametrize("name", sorted(_SUITE_SIZES))
def test_batch_api_matches_single_queries(name):
    """``extensions`` (the shared-memo batch API) equals formula-by-formula calls."""
    structure = _structure(name)
    suite = _suite(name)
    for backend in ("frozenset", "bitset"):
        checker = ModelChecker(structure, backend=backend)
        batched = checker.extensions(suite)
        fresh = ModelChecker(structure, backend=backend)
        assert batched == [fresh.extension(f) for f in suite]


def test_backends_agree_on_full_system_language():
    """On a runs-and-systems model the agreement extends to the temporal operators."""
    system = build_handshake_system(depth=2, horizon=5)
    reference = ViewBasedInterpretation(system, backend="frozenset")
    fast = ViewBasedInterpretation(system, backend="bitset")
    props = ["intend_attack", "delivered"]
    agents = sorted(system.processors, key=repr)
    suite = formula_suite(0xC0FFEE, props, agents, 40, temporal=True, max_depth=3)
    used = node_types_used(suite)
    missing = set(TEMPORAL_NODE_TYPES) - used
    assert not missing, f"generator never produced {sorted(t.__name__ for t in missing)}"
    for formula in suite:
        expected = reference.extension(formula)
        actual = fast.extension(formula)
        assert actual == expected, f"backends disagree on system formula {formula!r}"


def test_environment_values_outside_universe_agree_across_backends():
    """Environment extensions mentioning foreign elements are clipped identically.

    Regression: the bitset backend cannot represent non-worlds, so without
    boundary clipping it raised KeyError where the reference accepted them.
    """
    from repro.logic.syntax import Not, Var, prop

    structure = _structure("muddy-children")
    real = frozenset([(True, True, False), (False, False, False)])
    env = {"X": real | frozenset(["not-a-world", 42])}
    results = {}
    for backend in ("frozenset", "bitset"):
        checker = ModelChecker(structure, backend=backend)
        results[backend] = (
            checker.extension(Var("X"), env),
            checker.extension(Not(Var("X")), env),
            checker.extension(Var("X") | prop("at_least_one"), env),
        )
    assert results["frozenset"] == results["bitset"]
    assert results["frozenset"][0] == real  # foreign elements are dropped


def test_backends_agree_on_muddy_children_validities():
    """Validity / satisfiability verdicts (not just extensions) also coincide."""
    structure = _structure("muddy-children")
    reference = ModelChecker(structure, backend="frozenset")
    fast = ModelChecker(structure, backend="bitset")
    for formula in _suite("muddy-children"):
        assert reference.is_valid(formula) == fast.is_valid(formula)
        assert reference.is_satisfiable(formula) == fast.is_satisfiable(formula)
