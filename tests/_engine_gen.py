"""Seeded random model and formula generators for the engine differential tests.

Everything here is deterministic given a seed (plain ``random.Random``, no network,
no wall clock), so the differential harness in ``test_engine_equivalence.py`` and the
bitset property tests replay identically on every run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

from repro.kripke.structure import KripkeStructure
from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Common,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Distributed,
    Everyone,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Eventually,
    Always,
    FalseFormula,
    Formula,
    GreatestFixpoint,
    Iff,
    Implies,
    Knows,
    KnowsAt,
    LeastFixpoint,
    Not,
    Or,
    Prop,
    Someone,
    TrueFormula,
    Var,
)

# Every node type the bare-Kripke ModelChecker supports.
STATIC_NODE_TYPES = (
    TrueFormula,
    FalseFormula,
    Prop,
    Var,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Knows,
    Someone,
    Everyone,
    Distributed,
    Common,
    GreatestFixpoint,
    LeastFixpoint,
)

# The run/time-dependent node types only ViewBasedInterpretation supports.
TEMPORAL_NODE_TYPES = (
    Eventually,
    Always,
    EveryoneEps,
    CommonEps,
    EveryoneDiamond,
    CommonDiamond,
    KnowsAt,
    EveryoneAt,
    CommonAt,
)


# ---------------------------------------------------------------------------
# Random Kripke structures
# ---------------------------------------------------------------------------


def random_partition(rng: random.Random, worlds: Sequence) -> List[Set]:
    """A uniform-ish random partition: shuffle, then cut at random positions.

    Occasionally leaves a tail of worlds out of the partition entirely, to exercise
    the singleton-completion rule of :class:`KripkeStructure`.
    """
    shuffled = list(worlds)
    rng.shuffle(shuffled)
    if len(shuffled) > 2 and rng.random() < 0.3:
        shuffled = shuffled[: rng.randint(2, len(shuffled) - 1)]
    blocks: List[Set] = []
    start = 0
    while start < len(shuffled):
        size = rng.randint(1, len(shuffled) - start)
        blocks.append(set(shuffled[start : start + size]))
        start += size
    return blocks


def random_structure(
    seed: int,
    n_worlds: int = 12,
    n_agents: int = 3,
    n_props: int = 4,
) -> KripkeStructure:
    """A random S5 structure with random partitions and a random valuation."""
    rng = random.Random(seed)
    worlds = [f"w{i}" for i in range(n_worlds)]
    agents = [f"a{i}" for i in range(n_agents)]
    props = [f"p{i}" for i in range(n_props)]
    valuation = {
        world: {name for name in props if rng.random() < 0.5} for world in worlds
    }
    partitions = {agent: random_partition(rng, worlds) for agent in agents}
    return KripkeStructure(worlds, agents, valuation, partitions)


# ---------------------------------------------------------------------------
# Random formulas
# ---------------------------------------------------------------------------


def _random_group(rng: random.Random, agents: Sequence) -> Tuple:
    return tuple(rng.sample(list(agents), rng.randint(1, len(agents))))


def random_positive_body(
    rng: random.Random,
    props: Sequence[str],
    agents: Sequence,
    variable: str,
    depth: int,
) -> Formula:
    """A random formula in which ``variable`` occurs only positively.

    The grammar deliberately omits negation-introducing nodes above the variable, so
    the fixpoint binders' positivity check always passes.
    """
    if depth <= 0:
        return Var(variable) if rng.random() < 0.5 else Prop(rng.choice(list(props)))
    choice = rng.choice(("and", "or", "K", "E", "S", "D", "C", "var", "prop"))
    sub = lambda: random_positive_body(rng, props, agents, variable, depth - 1)
    if choice == "and":
        return And((sub(), sub()))
    if choice == "or":
        return Or((sub(), sub()))
    if choice == "K":
        return Knows(rng.choice(list(agents)), sub())
    if choice == "E":
        return Everyone(_random_group(rng, agents), sub())
    if choice == "S":
        return Someone(_random_group(rng, agents), sub())
    if choice == "D":
        return Distributed(_random_group(rng, agents), sub())
    if choice == "C":
        return Common(_random_group(rng, agents), sub())
    if choice == "var":
        return Var(variable)
    return Prop(rng.choice(list(props)))


_STATIC_CHOICES = (
    "prop",
    "true",
    "false",
    "not",
    "and",
    "or",
    "implies",
    "iff",
    "K",
    "S",
    "E",
    "D",
    "C",
    "nu",
    "mu",
)

_TEMPORAL_CHOICES = (
    "eventually",
    "always",
    "eeps",
    "ceps",
    "ediamond",
    "cdiamond",
    "kt",
    "et",
    "ct",
)


def random_formula(
    rng: random.Random,
    props: Sequence[str],
    agents: Sequence,
    depth: int,
    temporal: bool = False,
) -> Formula:
    """A random closed formula of the given maximum depth.

    With ``temporal=True`` the generator also emits the Sections 11/12 operators
    (only meaningful for runs-and-systems interpretations).
    """
    if depth <= 0:
        return Prop(rng.choice(list(props)))
    choices = _STATIC_CHOICES + (_TEMPORAL_CHOICES if temporal else ())
    choice = rng.choice(choices)
    sub = lambda: random_formula(rng, props, agents, depth - 1, temporal)
    agent = lambda: rng.choice(list(agents))
    group = lambda: _random_group(rng, agents)
    if choice == "prop":
        return Prop(rng.choice(list(props)))
    if choice == "true":
        return TRUE
    if choice == "false":
        return FALSE
    if choice == "not":
        return Not(sub())
    if choice == "and":
        return And(tuple(sub() for _ in range(rng.randint(2, 3))))
    if choice == "or":
        return Or(tuple(sub() for _ in range(rng.randint(2, 3))))
    if choice == "implies":
        return Implies(sub(), sub())
    if choice == "iff":
        return Iff(sub(), sub())
    if choice == "K":
        return Knows(agent(), sub())
    if choice == "S":
        return Someone(group(), sub())
    if choice == "E":
        return Everyone(group(), sub())
    if choice == "D":
        return Distributed(group(), sub())
    if choice == "C":
        return Common(group(), sub())
    if choice == "nu":
        variable = f"X{depth}"
        return GreatestFixpoint(
            variable, random_positive_body(rng, props, agents, variable, depth - 1)
        )
    if choice == "mu":
        variable = f"Y{depth}"
        return LeastFixpoint(
            variable, random_positive_body(rng, props, agents, variable, depth - 1)
        )
    if choice == "eventually":
        return Eventually(sub())
    if choice == "always":
        return Always(sub())
    if choice == "eeps":
        return EveryoneEps(group(), sub(), rng.randint(0, 2))
    if choice == "ceps":
        return CommonEps(group(), sub(), rng.randint(0, 2))
    if choice == "ediamond":
        return EveryoneDiamond(group(), sub())
    if choice == "cdiamond":
        return CommonDiamond(group(), sub())
    if choice == "kt":
        return KnowsAt(agent(), sub(), rng.randint(0, 3))
    if choice == "et":
        return EveryoneAt(group(), sub(), rng.randint(0, 3))
    return CommonAt(group(), sub(), rng.randint(0, 3))


def formula_suite(
    seed: int,
    props: Sequence[str],
    agents: Sequence,
    count: int,
    temporal: bool = False,
    max_depth: int = 4,
) -> List[Formula]:
    """``count`` random closed formulas over the given vocabulary, deterministically."""
    rng = random.Random(seed)
    return [
        random_formula(rng, props, agents, rng.randint(1, max_depth), temporal)
        for _ in range(count)
    ]


def node_types_used(formulas: Sequence[Formula]) -> Set[type]:
    """Every syntax-node type occurring in ``formulas`` (including subformulas)."""
    used: Set[type] = set()
    for formula in formulas:
        for node in formula.subformulas():
            used.add(type(node))
    return used
