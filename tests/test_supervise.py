"""Supervised fault-tolerant sweeps (:mod:`repro.experiments.supervise`).

Every fault here is injected deterministically through the chaos harness
(``REPRO_CHAOS``, :mod:`repro.experiments.chaos`), so the supervision
behaviours — retry/backoff, poison-point quarantine with salvaged neighbours,
watchdog reclamation of hung workers, bounded pool restarts, store
composition and the CLI exit-code contract — reproduce byte-for-byte.

Pool workers inherit the injection config (and its attempt-counting state
directory) through the environment at fork time, which is what lets a single
test fault a worker process from the parent's config.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.errors import ScenarioError, StoreError, SweepFaultError
from repro.experiments import ExperimentRunner, FaultPolicy, ResultStore
from repro.experiments.chaos import ENV_VAR
from repro.experiments.supervise import (
    attempt_record,
    quarantine_report,
    sweep_fault,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SKIP_FAST = FaultPolicy(on_error="skip", retries=0, retry_backoff=0.001)


def set_chaos(monkeypatch, tmp_path, faults, counted=False):
    """Point REPRO_CHAOS at ``faults`` (with a state dir when ``counted``)."""
    config = {"faults": faults}
    if counted:
        state = tmp_path / "chaos-state"
        state.mkdir(exist_ok=True)
        config["state_dir"] = str(state)
    monkeypatch.setenv(ENV_VAR, json.dumps(config))


def comparable(reports):
    """Everything a sweep promises deterministically (timings excluded)."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- FaultPolicy ----------------------------------------------------------------


def test_fault_policy_validation():
    with pytest.raises(ScenarioError, match="on_error"):
        FaultPolicy(on_error="explode")
    with pytest.raises(ScenarioError, match="retries"):
        FaultPolicy(retries=-1)
    with pytest.raises(ScenarioError, match="retries"):
        FaultPolicy(retries=True)
    with pytest.raises(ScenarioError, match="retry_backoff"):
        FaultPolicy(retry_backoff=-0.1)
    with pytest.raises(ScenarioError, match="timeout_per_point"):
        FaultPolicy(timeout_per_point=0)
    with pytest.raises(ScenarioError, match="max_pool_restarts"):
        FaultPolicy(max_pool_restarts=-1)


def test_fault_policy_supervised_property():
    """The default policy is exactly the historical behaviour: unsupervised."""
    assert not FaultPolicy().supervised
    assert FaultPolicy(on_error="skip").supervised
    assert FaultPolicy(retries=1).supervised
    assert FaultPolicy(timeout_per_point=5.0).supervised


def test_backoff_doubles_and_caps():
    policy = FaultPolicy(retries=50, retry_backoff=0.5)
    assert policy.backoff_seconds(1) == 0.5
    assert policy.backoff_seconds(2) == 1.0
    assert policy.backoff_seconds(3) == 2.0
    assert policy.backoff_seconds(100) == 30.0
    assert FaultPolicy(retry_backoff=0.0).backoff_seconds(5) == 0.0


def test_quarantine_report_shape():
    attempts = [
        attempt_record(1, "error", "ChaosInjectedError: boom"),
        attempt_record(2, "timeout", "watchdog expired"),
    ]
    report = quarantine_report("muddy_children", {"n": 4}, "bitset", False, attempts)
    assert report.error == {
        "kind": "timeout",
        "message": "watchdog expired",
        "attempts": attempts,
    }
    assert report.rows == [] and report.universe == 0
    # Round-trips through the dict form (the --json rendering) intact.
    rebuilt = type(report).from_dict(report.to_dict())
    assert rebuilt.error == report.error


def test_sweep_fault_names_the_point_and_history():
    error = sweep_fault(
        "muddy_children",
        {"n": 4, "k": 1},
        "frozenset",
        [attempt_record(1, "crash", "worker died")],
    )
    assert isinstance(error, SweepFaultError)
    assert error.scenario == "muddy_children"
    assert error.params == {"k": 1, "n": 4}
    assert error.backend == "frozenset"
    assert "attempt 1 [crash] worker died" in str(error)


# -- serial supervised execution ------------------------------------------------


def test_serial_skip_quarantines_the_poison_point(monkeypatch, tmp_path):
    set_chaos(monkeypatch, tmp_path, [{"kind": "raise", "params": {"n": 3}}])
    runner = ExperimentRunner()
    reports = runner.sweep("muddy_children", {"n": [2, 3, 4]}, policy=SKIP_FAST)
    assert [r.error is None for r in reports] == [True, False, True]
    bad = reports[1]
    assert bad.error["kind"] == "error"
    assert "ChaosInjectedError" in bad.error["message"]
    assert runner.quarantined == 1 and runner.retries == 0

    monkeypatch.delenv(ENV_VAR)
    clean = ExperimentRunner().sweep("muddy_children", {"n": [2, 4]})
    assert comparable([reports[0], reports[2]]) == comparable(clean)


def test_serial_abort_raises_the_exact_point(monkeypatch, tmp_path):
    set_chaos(monkeypatch, tmp_path, [{"kind": "raise", "params": {"n": 3}}])
    runner = ExperimentRunner()
    with pytest.raises(SweepFaultError) as exc:
        runner.sweep(
            "muddy_children",
            {"n": [2, 3, 4]},
            policy=FaultPolicy(on_error="abort", retries=1, retry_backoff=0.001),
        )
    assert exc.value.params["n"] == 3
    assert len(exc.value.attempts) == 2  # first try + one retry
    assert runner.retries == 1


def test_serial_retries_heal_a_transient_fault(monkeypatch, tmp_path):
    set_chaos(
        monkeypatch,
        tmp_path,
        [{"kind": "raise", "params": {"n": 3}, "failures": 2}],
        counted=True,
    )
    runner = ExperimentRunner()
    reports = runner.sweep(
        "muddy_children",
        {"n": [2, 3, 4]},
        policy=FaultPolicy(on_error="abort", retries=2, retry_backoff=0.001),
    )
    assert all(report.error is None for report in reports)
    assert runner.retries == 2 and runner.quarantined == 0

    monkeypatch.delenv(ENV_VAR)
    clean = ExperimentRunner().sweep("muddy_children", {"n": [2, 3, 4]})
    assert comparable(reports) == comparable(clean)


def test_invalid_grid_params_settle_without_burning_retries(monkeypatch):
    """A schema-level validation error (n = -1) is quarantined on attempt 1 —
    re-running a deterministic parameter rejection would just burn the budget."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    runner = ExperimentRunner()
    reports = runner.sweep(
        "muddy_children",
        {"n": [2, -1]},
        policy=FaultPolicy(on_error="skip", retries=3, retry_backoff=0.001),
    )
    assert reports[0].error is None
    assert reports[1].error is not None
    assert "must be >= 1" in reports[1].error["message"]
    assert len(reports[1].error["attempts"]) == 1  # no pointless retries
    assert runner.retries == 0 and runner.quarantined == 1


def test_builder_errors_are_retried_then_quarantined(monkeypatch):
    """A *build-time* failure (k > n passes the schema, the builder rejects
    it) is indistinguishable from a transient fault, so it consumes the retry
    budget before settling."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    runner = ExperimentRunner()
    reports = runner.sweep(
        "muddy_children",
        {"n": [6, 2], "k": [5]},
        policy=FaultPolicy(on_error="skip", retries=1, retry_backoff=0.001),
    )
    assert reports[0].error is None
    assert reports[1].error is not None
    assert "between 0 and n" in reports[1].error["message"]
    assert len(reports[1].error["attempts"]) == 2
    assert runner.retries == 1 and runner.quarantined == 1


# -- supervised pool execution --------------------------------------------------


def test_parallel_supervised_clean_sweep_matches_serial(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    grid = {"n": [2, 3, 4, 5]}
    supervised = ExperimentRunner().sweep(
        "muddy_children", grid, jobs=2, policy=SKIP_FAST
    )
    serial = ExperimentRunner().sweep("muddy_children", grid)
    assert comparable(supervised) == comparable(serial)


def test_parallel_poison_point_is_bisected_out_of_its_chunk(monkeypatch, tmp_path):
    """12 grid points at jobs=2 chunk in pairs: the poison point's chunk
    partner must be salvaged, and only the poison point quarantined."""
    set_chaos(
        monkeypatch,
        tmp_path,
        [{"kind": "raise", "params": {"n": 5}, "backend": "bitset"}],
    )
    grid = {"n": [2, 3, 4, 5, 6, 7]}
    runner = ExperimentRunner()
    reports = runner.sweep(
        "muddy_children",
        grid,
        backends=("frozenset", "bitset"),
        jobs=2,
        policy=SKIP_FAST,
    )
    assert len(reports) == 12
    bad = [report for report in reports if report.error is not None]
    assert len(bad) == 1 and runner.quarantined == 1
    assert bad[0].params["n"] == 5 and bad[0].backend == "bitset"
    assert "ChaosInjectedError" in bad[0].error["message"]

    monkeypatch.delenv(ENV_VAR)
    clean = ExperimentRunner().sweep(
        "muddy_children", grid, backends=("frozenset", "bitset")
    )
    healthy_expected = [
        entry
        for report, entry in zip(clean, comparable(clean))
        if not (report.params["n"] == 5 and report.backend == "bitset")
    ]
    healthy = [r for r in reports if r.error is None]
    assert comparable(healthy) == healthy_expected


def test_parallel_sigkilled_worker_is_attributed_and_quarantined(
    monkeypatch, tmp_path
):
    set_chaos(monkeypatch, tmp_path, [{"kind": "sigkill", "params": {"n": 4}}])
    runner = ExperimentRunner()
    reports = runner.sweep(
        "muddy_children", {"n": [2, 3, 4, 5, 6]}, jobs=2, policy=SKIP_FAST
    )
    bad = [report for report in reports if report.error is not None]
    assert [report.params["n"] for report in bad] == [4]
    assert bad[0].error["kind"] == "crash"
    assert "worker process died" in bad[0].error["message"]


def test_watchdog_reclaims_a_hung_point(monkeypatch, tmp_path):
    set_chaos(
        monkeypatch,
        tmp_path,
        [{"kind": "hang", "params": {"n": 4}, "hang_seconds": 120}],
    )
    runner = ExperimentRunner()
    reports = runner.sweep(
        "muddy_children",
        {"n": [2, 3, 4, 5]},
        jobs=2,
        policy=FaultPolicy(
            on_error="skip", retries=0, retry_backoff=0.001, timeout_per_point=1.0
        ),
    )
    bad = [report for report in reports if report.error is not None]
    assert [report.params["n"] for report in bad] == [4]
    assert bad[0].error["kind"] == "timeout"
    assert "watchdog expired" in bad[0].error["message"]


def test_pool_restart_budget_bounds_crash_thrashing(monkeypatch, tmp_path):
    set_chaos(monkeypatch, tmp_path, [{"kind": "sigkill", "params": {"n": 3}}])
    runner = ExperimentRunner()
    with pytest.raises(SweepFaultError, match="pool restarts"):
        runner.sweep(
            "muddy_children",
            {"n": [2, 3, 4]},
            jobs=2,
            policy=FaultPolicy(
                on_error="skip",
                retries=0,
                retry_backoff=0.001,
                max_pool_restarts=0,
            ),
        )


# -- store composition ----------------------------------------------------------


def test_store_refuses_quarantined_reports(tmp_path):
    report = quarantine_report(
        "muddy_children", {"n": 4}, "frozenset", False, [attempt_record(1, "error", "x")]
    )
    from repro.experiments.store import StoreKey

    key = StoreKey.for_request("muddy_children", (("n", 4),), [], "frozenset", False)
    with ResultStore(str(tmp_path / "store.sqlite")) as store:
        with pytest.raises(StoreError, match="quarantined"):
            store.put(key, report)


def test_quarantined_points_are_not_persisted_and_resume_reattempts_them(
    monkeypatch, tmp_path
):
    """The acceptance-criteria flow, serially: fault → quarantine → heal →
    resume evaluates exactly the quarantined point."""
    store_path = str(tmp_path / "store.sqlite")
    set_chaos(monkeypatch, tmp_path, [{"kind": "raise", "params": {"n": 3}}])
    with ResultStore(store_path) as store:
        runner = ExperimentRunner(store=store, resume=True)
        first = runner.sweep("muddy_children", {"n": [2, 3, 4]}, policy=SKIP_FAST)
        assert [r.error is None for r in first] == [True, False, True]
        assert store.stats()["rows"] == 2  # the failure was never recorded

    monkeypatch.delenv(ENV_VAR)
    with ResultStore(store_path) as store:
        runner = ExperimentRunner(store=store, resume=True)
        resumed = runner.sweep("muddy_children", {"n": [2, 3, 4]}, policy=SKIP_FAST)
        assert all(report.error is None for report in resumed)
        assert runner.eval_count == 1  # only n=3 was re-attempted
        assert runner.store_hits == 2
        assert store.stats()["rows"] == 3

    clean = ExperimentRunner().sweep("muddy_children", {"n": [2, 3, 4]})
    assert comparable(resumed) == comparable(clean)


def test_acceptance_e2e_poison_sigkill_and_hang_under_jobs_2(monkeypatch, tmp_path):
    """The ISSUE's acceptance scenario: one permanent poison raise, one
    transient SIGKILL, one transient hang past the watchdog, at
    ``jobs=2 --on-error skip --retries 2``.  Healthy rows match a fault-free
    serial sweep, exactly the poison point is quarantined, the store holds no
    duplicates, and a follow-up resume re-attempts only the quarantined point.
    """
    store_path = str(tmp_path / "store.sqlite")
    set_chaos(
        monkeypatch,
        tmp_path,
        [
            {"kind": "raise", "params": {"n": 3}},
            {"kind": "sigkill", "params": {"n": 5}, "failures": 1},
            {"kind": "hang", "params": {"n": 6}, "failures": 1, "hang_seconds": 120},
        ],
        counted=True,
    )
    grid = {"n": [2, 3, 4, 5, 6, 7]}
    policy = FaultPolicy(
        on_error="skip", retries=2, retry_backoff=0.001, timeout_per_point=1.5
    )
    with ResultStore(store_path) as store:
        runner = ExperimentRunner(store=store, resume=True)
        reports = runner.sweep("muddy_children", grid, jobs=2, policy=policy)
        assert len(reports) == 6
        bad = [report for report in reports if report.error is not None]
        assert [report.params["n"] for report in bad] == [3]
        assert runner.quarantined == 1
        assert runner.retries >= 2  # poison retried; transients healed on retry
        assert store.stats()["rows"] == 5  # healthy rows only, no duplicates

    monkeypatch.delenv(ENV_VAR)
    clean = ExperimentRunner().sweep("muddy_children", grid)
    healthy = [report for report in reports if report.error is None]
    healthy_expected = [
        entry
        for report, entry in zip(clean, comparable(clean))
        if report.params["n"] != 3
    ]
    assert comparable(healthy) == healthy_expected

    with ResultStore(store_path) as store:
        runner = ExperimentRunner(store=store, resume=True)
        resumed = runner.sweep("muddy_children", grid, jobs=2, policy=policy)
        assert all(report.error is None for report in resumed)
        assert runner.eval_count == 1  # resume re-attempts only the poison point
        assert runner.store_hits == 5
    assert comparable(resumed) == comparable(clean)


# -- CLI surface ----------------------------------------------------------------


def test_cli_sweep_exit_0_when_clean(monkeypatch, capsys):
    monkeypatch.delenv(ENV_VAR, raising=False)
    code, out, _ = run_cli(
        capsys,
        "sweep", "muddy_children", "-g", "n=2,3", "--no-store",
        "--on-error", "skip", "--retries", "1", "--json",
    )
    assert code == 0
    payload = json.loads(out)
    assert len(payload) == 2
    assert all("error" not in element for element in payload)


def test_cli_sweep_exit_3_and_failure_summary_on_quarantine(
    monkeypatch, tmp_path, capsys
):
    set_chaos(monkeypatch, tmp_path, [{"kind": "raise", "params": {"n": 3}}])
    code, out, _ = run_cli(
        capsys,
        "sweep", "muddy_children", "-g", "n=2..4", "--no-store",
        "--on-error", "skip", "--retry-backoff", "0.001",
    )
    assert code == 3
    assert "failure summary: 1 of 3 grid point(s) quarantined" in out
    assert "ChaosInjectedError" in out

    code, out, _ = run_cli(
        capsys,
        "sweep", "muddy_children", "-g", "n=2..4", "--no-store",
        "--on-error", "skip", "--retry-backoff", "0.001", "--json",
    )
    assert code == 3
    payload = json.loads(out)
    assert len(payload) == 4  # three reports + the failure-summary trailer
    summary = payload[-1]["failure_summary"]
    assert summary["quarantined"] == 1
    assert summary["points"][0]["params"]["n"] == 3
    assert payload[1]["error"]["kind"] == "error"


def test_cli_sweep_exit_1_on_abort(monkeypatch, tmp_path, capsys):
    set_chaos(monkeypatch, tmp_path, [{"kind": "raise", "params": {"n": 3}}])
    code, out, err = run_cli(
        capsys,
        "sweep", "muddy_children", "-g", "n=2..4", "--no-store",
        "--retry-backoff", "0.001", "--json",
    )
    assert code == 1
    assert "sweep aborted" in err and "n" in err
    payload = json.loads(out)  # well-formed prefix, no trailer
    assert [element["params"]["n"] for element in payload] == [2]


def test_cli_sweep_bad_policy_flags_are_usage_errors(capsys):
    code, _, err = run_cli(
        capsys,
        "sweep", "muddy_children", "-g", "n=2,3", "--no-store", "--retries", "-1",
    )
    assert code == 2
    assert "retries" in err


def test_cli_sigint_closes_json_and_commits_store(monkeypatch, tmp_path):
    """Ctrl-C mid-sweep: exit 130, a well-formed --json array holding the
    completed prefix, completed rows committed to the store, and the hung
    worker (plus queued chunks) torn down promptly."""
    store_path = str(tmp_path / "store.sqlite")
    state = tmp_path / "chaos-state"
    state.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env[ENV_VAR] = json.dumps(
        {"faults": [{"kind": "hang", "params": {"n": 6}, "hang_seconds": 600}]}
    )
    env.pop("REPRO_STORE", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep", "muddy_children",
            "-g", "n=2..6", "--jobs", "2", "--on-error", "skip",
            "--store", store_path, "--json",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    seen = []
    for line in proc.stdout:
        seen.append(line)
        if '"n": 5' in line:  # n=2..5 completed; n=6 is hanging in a worker
            break
    else:  # pragma: no cover - only on harness failure
        proc.kill()
        pytest.fail("sweep never streamed its healthy prefix:\n" + "".join(seen))
    os.kill(proc.pid, signal.SIGINT)
    # Drain the same buffered file objects the line iterator used;
    # proc.communicate() would bypass their read-ahead and drop bytes.
    rest = proc.stdout.read()
    err = proc.stderr.read()
    proc.wait(timeout=60)
    out = "".join(seen) + rest
    assert proc.returncode == 130, err
    assert "interrupted" in err
    payload = json.loads(out)  # the array was closed, not truncated
    assert [element["params"]["n"] for element in payload] == [2, 3, 4, 5]
    with ResultStore(store_path) as store:
        assert store.stats()["rows"] == 4  # completed rows were committed
