"""Tests for the ``python -m repro`` command line interface (in-process)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    """Invoke the CLI in-process, returning (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- list ----------------------------------------------------------------------

def test_list_table(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    for name in ("muddy_children", "coordinated_attack", "r2d2", "ok_protocol"):
        assert name in out


def test_list_json(capsys):
    code, out, _ = run_cli(capsys, "list", "--json")
    assert code == 0
    payload = json.loads(out)
    names = [entry["name"] for entry in payload]
    assert "muddy_children" in names
    assert all({"name", "section", "summary", "parameters"} <= set(e) for e in payload)


# -- describe ------------------------------------------------------------------

def test_describe_table(capsys):
    code, out, _ = run_cli(capsys, "describe", "muddy_children")
    assert code == 0
    assert "Sections 2 and 10" in out
    assert "n: int" in out
    assert "default formulas" in out


def test_describe_json(capsys):
    code, out, _ = run_cli(capsys, "describe", "r2d2", "--json")
    assert code == 0
    payload = json.loads(out)
    variant = next(p for p in payload["parameters"] if p["name"] == "variant")
    assert "uncertain" in variant["choices"]
    assert payload["default_formulas"]


def test_describe_unknown_scenario(capsys):
    code, _, err = run_cli(capsys, "describe", "nope")
    assert code == 2
    assert "unknown scenario" in err


# -- run -----------------------------------------------------------------------

def test_run_defaults(capsys):
    code, out, _ = run_cli(capsys, "run", "muddy_children")
    assert code == 0
    assert "8 worlds" in out
    assert "C m" in out


def test_run_every_registered_scenario(capsys):
    """The acceptance criterion: every scenario is runnable from the shell."""
    for name in (
        "muddy_children",
        "coordinated_attack",
        "cheating_husbands",
        "r2d2",
        "ok_protocol",
        "broadcast",
        "commit",
        "phases",
    ):
        code, out, err = run_cli(capsys, "run", name)
        assert code == 0, f"{name}: {err}"
        assert "label" in out, name


def test_run_with_params_and_backend(capsys):
    code, out, _ = run_cli(
        capsys, "run", "muddy_children", "-p", "n=4", "-p", "k=2", "--backend", "bitset"
    )
    assert code == 0
    assert "backend: bitset" in out
    assert "16 worlds" in out


def test_run_with_explicit_formula_json(capsys):
    code, out, _ = run_cli(
        capsys,
        "run",
        "muddy_children",
        "-f",
        "K_child_0 at_least_one",
        "--json",
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["rows"][0]["label"] == "K_child_0 at_least_one"
    assert payload["rows"][0]["holds_at_focus"] is True


def test_run_bad_parameter_value(capsys):
    code, _, err = run_cli(capsys, "run", "muddy_children", "-p", "n=oops")
    assert code == 2
    assert "expects int" in err


def test_run_bad_formula(capsys):
    code, _, err = run_cli(capsys, "run", "muddy_children", "-f", "K_a (p &")
    assert code == 2
    assert "error" in err


# -- sweep ---------------------------------------------------------------------

def test_sweep_range_grid(capsys):
    code, out, _ = run_cli(capsys, "sweep", "muddy_children", "-g", "n=2..4")
    assert code == 0
    lines = [line for line in out.splitlines() if line and not line.startswith(("n", "-"))]
    assert len(lines) == 3  # one row per grid point


def test_sweep_both_backends_json(capsys):
    code, out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2,3", "--backends", "both", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert len(payload) == 4
    assert {entry["backend"] for entry in payload} == {"frozenset", "bitset"}


def test_sweep_list_grid_with_fixed_param(capsys):
    code, out, _ = run_cli(
        capsys, "sweep", "r2d2", "-g", "variant=uncertain,exact", "-p", "epsilon=1"
    )
    assert code == 0
    assert "uncertain" in out and "exact" in out


def test_sweep_requires_grid(capsys):
    code, _, err = run_cli(capsys, "sweep", "muddy_children")
    assert code == 2
    assert "grid" in err


def test_sweep_rejects_conflicting_axis(capsys):
    code, _, err = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2..3", "-p", "n=4"
    )
    assert code == 2
    assert "both fixed" in err


def test_sweep_rejects_unknown_backend(capsys):
    code, _, err = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2..3", "--backends", "quantum"
    )
    assert code == 2
    assert "unknown backend" in err


def test_sweep_bad_range(capsys):
    code, _, err = run_cli(capsys, "sweep", "muddy_children", "-g", "n=5..2")
    assert code == 2
    assert "empty range" in err


def test_sweep_float_endpoints_suggest_step_form(capsys):
    """Regression: float endpoints used to die with a bare "integer endpoints"
    message; the error now teaches both working spellings."""
    code, _, err = run_cli(capsys, "sweep", "r2d2", "-g", "epsilon=0.5..1.5")
    assert code == 2
    assert "epsilon=lo..hi..step" in err
    assert "commas" in err


@pytest.fixture
def float_parameter_scenario():
    """A scratch scenario with a float parameter (no built-in scenario has one)."""
    from repro.experiments.registry import Parameter, register_scenario, unregister_scenario
    from repro.kripke.builders import others_attribute_model

    name = "scratch_float_cli"

    @register_scenario(
        name,
        summary="scratch",
        section="nowhere",
        parameters=(Parameter("rate", float, default=1.0, minimum=0.0),),
    )
    def build(rate):
        return others_attribute_model(("a", "b"))

    yield name
    unregister_scenario(name)


def test_sweep_stepped_float_grid(capsys, float_parameter_scenario):
    code, out, _ = run_cli(
        capsys,
        "sweep",
        float_parameter_scenario,
        "-g",
        "rate=0.5..1.5..0.5",
        "-f",
        "at_least_one",
        "--json",
    )
    assert code == 0
    reports = json.loads(out)
    assert [report["params"]["rate"] for report in reports] == [0.5, 1.0, 1.5]


def test_sweep_stepped_float_grid_has_no_float_noise(capsys, float_parameter_scenario):
    """0..1..0.1 yields 0.3 and 0.7, not 0.30000000000000004."""
    code, out, _ = run_cli(
        capsys,
        "sweep",
        float_parameter_scenario,
        "-g",
        "rate=0..1..0.1",
        "-f",
        "at_least_one",
        "--json",
    )
    assert code == 0
    reports = json.loads(out)
    assert [report["params"]["rate"] for report in reports] == [
        0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1
    ]


def test_sweep_stepped_grid_keeps_integer_parameters_integral(capsys):
    """A stepped range whose values land on integers works for int parameters."""
    code, out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2..4..1", "--json"
    )
    assert code == 0
    reports = json.loads(out)
    assert [report["params"]["n"] for report in reports] == [2, 3, 4]


def test_sweep_stepped_grid_rejects_bad_steps(capsys):
    code, _, err = run_cli(capsys, "sweep", "muddy_children", "-g", "n=2..4..0")
    assert code == 2
    assert "step must be positive" in err
    code, _, err = run_cli(capsys, "sweep", "muddy_children", "-g", "n=2..4..1..9")
    assert code == 2
    assert "lo..hi..step" in err
    code, _, err = run_cli(capsys, "sweep", "muddy_children", "-g", "n=2..4..x")
    assert code == 2
    assert "numeric" in err


# -- minimize ------------------------------------------------------------------

def test_run_minimize_flag(capsys):
    code, out, _ = run_cli(
        capsys, "run", "muddy_children", "-p", "n=4", "-p", "k=2", "--minimize", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["minimized"] is True
    rows = {row["label"]: row for row in payload["rows"]}
    assert rows["E^1 m"]["holds_at_focus"] is True
    assert rows["C m"]["count"] == 0


def test_run_minimize_table_reports_classes(capsys):
    code, out, _ = run_cli(
        capsys, "run", "muddy_children", "-p", "n=3", "--minimize"
    )
    assert code == 0
    assert "bisimulation classes" in out


def test_run_minimize_on_system_scenario(capsys):
    """System scenarios minimise through their Kripke export (static formulas)."""
    code, out, _ = run_cli(capsys, "run", "commit", "--minimize")
    assert code == 0
    assert "bisimulation classes" in out


def test_run_minimize_rejects_temporal_formulas_cleanly(capsys):
    """Temporal default formulas cannot ride the quotient; the checker's error
    surfaces as a normal CLI error, not a traceback."""
    code, _, err = run_cli(capsys, "run", "ok_protocol", "--minimize")
    assert code == 2
    assert "runs-and-systems" in err


def test_sweep_minimize_flag(capsys):
    code, out, _ = run_cli(
        capsys, "sweep", "muddy_children", "-g", "n=2..4", "--minimize", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload and all(report["minimized"] for report in payload)
