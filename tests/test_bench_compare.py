"""The benchmark regression gate: report diffing, tolerances, exit codes.

:mod:`repro.benchcompare` is pure report-in/verdict-out logic, so these tests
build small synthetic ``BENCH_results.json``-shaped dicts and check every
decision the gate makes: the strict tolerance inequality, per-benchmark
overrides (last match wins, globs on both the bare name and ``file::name``),
missing/new benchmark handling, quick-mode coverage comparison, and the CLI
exit-code contract (0 within tolerance, 1 on regression, 2 on usage errors)
that CI keys off.
"""

from __future__ import annotations

import json

import pytest

from repro import benchcompare
from repro.benchcompare import compare_reports, load_report, render_comparison
from repro.cli import main as cli_main
from repro.errors import ReproError


def bench(name, mean, file="benchmarks/bench_demo.py"):
    return {
        "name": name,
        "file": file,
        "mean_s": mean,
        "stddev_s": mean / 10,
        "min_s": mean * 0.9,
        "rounds": 5,
    }


def report(*benchmarks, mode="full", **extra):
    body = {
        "mode": mode,
        "generated_at": "2026-08-07T00:00:00Z",
        "benchmarks": list(benchmarks),
    }
    body.update(extra)
    return body


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- the comparison proper -----------------------------------------------------


def test_full_compare_classifies_each_benchmark():
    baseline = report(
        bench("steady", 0.100), bench("slower", 0.100), bench("faster", 0.300)
    )
    current = report(
        bench("steady", 0.110), bench("slower", 0.250), bench("faster", 0.100)
    )
    result = compare_reports(baseline, current, tolerance=0.5)
    assert not result["ok"]
    assert [row["name"] for row in result["regressions"]] == ["slower"]
    assert result["regressions"][0]["ratio"] == 2.5
    assert result["regressions"][0]["tolerance"] == 0.5
    assert [row["name"] for row in result["improvements"]] == ["faster"]
    assert result["checked"] == 3 and not result["missing"] and not result["new"]


def test_tolerance_inequality_is_strict():
    """current == baseline * (1 + tolerance) exactly is still within tolerance."""
    baseline = report(bench("edge", 0.100))
    at_limit = compare_reports(baseline, report(bench("edge", 0.150)), tolerance=0.5)
    assert at_limit["ok"] and not at_limit["regressions"]
    over = compare_reports(baseline, report(bench("edge", 0.151)), tolerance=0.5)
    assert not over["ok"]
    # Symmetrically, a mean at exactly baseline / (1 + tol) is not yet an
    # "improvement" worth reporting.
    at_floor = compare_reports(baseline, report(bench("edge", 0.100 / 1.5)))
    assert not at_floor["improvements"]


def test_per_benchmark_tolerance_overrides_last_match_wins():
    baseline = report(bench("fast_path", 0.100), bench("build", 0.100))
    current = report(bench("fast_path", 0.130), bench("build", 0.130))
    # Globally tightened to 10%, then relaxed again for build only.
    result = compare_reports(
        baseline,
        current,
        tolerance=0.5,
        overrides=[("*", 0.1), ("build", 0.5)],
    )
    assert [row["name"] for row in result["regressions"]] == ["fast_path"]
    assert result["regressions"][0]["tolerance"] == 0.1

    # Overrides also match the qualified file::name spelling.
    qualified = compare_reports(
        baseline,
        current,
        tolerance=0.5,
        overrides=[("benchmarks/bench_demo.py::fast*", 0.0)],
    )
    assert [row["name"] for row in qualified["regressions"]] == ["fast_path"]


def test_missing_benchmarks_fail_unless_allowed():
    baseline = report(bench("kept", 0.1), bench("dropped", 0.1))
    current = report(bench("kept", 0.1), bench("brand_new", 0.1))
    result = compare_reports(baseline, current)
    assert not result["ok"]
    assert result["missing"] == ["benchmarks/bench_demo.py::dropped"]
    assert result["new"] == ["benchmarks/bench_demo.py::brand_new"]
    allowed = compare_reports(baseline, current, allow_missing=True)
    assert allowed["ok"]


def test_quick_mode_compares_module_coverage():
    baseline = report(mode="quick", modules=["benchmarks/a.py", "benchmarks/b.py"])
    same = report(mode="quick", modules=["benchmarks/b.py", "benchmarks/a.py"])
    result = compare_reports(baseline, same, quick=True)
    assert result["ok"] and result["checked"] == 2

    shrunk = report(mode="quick", modules=["benchmarks/a.py"])
    result = compare_reports(baseline, shrunk, quick=True)
    assert not result["ok"] and result["missing"] == ["benchmarks/b.py"]
    assert compare_reports(baseline, shrunk, quick=True, allow_missing=True)["ok"]


def test_quick_current_report_demands_quick_mode():
    baseline = report(bench("a", 0.1))
    quick_current = report(mode="quick", modules=["benchmarks/a.py"])
    with pytest.raises(ReproError, match="--quick"):
        compare_reports(baseline, quick_current)
    with pytest.raises(ReproError, match="full-mode baseline"):
        compare_reports(quick_current, report(bench("a", 0.1)))


def test_negative_tolerances_are_rejected():
    baseline = report(bench("a", 0.1))
    with pytest.raises(ReproError, match="tolerance must be >= 0"):
        compare_reports(baseline, baseline, tolerance=-0.1)
    with pytest.raises(ReproError, match=">= 0"):
        compare_reports(baseline, baseline, overrides=[("a", -1.0)])


def test_render_comparison_names_the_verdict():
    baseline = report(bench("slower", 0.100))
    text = render_comparison(
        compare_reports(baseline, report(bench("slower", 0.400)))
    )
    assert "REGRESSION benchmarks/bench_demo.py::slower" in text
    assert "(4.00x, tolerance 1.50x)" in text
    assert text.endswith("verdict: REGRESSION")
    ok_text = render_comparison(compare_reports(baseline, baseline))
    assert ok_text.endswith("verdict: OK")


# -- report loading ------------------------------------------------------------


def test_load_report_failure_modes(tmp_path):
    with pytest.raises(ReproError, match="cannot read"):
        load_report(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ReproError, match="not valid JSON"):
        load_report(bad)
    shapeless = tmp_path / "shapeless.json"
    shapeless.write_text('{"something": "else"}')
    with pytest.raises(ReproError, match="no 'benchmarks' section"):
        load_report(shapeless)


def test_default_baseline_is_the_committed_report():
    path = benchcompare.default_baseline_path()
    assert path.name == "BENCH_results.json"
    committed = load_report(path)
    assert committed["benchmarks"], "the committed baseline tracks benchmarks"


# -- the CLI gate --------------------------------------------------------------


@pytest.fixture
def report_files(tmp_path):
    """A baseline file plus a regressed current: one benchmark 10x slower."""
    baseline = report(bench("chain", 0.010), bench("quotient", 0.020))
    regressed = report(bench("chain", 0.100), bench("quotient", 0.020))
    baseline_path = tmp_path / "baseline.json"
    regressed_path = tmp_path / "regressed.json"
    baseline_path.write_text(json.dumps(baseline))
    regressed_path.write_text(json.dumps(regressed))
    return str(baseline_path), str(regressed_path)


def test_cli_bench_compare_exit_codes(report_files, capsys):
    baseline_path, regressed_path = report_files
    code, out, _ = run_cli(
        capsys, "bench", "compare",
        "--baseline", baseline_path, "--current", regressed_path,
    )
    assert code == 1
    assert "REGRESSION" in out and out.strip().endswith("verdict: REGRESSION")

    # Self-comparison is clean — and the same verdict as JSON output.
    code, out, _ = run_cli(
        capsys, "bench", "compare",
        "--baseline", baseline_path, "--current", baseline_path, "--json",
    )
    assert code == 0
    assert json.loads(out)["ok"] is True


def test_cli_bench_compare_tolerance_flags(report_files, capsys):
    baseline_path, regressed_path = report_files
    # A huge global tolerance lets the 10x slowdown through...
    code, _, _ = run_cli(
        capsys, "bench", "compare",
        "--baseline", baseline_path, "--current", regressed_path,
        "--tolerance", "10",
    )
    assert code == 0
    # ...unless a per-benchmark override tightens that benchmark back up.
    code, out, _ = run_cli(
        capsys, "bench", "compare",
        "--baseline", baseline_path, "--current", regressed_path,
        "--tolerance", "10", "--tolerance-for", "chain=0.5", "--json",
    )
    assert code == 1
    verdict = json.loads(out)
    assert [row["name"] for row in verdict["regressions"]] == ["chain"]
    assert verdict["regressions"][0]["tolerance"] == 0.5


def test_cli_bench_compare_usage_errors(report_files, capsys):
    baseline_path, regressed_path = report_files
    code, _, err = run_cli(
        capsys, "bench", "compare",
        "--baseline", baseline_path, "--current", regressed_path,
        "--tolerance-for", "chain=not_a_number",
    )
    assert code == 2 and "expected a number" in err
    code, _, err = run_cli(
        capsys, "bench", "compare", "--baseline", "/definitely/missing.json",
        "--current", regressed_path,
    )
    assert code == 2 and "cannot read" in err
