"""Differential harness for the incremental model-update fast path.

``KripkeStructure.restrict`` / ``refine_agent`` / ``refine_agents`` construct
*derived* structures in bitmask space (masks remapped from the parent, frozenset
partitions materialised lazily, proposition extensions inherited).  That fast path
is only admissible because a derived structure is *observably identical* to the
structure the seed code would have rebuilt from scratch.  This module enforces
that, in the style of ``test_engine_equivalence.py``: naive from-scratch reference
implementations (transcriptions of the pre-fast-path code) are compared against
the derived results on seeded random structures, world-for-world and
formula-for-formula, on both engine backends.  The worklist bisimulation and the
mask-space quotient get the same treatment against the seed's fixed-point
partition refinement.  The reference implementations live in
:mod:`repro.kripke.reference`, shared with the announcement-chain benchmark so
the test oracle and the measured baseline are the same code.
"""

from __future__ import annotations

import random

import pytest

from _engine_gen import formula_suite, random_structure
from repro.errors import ModelError
from repro.kripke.announcement import (
    UpdateChain,
    announce_sequence,
    public_announce,
    simultaneous_answers,
)
from repro.kripke.bisimulation import bisimulation_classes, minimize, quotient
from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import ModelChecker
from repro.kripke.reference import (
    bisimulation_classes_fixpoint,
    refine_agent_rebuild,
    restrict_rebuild,
)
from repro.kripke.structure import KripkeStructure
from repro.logic.syntax import C, Knows, Prop

BACKENDS = ("frozenset", "bitset")
SEEDS = (11, 22, 33, 44, 55)


def naive_simultaneous_answers(structure, answers, backend):
    """The seed's simultaneous_answers: per-agent extensions + chained refines."""
    checker = ModelChecker(structure, backend=backend)
    extensions = [checker.extension(Knows(agent, claim)) for agent, claim in answers]

    def answer_vector(world):
        return tuple(world in extension for extension in extensions)

    refined = structure
    for agent in structure.agents:
        refined = refine_agent_rebuild(refined, agent, answer_vector)
    return refined


# ---------------------------------------------------------------------------
# Shared assertion helpers
# ---------------------------------------------------------------------------


def assert_observably_identical(derived, rebuilt, seed=0):
    """Every public observation of ``derived`` matches the from-scratch rebuild."""
    assert derived == rebuilt
    assert derived.worlds == rebuilt.worlds
    assert derived.propositions() == rebuilt.propositions()
    for agent in derived.agents:
        assert set(derived.partition(agent)) == set(rebuilt.partition(agent))
        # Mask-level view agrees with the rebuild's own (freshly derived) masks.
        assert set(derived.partition_masks(agent)) == set(rebuilt.partition_masks(agent))
        assert derived.class_masks_in_order(agent) == rebuilt.class_masks_in_order(agent)
    for world in derived.worlds:
        assert derived.facts_at(world) == rebuilt.facts_at(world)
        for agent in derived.agents:
            assert derived.equivalence_class(agent, world) == rebuilt.equivalence_class(
                agent, world
            )
    agents = sorted(derived.agents, key=repr)
    # One fixed probe world for both sides: equal frozensets need not iterate in
    # the same order, and reachable() from two different worlds is incomparable.
    probe = min(derived.worlds, key=repr)
    assert derived.reachable(agents, probe) == rebuilt.reachable(agents, probe)
    assert set(derived.connected_components(agents)) == set(
        rebuilt.connected_components(agents)
    )
    for name in sorted(derived.propositions()):
        expected = frozenset(w for w in derived.worlds if derived.holds_at(name, w))
        assert derived.prop_worlds(name) == expected
        assert rebuilt.prop_worlds(name) == expected
    # Formula-level agreement on both backends.
    props = sorted(derived.propositions()) or ["p0"]
    suite = formula_suite(seed + 7, props, agents, 25)
    for backend in BACKENDS:
        derived_checker = ModelChecker(derived, backend=backend)
        rebuilt_checker = ModelChecker(rebuilt, backend=backend)
        assert derived_checker.extensions(suite) == rebuilt_checker.extensions(suite)


def _survivors(rng, structure):
    worlds = sorted(structure.worlds, key=repr)
    count = rng.randint(1, len(worlds))
    return set(rng.sample(worlds, count))


def _discriminator(rng, structure, buckets=3):
    order = structure.world_order()
    labels = {world: rng.randrange(buckets) for world in order}
    return lambda world: labels[world]


# ---------------------------------------------------------------------------
# restrict / refine differentials
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_restrict_matches_from_scratch_rebuild(seed):
    structure = random_structure(seed, n_worlds=14, n_agents=3, n_props=4)
    rng = random.Random(seed)
    survivors = _survivors(rng, structure)
    assert_observably_identical(
        structure.restrict(survivors), restrict_rebuild(structure, survivors), seed
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_refine_agent_matches_from_scratch_rebuild(seed):
    structure = random_structure(seed, n_worlds=14, n_agents=3, n_props=4)
    rng = random.Random(seed * 31)
    discriminator = _discriminator(rng, structure)
    agent = rng.choice(sorted(structure.agents))
    assert_observably_identical(
        structure.refine_agent(agent, discriminator),
        refine_agent_rebuild(structure, agent, discriminator),
        seed,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_refine_agents_equals_chained_single_refinements(seed):
    structure = random_structure(seed, n_worlds=12, n_agents=3, n_props=3)
    rng = random.Random(seed * 17)
    discriminator = _discriminator(rng, structure)
    multi = structure.refine_agents(structure.agents, discriminator)
    chained = structure
    for agent in structure.agents:
        chained = refine_agent_rebuild(chained, agent, discriminator)
    assert_observably_identical(multi, chained, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_update_chains_stay_identical_to_rebuilds(seed):
    """restrict -> refine -> restrict chains: the derived caches remap transitively."""
    fast = random_structure(seed, n_worlds=16, n_agents=3, n_props=4)
    slow = restrict_rebuild(fast, fast.worlds)
    rng = random.Random(seed * 101)
    for step in range(4):
        if rng.random() < 0.5:
            survivors = _survivors(rng, fast)
            fast = fast.restrict(survivors)
            slow = restrict_rebuild(slow, survivors)
        else:
            discriminator = _discriminator(rng, fast)
            agent = rng.choice(sorted(fast.agents))
            fast = fast.refine_agent(agent, discriminator)
            slow = refine_agent_rebuild(slow, agent, discriminator)
    assert_observably_identical(fast, slow, seed)


def test_restrict_to_all_worlds_returns_self():
    structure = random_structure(5, n_worlds=8)
    assert structure.restrict(structure.worlds) is structure


def test_refine_with_constant_discriminator_returns_self():
    structure = random_structure(6, n_worlds=8)
    assert structure.refine_agents(structure.agents, lambda world: 0) is structure


def test_restrict_to_empty_still_rejected():
    structure = random_structure(7, n_worlds=8)
    with pytest.raises(ModelError):
        structure.restrict(set())


def test_with_valuation_does_not_inherit_parent_prop_masks():
    structure = random_structure(8, n_worlds=8, n_props=2)
    # Warm the parent's proposition masks first, then swap the valuation.
    structure.prop_worlds("p0")
    flipped = structure.with_valuation(
        {w: {"p0"} for w in structure.worlds if not structure.holds_at("p0", w)}
    )
    expected = frozenset(w for w in flipped.worlds if flipped.holds_at("p0", w))
    assert flipped.prop_worlds("p0") == expected
    for agent in structure.agents:
        assert set(flipped.partition(agent)) == set(structure.partition(agent))


# ---------------------------------------------------------------------------
# Announcement-layer differentials
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_simultaneous_answers_matches_naive_per_agent_loop(backend):
    structure = others_attribute_model(("a", "b", "c"))
    answers = [(agent, Prop(f"muddy_{agent}")) for agent in ("a", "b", "c")]
    fast = simultaneous_answers(
        structure, answers, checker=ModelChecker(structure, backend=backend)
    )
    slow = naive_simultaneous_answers(structure, answers, backend)
    assert_observably_identical(fast, slow, seed=3)


@pytest.mark.parametrize("backend", BACKENDS)
def test_update_chain_replays_the_seed_round_loop(backend):
    """UpdateChain (announce + answer rounds) == per-round from-scratch rebuilds."""
    children = ("a", "b", "c", "d")
    claims = [(child, Prop(f"muddy_{child}")) for child in children]
    actual = (True, True, True, False)

    chain = UpdateChain(others_attribute_model(children), backend=backend)
    chain.announce(Prop("at_least_one"))

    slow = others_attribute_model(children)
    checker = ModelChecker(slow, backend=backend)
    slow = restrict_rebuild(slow, checker.extension(Prop("at_least_one")))

    for round_number in range(1, len(children) + 1):
        extensions = chain.answer_round(claims)
        fast_answers = [actual in extension for extension in extensions]
        slow_checker = ModelChecker(slow, backend=backend)
        slow_answers = [
            slow_checker.holds(Knows(child, claim), actual) for child, claim in claims
        ]
        assert fast_answers == slow_answers, f"round {round_number}"
        slow = naive_simultaneous_answers(slow, claims, backend)
        assert_observably_identical(chain.model, slow, seed=round_number)


def test_announce_sequence_uses_the_derived_path():
    structure = others_attribute_model(("a", "b", "c"))
    facts = [Prop("at_least_one"), Prop("muddy_a")]
    models = announce_sequence(structure, facts)
    current = structure
    for fact, model in zip(facts, models):
        checker = ModelChecker(current)
        current = restrict_rebuild(current, checker.extension(fact))
        assert model == current


def test_public_announce_accepts_a_reused_checker():
    structure = others_attribute_model(("a", "b"))
    checker = ModelChecker(structure)
    fact = Prop("at_least_one")
    assert public_announce(structure, fact, checker=checker) == public_announce(
        structure, fact
    )


# ---------------------------------------------------------------------------
# Bisimulation / quotient differentials
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS + (66, 77, 88))
def test_worklist_bisimulation_matches_fixed_point_reference(seed):
    rng = random.Random(seed)
    structure = random_structure(
        seed, n_worlds=rng.randint(2, 18), n_agents=3, n_props=2
    )
    assert set(bisimulation_classes(structure)) == bisimulation_classes_fixpoint(structure)


def test_worklist_bisimulation_on_muddy_model():
    structure = others_attribute_model(("a", "b", "c"))
    assert set(bisimulation_classes(structure)) == bisimulation_classes_fixpoint(structure)


def test_worklist_bisimulation_fuzz_small_structures():
    """Regression: enqueuing only the smaller half of a split is unsound here.

    With relations (not functions), one agent class can meet both halves of a
    split block, so Hopcroft's smaller-half rule produced a too-coarse
    partition on rare small structures (~0.2% of random draws — e.g. the
    5-world structure of seed 221 merged two worlds disagreeing on a nested
    ``K``).  Sweep many small random structures so that failure class stays
    covered.
    """
    for seed in range(300):
        rng = random.Random(seed)
        structure = random_structure(
            seed,
            n_worlds=rng.randint(2, 9),
            n_agents=rng.randint(1, 3),
            n_props=rng.randint(1, 2),
        )
        assert set(bisimulation_classes(structure)) == bisimulation_classes_fixpoint(
            structure
        ), f"worklist refinement diverged from the fixed-point oracle at seed {seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_quotient_preserves_every_formula_on_both_backends(seed):
    structure = random_structure(seed, n_worlds=12, n_agents=3, n_props=2)
    reduced, class_of = quotient(structure)
    props = sorted(structure.propositions()) or ["p0"]
    agents = sorted(structure.agents, key=repr)
    suite = formula_suite(seed + 99, props, agents, 30)
    for backend in BACKENDS:
        checker = ModelChecker(structure, backend=backend)
        reduced_checker = ModelChecker(reduced, backend=backend)
        extensions = checker.extensions(suite)
        reduced_extensions = reduced_checker.extensions(suite)
        for formula, extension, reduced_extension in zip(
            suite, extensions, reduced_extensions
        ):
            for world in structure.worlds:
                assert (world in extension) == (
                    class_of[world] in reduced_extension
                ), f"{backend}: {formula!r} disagrees at {world!r}"


def test_quotient_of_derived_structure_matches_quotient_of_rebuild():
    structure = others_attribute_model(("a", "b", "c"))
    survivors = {w for w in structure.worlds if any(w)}
    derived = structure.restrict(survivors)
    rebuilt = restrict_rebuild(structure, survivors)
    assert minimize(derived) == minimize(rebuilt)


def test_minimize_collapses_duplicated_worlds():
    base = others_attribute_model(("a", "b"))
    # Inflate: two indistinguishable copies of every world; the quotient must
    # fold the copies back together.
    worlds = [(w, tag) for w in base.worlds for tag in (0, 1)]
    valuation = {(w, tag): base.facts_at(w) for w, tag in worlds}
    partitions = {
        agent: [
            {(w, tag) for w in block for tag in (0, 1)}
            for block in base.partition(agent)
        ]
        for agent in base.agents
    }
    inflated = KripkeStructure(worlds, base.agents, valuation, partitions)
    reduced = minimize(inflated)
    assert len(reduced) == len(base)
    formula = C(tuple(sorted(base.agents)), Prop("at_least_one"))
    assert ModelChecker(inflated).is_satisfiable(formula) == ModelChecker(
        reduced
    ).is_satisfiable(formula)


def test_public_announce_rejects_checker_over_other_structure():
    structure = others_attribute_model(("a", "b"))
    other = others_attribute_model(("a", "b", "c"))
    with pytest.raises(ModelError, match="different structure"):
        public_announce(structure, Prop("at_least_one"), checker=ModelChecker(other))
    with pytest.raises(ModelError, match="different structure"):
        simultaneous_answers(
            structure,
            [("a", Prop("muddy_a"))],
            checker=ModelChecker(other),
        )


def test_are_bisimilar_rejects_unknown_worlds():
    from repro.errors import UnknownWorldError
    from repro.kripke.bisimulation import are_bisimilar

    structure = others_attribute_model(("a", "b"))
    with pytest.raises(UnknownWorldError):
        are_bisimilar(structure, "nope", (True, True))
    with pytest.raises(UnknownWorldError):
        are_bisimilar(structure, (True, True), "nope")


def test_restricted_structures_do_not_retain_their_parent():
    """An update chain must not pin its intermediate models in memory."""
    import gc
    import weakref

    parent = others_attribute_model(("a", "b", "c"))
    parent.prop_worlds("at_least_one")  # warm a mask so inheritance happens
    child = parent.restrict({w for w in parent.worlds if any(w)})
    grandchild = child.refine_agents(child.agents, lambda w: sum(w))
    ref = weakref.ref(parent)
    del parent, child
    gc.collect()
    assert ref() is None, "restrict/refine results kept the ancestor chain alive"
    assert grandchild.prop_worlds("at_least_one")  # inherited mask still correct
