"""Unit tests for Kripke structures, the model checker, announcements, bisimulation."""

import pytest

from repro.errors import EvaluationError, ModelError, UnknownAgentError, UnknownWorldError
from repro.kripke.announcement import (
    announce_sequence,
    private_announce,
    public_announce,
    simultaneous_answers,
)
from repro.kripke.bisimulation import are_bisimilar, bisimulation_classes, minimize
from repro.kripke.builders import (
    blind_model,
    from_worlds,
    muddy_children_worlds,
    observed_variable_model,
    others_attribute_model,
    shared_memory_model,
)
from repro.kripke.checker import CommonKnowledgeStrategy, ModelChecker
from repro.kripke.structure import KripkeStructure
from repro.logic.syntax import (
    C,
    CDiamond,
    CEps,
    D,
    E,
    Eventually,
    K,
    Not,
    Nu,
    S,
    Var,
    prop,
)

CHILDREN = ("a", "b", "c")
M = prop("at_least_one")


@pytest.fixture(scope="module")
def model():
    return others_attribute_model(CHILDREN)


@pytest.fixture
def checker(model, engine_backend):
    # Function-scoped (unlike `model`): a checker captures the engine backend at
    # construction, and a module-scoped one would be built before the autouse
    # engine_backend fixture sets the --engine-backend default.
    return ModelChecker(model)


class TestStructure:
    def test_worlds_and_propositions(self, model):
        assert len(model.worlds) == 8
        assert "muddy_a" in model.propositions()

    def test_unmentioned_worlds_become_singletons(self):
        structure = KripkeStructure(
            worlds={"w0", "w1", "w2"},
            agents={"a"},
            valuation={"w1": {"p"}},
            partitions={"a": [{"w0", "w1"}]},
        )
        assert structure.equivalence_class("a", "w2") == frozenset({"w2"})

    def test_overlapping_partition_is_rejected(self):
        with pytest.raises(ModelError):
            KripkeStructure(
                worlds={"w0", "w1"},
                agents={"a"},
                valuation={},
                partitions={"a": [{"w0", "w1"}, {"w1"}]},
            )

    def test_unknown_world_in_partition_is_rejected(self):
        with pytest.raises(UnknownWorldError):
            KripkeStructure(
                worlds={"w0"},
                agents={"a"},
                valuation={},
                partitions={"a": [{"w0", "missing"}]},
            )

    def test_unknown_agent_queries_raise(self, model):
        with pytest.raises(UnknownAgentError):
            model.equivalence_class("zebra", (True, True, True))

    def test_indistinguishability_ignores_own_forehead(self, model):
        assert model.indistinguishable("a", (True, False, False), (False, False, False))
        assert not model.indistinguishable("b", (True, False, False), (False, False, False))

    def test_joint_class_is_intersection(self, model):
        world = (True, True, False)
        joint = model.joint_class(CHILDREN, world)
        assert joint == frozenset({world})

    def test_reachability_covers_whole_component(self, model):
        reachable = model.reachable(CHILDREN, (False, False, False))
        assert reachable == model.worlds

    def test_reachable_within_grows_one_step_at_a_time(self, model):
        world = (True, True, True)
        step1 = model.reachable_within(CHILDREN, world, 1)
        step2 = model.reachable_within(CHILDREN, world, 2)
        assert len(step1) == 4
        assert step1 < step2

    def test_restrict_drops_worlds(self, model):
        restricted = model.restrict({w for w in model.worlds if any(w)})
        assert len(restricted.worlds) == 7

    def test_restrict_to_empty_is_rejected(self, model):
        with pytest.raises(ModelError):
            model.restrict(set())


class TestBuilders:
    def test_muddy_children_worlds_count(self):
        assert len(muddy_children_worlds(4)) == 16

    def test_observed_variable_model(self):
        model = observed_variable_model(
            ["a", "b"],
            variables={"x": [0, 1], "y": [0, 1]},
            observes={"a": {"x"}, "b": {"y"}},
        )
        checker = ModelChecker(model)
        x_is_1 = prop("x=1")
        worlds_with_x1 = [w for w in model.worlds if ("x", 1) in w]
        assert all(checker.holds(K("a", x_is_1), w) for w in worlds_with_x1)
        assert not any(checker.holds(K("b", x_is_1), w) for w in worlds_with_x1)

    def test_shared_memory_model_collapses_hierarchy(self):
        worlds = ["w0", "w1"]
        model = shared_memory_model(
            ["a", "b"], worlds, lambda w: {"p"} if w == "w1" else set()
        )
        checker = ModelChecker(model)
        p = prop("p")
        assert checker.extension(C(["a", "b"], p)) == checker.extension(D(["a", "b"], p))

    def test_blind_model_makes_valid_facts_common_knowledge(self):
        worlds = ["w0", "w1"]
        model = blind_model(["a", "b"], worlds, lambda w: {"p"})
        checker = ModelChecker(model)
        assert checker.is_valid(C(["a", "b"], prop("p")))


class TestChecker:
    def test_muddy_children_everyone_levels(self, checker):
        world = (True, True, False)  # two muddy children
        assert checker.holds(E(CHILDREN, M), world)
        assert not checker.holds(E(CHILDREN, M, 2), world)

    def test_three_muddy_children_levels(self, checker):
        world = (True, True, True)
        assert checker.holds(E(CHILDREN, M, 2), world)
        assert not checker.holds(E(CHILDREN, M, 3), world)

    def test_someone_versus_everyone(self, checker):
        world = (True, False, False)  # only a muddy: b and c see it, a does not
        assert checker.holds(S(CHILDREN, M), world)
        assert not checker.holds(E(CHILDREN, M), world)

    def test_distributed_knowledge_of_exact_world(self, checker):
        world = (True, False, True)
        exact = prop("muddy_a") & Not(prop("muddy_b")) & prop("muddy_c")
        assert checker.holds(D(CHILDREN, exact), world)
        assert not checker.holds(S(CHILDREN, exact), world)

    def test_common_knowledge_fails_before_announcement(self, checker):
        assert checker.extension(C(CHILDREN, M)) == frozenset()

    def test_reachability_and_fixpoint_strategies_agree(self, model):
        reach = ModelChecker(model, CommonKnowledgeStrategy.REACHABILITY)
        fixp = ModelChecker(model, CommonKnowledgeStrategy.FIXPOINT)
        for formula in (C(CHILDREN, M), C(CHILDREN, prop("muddy_a"))):
            assert reach.extension(formula) == fixp.extension(formula)

    def test_explicit_fixpoint_formula_matches_common(self, model):
        checker = ModelChecker(model)
        explicit = Nu("X", E(CHILDREN, M) & E(CHILDREN, Var("X")))
        # nu X. (E m & E X) == C m on finite S5 models.
        assert checker.extension(explicit) == checker.extension(C(CHILDREN, M))

    def test_knowledge_axiom_holds(self, checker):
        assert checker.is_valid(K("a", M) >> M)

    def test_unknown_agent_raises(self, checker):
        with pytest.raises(UnknownAgentError):
            checker.extension(K("zebra", M))

    def test_temporal_operators_rejected_on_kripke_models(self, checker):
        with pytest.raises(EvaluationError):
            checker.extension(CEps(CHILDREN, M, 1))
        with pytest.raises(EvaluationError):
            checker.extension(CDiamond(CHILDREN, M))
        with pytest.raises(EvaluationError):
            checker.extension(Eventually(M))

    def test_free_variable_is_an_error(self, checker):
        with pytest.raises(EvaluationError):
            checker.extension(Var("X"))

    def test_environment_binds_variables(self, checker, model):
        some_worlds = frozenset([(True, True, True)])
        assert checker.extension(Var("X"), {"X": some_worlds}) == some_worlds


class TestAnnouncements:
    def test_public_announcement_gives_common_knowledge(self, model):
        announced = public_announce(model, M)
        checker = ModelChecker(announced)
        assert checker.is_valid(C(CHILDREN, M))

    def test_cannot_announce_a_contradiction(self, model):
        with pytest.raises(ModelError):
            public_announce(model, prop("muddy_a") & Not(prop("muddy_a")))

    def test_private_announcement_does_not_give_common_knowledge(self, model):
        told = model
        world = (True, True, False)
        for child in CHILDREN:
            told = private_announce(told, child, M)
            world = (world, "told")  # the actual world after each private telling
        checker = ModelChecker(told)
        assert checker.holds(E(CHILDREN, M), world)
        assert not checker.holds(C(CHILDREN, M), world)

    def test_private_announcement_informs_only_the_addressee(self, model):
        told = private_announce(model, "a", prop("muddy_a"))
        checker = ModelChecker(told)
        world = ((True, False, False), "told")
        assert checker.holds(K("a", prop("muddy_a")), world)
        assert not checker.holds(K("b", K("a", prop("muddy_a"))), world)
        # The other children do not even know that the telling happened, so their own
        # knowledge is unchanged.
        assert not checker.holds(K("b", prop("muddy_b")), world)

    def test_announce_sequence_returns_intermediate_models(self, model):
        models = announce_sequence(model, [M, prop("muddy_a")])
        assert len(models) == 2
        assert len(models[0].worlds) == 7
        assert len(models[1].worlds) == 4

    def test_simultaneous_answers_refines_all_agents(self, model):
        updated = simultaneous_answers(
            model, [(child, prop(f"muddy_{child}")) for child in CHILDREN]
        )
        # No worlds are removed, but partitions are refined.
        assert updated.worlds == model.worlds
        world = (True, False, False)
        before = model.equivalence_class("a", world)
        after = updated.equivalence_class("a", world)
        assert after <= before


class TestBisimulation:
    def test_bisimilar_worlds_share_valuation(self, model):
        for block in bisimulation_classes(model):
            facts = {model.facts_at(w) for w in block}
            assert len(facts) == 1

    def test_muddy_model_is_already_minimal(self, model):
        assert len(minimize(model)) == len(model.worlds)

    def test_duplicated_worlds_are_merged(self):
        model = from_worlds(
            worlds=["w0", "w0_copy", "w1"],
            agents=["a"],
            valuation=lambda w: {"p"} if w == "w1" else set(),
            observation=lambda agent, w: w == "w1",
        )
        assert are_bisimilar(model, "w0", "w0_copy")
        reduced = minimize(model)
        assert len(reduced) == 2

    def test_minimization_preserves_formula_extensions(self):
        model = from_worlds(
            worlds=["w0", "w0_copy", "w1"],
            agents=["a", "b"],
            valuation=lambda w: {"p"} if w == "w1" else set(),
            observation=lambda agent, w: (agent, w == "w1"),
        )
        reduced = minimize(model)
        checker = ModelChecker(model)
        reduced_checker = ModelChecker(reduced)
        formula = C(["a", "b"], prop("p"))
        assert checker.is_valid(formula) == reduced_checker.is_valid(formula)
