"""Tests for the analysis layer: hierarchy, attainability theorems, coordination,
clock synchronisation (experiments E2, E4, E6, E9)."""

import pytest

from repro.analysis.attainability import (
    initial_point_reachable,
    matching_silent_run,
    verify_proposition13,
    verify_theorem11,
    verify_theorem5,
    verify_theorem8,
    verify_theorem9,
)
from repro.analysis.clock_sync import (
    clocks_identical,
    every_clock_reads,
    maximum_clock_skew,
    uncertainty_gives_imprecision,
    verify_theorem12,
)
from repro.analysis.coordination import (
    action_coordination,
    coordination_spread,
    knowledge_when_acting,
    simultaneous_action_implies_common_knowledge,
)
from repro.analysis.hierarchy import (
    check_hierarchy,
    hierarchy_collapses,
    separation_profile,
)
from repro.kripke.builders import others_attribute_model, shared_memory_model
from repro.kripke.checker import ModelChecker
from repro.logic.syntax import C, prop
from repro.scenarios import phases, r2d2
from repro.scenarios.coordinated_attack import GENERALS, INTEND, build_handshake_system
from repro.simulation.network import Asynchronous, BoundedUncertain, Unreliable
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.interpretation import ViewBasedInterpretation

CHILDREN = ("a", "b", "c")
M = prop("at_least_one")


class TestHierarchy:
    def test_inclusions_hold_and_hierarchy_is_strict_on_muddy_model(self):
        checker = ModelChecker(others_attribute_model(CHILDREN))
        report = check_hierarchy(checker, CHILDREN, M, max_e_level=3)
        assert report.inclusions_hold
        assert report.strict_levels  # message-passing-style model: strict hierarchy

    def test_shared_memory_model_collapses(self):
        model = shared_memory_model(
            ["a", "b"], ["w0", "w1"], lambda w: {"p"} if w == "w1" else set()
        )
        checker = ModelChecker(model)
        assert hierarchy_collapses(checker, ["a", "b"], prop("p"))

    def test_muddy_model_does_not_collapse(self):
        checker = ModelChecker(others_attribute_model(CHILDREN))
        assert not hierarchy_collapses(checker, CHILDREN, M)

    def test_separation_profile_matches_muddy_children_analysis(self):
        checker = ModelChecker(others_attribute_model(CHILDREN))
        profile = separation_profile(checker, CHILDREN, M, (True, True, False), max_e_level=3)
        assert profile["E^1"] and not profile["E^2"]
        assert not profile["C"]
        assert profile["D"] and profile["S"]

    def test_hierarchy_on_runs_and_systems_backend(self, lossy_interpretation):
        report = check_hierarchy(
            lossy_interpretation, ("A", "B"), prop("delivered"), max_e_level=2
        )
        assert report.inclusions_hold


class TestAttainability:
    def test_theorem5_on_unreliable_handshake(self, handshake_system):
        interp = ViewBasedInterpretation(handshake_system)
        assert verify_theorem5(interp, GENERALS, INTEND)

    def test_theorem5_finds_silent_counterpart(self, handshake_system):
        run = next(r for r in handshake_system.runs if not r.no_messages_received())
        silent = matching_silent_run(handshake_system, run)
        assert silent is not None
        assert silent.no_messages_received()

    def test_theorem9_eventual_variant(self, handshake_system):
        interp = ViewBasedInterpretation(handshake_system)
        both_attack = prop("both_attack")
        assert verify_theorem9(interp, GENERALS, both_attack, eps=None)

    def test_theorem9_eps_variant(self, handshake_system):
        interp = ViewBasedInterpretation(handshake_system)
        assert verify_theorem9(interp, GENERALS, prop("both_attack"), eps=1)

    def test_theorem11_on_asynchronous_channel(self):
        class SendOnce(Protocol):
            def step(self, processor, history, time):
                if processor == "A" and time == 0 and not history.sent_messages():
                    return Action.send("B", "m")
                return Action.nothing()

        def delivered_fact(run):
            times = [
                t
                for t in run.times()
                if any(type(e).__name__ == "ReceiveEvent" for e in run.events_at("B", t))
            ]
            if not times:
                return {}
            return {t: {"delivered"} for t in range(times[0], run.duration + 1)}

        system = simulate(
            SendOnce(),
            ["A", "B"],
            duration=3,
            delivery=Asynchronous(1),
            fact_rules=[delivered_fact],
        )
        interp = ViewBasedInterpretation(system)
        assert verify_theorem11(interp, ("A", "B"), prop("delivered"), eps=1)

    def test_proposition13_and_theorem8_on_temporally_imprecise_system(self):
        class SendOnce(Protocol):
            def step(self, processor, history, time):
                if processor == "A" and time == 0 and not history.sent_messages():
                    return Action.send("B", "m")
                return Action.nothing()

        def delivered_fact(run):
            times = [
                t
                for t in run.times()
                if any(type(e).__name__ == "ReceiveEvent" for e in run.events_at("B", t))
            ]
            if not times:
                return {}
            return {t: {"delivered"} for t in range(times[0], run.duration + 1)}

        system = simulate(
            SendOnce(),
            ["A", "B"],
            duration=4,
            delivery=BoundedUncertain(1, 2),
            fact_rules=[delivered_fact],
        )
        interp = ViewBasedInterpretation(system)
        delivered = prop("delivered")
        assert verify_proposition13(interp, ("A", "B"), delivered)
        assert verify_theorem8(interp, ("A", "B"), delivered)
        run = next(r for r in system.runs if not r.no_messages_received())
        assert initial_point_reachable(interp, ("A", "B"), run, run.duration)

    def test_theorem8_hypothesis_failure_is_reported(self):
        # With perfectly synchronised clocks the initial point is never reachable
        # from later points, so the temporal-imprecision hypothesis fails and
        # verify_theorem8 must say so rather than silently passing.
        system = phases.build_phase_system(phase_end=2, skew=0)
        interp = ViewBasedInterpretation(system)
        report = verify_theorem8(interp, phases.GROUP, phases.DECIDED)
        assert not report
        assert any("hypothesis" in text for text in report.counterexamples)


class TestCoordinationAndClocks:
    def test_action_coordination_of_phase_protocol(self):
        system = phases.build_phase_system(phase_end=2, skew=1)
        spreads = []
        for run in system.runs:
            coordination = action_coordination(run, phases.GROUP, "decide")
            assert coordination.performed_by_all
            spreads.append(coordination.spread)
        assert max(spreads) == 1
        assert coordination_spread(system, phases.GROUP, "decide") == 1

    def test_zero_skew_gives_simultaneous_decisions(self):
        system = phases.build_phase_system(phase_end=2, skew=0)
        for run in system.runs:
            assert action_coordination(run, phases.GROUP, "decide").simultaneous

    def test_knowledge_when_acting_for_phase_protocol(self):
        system = phases.build_phase_system(phase_end=2, skew=1)
        interp = ViewBasedInterpretation(system)
        verdicts = knowledge_when_acting(
            interp, phases.GROUP, "decide", phases.DECIDED, eps=1, timestamp=2.0
        )
        assert verdicts["C<>"]
        assert verdicts["C^T=2.0"]

    def test_simultaneous_action_implies_common_knowledge_zero_skew(self):
        system = phases.build_phase_system(phase_end=2, skew=0)
        interp = ViewBasedInterpretation(system)
        assert simultaneous_action_implies_common_knowledge(
            interp, phases.GROUP, "decide", phases.DECIDED
        )

    def test_clock_metrics(self):
        identical = phases.build_phase_system(phase_end=2, skew=0)
        skewed = phases.build_phase_system(phase_end=2, skew=1)
        assert clocks_identical(identical)
        assert not clocks_identical(skewed)
        assert maximum_clock_skew(skewed) == 1
        assert every_clock_reads(skewed, 2.0)

    def test_theorem12_on_phase_system(self):
        system = phases.build_phase_system(phase_end=2, skew=1)
        interp = ViewBasedInterpretation(system)
        report = verify_theorem12(interp, phases.GROUP, phases.DECIDED, timestamp=2.0)
        assert report.part_b_applicable and report.part_c_applicable
        assert report.holds

    def test_theorem12_part_a_with_identical_clocks(self):
        system = phases.build_phase_system(phase_end=2, skew=0)
        interp = ViewBasedInterpretation(system)
        report = verify_theorem12(interp, phases.GROUP, phases.DECIDED, timestamp=2.0)
        assert report.part_a_applicable
        assert report.holds

    def test_r2d2_uncertain_system_pins_time_through_clocks(self):
        # The R2-D2 processors carry perfect clocks, so the strict grid-shift
        # condition fails (the clock readings pin real time); the staircase behaviour
        # of experiment E5 comes from the delivery uncertainty alone.
        system = r2d2.build_uncertain_system(epsilon=1, send_window=3)
        report = uncertainty_gives_imprecision(system)
        assert not report
