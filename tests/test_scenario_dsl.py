"""The scenario DSL: recipes, registration, error paths, and the ported scenarios.

Three concerns:

* **Error paths** — malformed recipes and bad per-assignment resolutions raise
  :class:`~repro.errors.DSLError` (a :class:`ScenarioError`, so the CLI prints
  it without a traceback) with messages naming the offending ingredient.
* **The ok_protocol port** — the hand-wired PR 2 registration was replaced by a
  :class:`ScenarioRecipe`; a shadow registration of the legacy builder must
  produce *identical* sweep rows.
* **Family sanity** — the new DSL families (gossip, sequence transmission,
  byzantine general) pin the knowledge facts their docstrings claim.
"""

from __future__ import annotations

import pytest

from repro.errors import DSLError, ScenarioError, TraceError
from repro.experiments import ExperimentRunner
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.logic.syntax import Prop
from repro.scenarios.dsl import ScenarioRecipe
from repro.scenarios.ok_protocol import _registry_formulas, build_ok_system
from repro.simulation.network import ReliableSynchronous, Unreliable
from repro.simulation.protocol import Action, Protocol


class _Ping(Protocol):
    """A sends one message to B at time 0 (the minimal recipe protocol)."""

    def step(self, processor, history, time):
        if processor == "A" and time == 0 and not history.sent_messages():
            return Action.send("B", "ping")
        return Action.nothing()


def recipe(**overrides):
    """A valid baseline recipe, with per-test field overrides."""
    fields = dict(
        name="dsl_test_ping",
        summary="one message over a reliable link",
        section="test",
        processors=("A", "B"),
        protocol=_Ping(),
        horizon=2,
        delivery=ReliableSynchronous(1),
    )
    fields.update(overrides)
    return ScenarioRecipe(**fields)


# -- definition-time validation --------------------------------------------------


def test_baseline_recipe_builds():
    built = recipe().build()
    assert len(built.model.runs) == 1
    assert built.model.runs[0].duration == 2


def test_dsl_error_is_a_scenario_error():
    assert issubclass(DSLError, ScenarioError)
    assert not issubclass(TraceError, ScenarioError)


def test_empty_name_rejected():
    with pytest.raises(DSLError, match="non-empty name"):
        recipe(name="").validate()


def test_missing_summary_rejected():
    with pytest.raises(DSLError, match="needs a summary"):
        recipe(summary="").validate()


def test_non_parameter_schema_rejected():
    with pytest.raises(DSLError, match="must be Parameter objects"):
        recipe(parameters=("horizon",)).validate()


def test_duplicate_parameters_rejected():
    params = (
        Parameter("n", int, default=2),
        Parameter("n", int, default=3),
    )
    with pytest.raises(DSLError, match="declares parameter 'n' twice"):
        recipe(parameters=params).validate()


def test_horizon_unknown_parameter_rejected():
    with pytest.raises(DSLError, match="horizon references unknown parameter"):
        recipe(horizon="steps").validate()


def test_horizon_non_int_parameter_rejected():
    params = (Parameter("steps", str, default="three"),)
    with pytest.raises(DSLError, match="must be int-typed"):
        recipe(horizon="steps", parameters=params).validate()


def test_horizon_wrong_type_rejected():
    with pytest.raises(DSLError, match="horizon must be an int"):
        recipe(horizon=2.5).validate()


def test_constant_delivery_wrong_type_rejected():
    with pytest.raises(DSLError, match="delivery must be a DeliveryModel"):
        recipe(delivery="unreliable").validate()


def test_constant_protocol_wrong_type_rejected():
    with pytest.raises(DSLError, match="protocol must be a Protocol"):
        recipe(protocol="ping").validate()


def test_unparsable_static_formula_rejected():
    with pytest.raises(DSLError, match="does not parse"):
        recipe(formulas={"bad": "K_ ("}).validate()


def test_static_formula_wrong_type_rejected():
    with pytest.raises(DSLError, match="must be formula text"):
        recipe(formulas={"bad": 42}).validate()


def test_default_labels_unknown_label_rejected():
    with pytest.raises(DSLError, match="unknown formula label"):
        recipe(
            formulas={"ok": "delivered"}, default_labels=("missing",)
        ).validate()


def test_default_labels_without_suite_rejected():
    with pytest.raises(DSLError, match="no formula suite"):
        recipe(default_labels=("ok",)).validate()


def test_register_validates_first():
    with pytest.raises(DSLError, match="needs a summary"):
        recipe(summary="").register()


# -- per-assignment resolution errors --------------------------------------------


def test_processors_must_resolve_to_sequence():
    with pytest.raises(DSLError, match="must resolve to a sequence"):
        recipe(processors=lambda params: 7).build()


def test_processors_must_be_nonempty_and_unique():
    with pytest.raises(DSLError, match="empty tuple"):
        recipe(processors=lambda params: ()).build()
    with pytest.raises(DSLError, match="must be unique"):
        recipe(processors=("A", "A")).build()


def test_protocol_mapping_missing_processor_is_arity_mismatch():
    with pytest.raises(DSLError, match="arity mismatch"):
        recipe(protocol={"A": _Ping()}).build()


def test_protocol_mapping_extra_processor_rejected():
    with pytest.raises(DSLError, match="does not declare"):
        recipe(protocol={"A": _Ping(), "B": _Ping(), "C": _Ping()}).build()


def test_resolved_horizon_must_be_nonnegative_int():
    with pytest.raises(DSLError, match="not an int"):
        recipe(horizon=lambda params: "soon").build()
    with pytest.raises(DSLError, match="non-negative"):
        recipe(horizon=lambda params: -1).build()


def test_resolved_delivery_must_be_model():
    with pytest.raises(DSLError, match="not a DeliveryModel"):
        recipe(delivery=lambda params: "unreliable").build()


def test_resolved_adversary_must_be_callable():
    with pytest.raises(DSLError, match="not a callable drop rule"):
        recipe(adversary=lambda params: "drop everything").build()


def test_environment_map_unknown_processor_rejected():
    with pytest.raises(DSLError, match="unknown processors"):
        recipe(initial_states={"Z": (0,)}).build()


def test_environment_map_wrong_type_rejected():
    with pytest.raises(DSLError, match="must resolve to a mapping"):
        recipe(wake_times=lambda params: [1, 2]).build()


def test_fact_rules_wrong_type_rejected():
    with pytest.raises(DSLError, match="fact_rules must resolve to a sequence"):
        recipe(fact_rules=lambda params: 3).build()


def test_formula_suite_must_resolve_to_mapping():
    bad = recipe(formulas=lambda params: ["delivered"])
    with pytest.raises(DSLError, match="must resolve to a mapping"):
        bad.resolve_formulas({})


def test_formula_entry_must_resolve_to_formula():
    bad = recipe(formulas={"late": lambda params: 42})
    with pytest.raises(DSLError, match="not a Formula"):
        bad.resolve_formulas({})


def test_callable_formula_entry_parse_error_reported():
    bad = recipe(formulas={"late": lambda params: "K_ ("})
    with pytest.raises(DSLError, match="does not parse"):
        bad.resolve_formulas({})


def test_simulation_failure_reported_as_dsl_error():
    from repro.errors import ProtocolError

    class Exploding(Protocol):
        def step(self, processor, history, time):
            raise ProtocolError("this protocol refuses to run")

    with pytest.raises(DSLError, match="failed to simulate"):
        recipe(protocol=Exploding()).build()


# -- registration and the adversary hook -----------------------------------------


def test_registered_recipe_round_trips_through_registry():
    spec = recipe(
        name="dsl_test_registered",
        parameters=(Parameter("horizon", int, default=2, minimum=1),),
        horizon="horizon",
        formulas={"true": "true"},
    ).register()
    try:
        fetched = get_scenario("dsl_test_registered")
        assert fetched.name == spec.name
        built = fetched.build(fetched.validate_params({"horizon": 3}))
        assert built.model.runs[0].duration == 3
        assert list(fetched.default_formulas({"horizon": 3})) == ["true"]
        assert fetched.builder.recipe.name == "dsl_test_registered"
    finally:
        unregister_scenario("dsl_test_registered")


def test_adversary_composes_drop_rule_over_delivery():
    """A drop-everything adversary silences the reliable channel entirely."""
    silenced = recipe(adversary=lambda params: (lambda message, time: True)).build()
    assert all(run.no_messages_received() for run in silenced.model.runs)
    open_channel = recipe().build()
    assert not all(run.no_messages_received() for run in open_channel.model.runs)


def test_default_labels_select_a_subset():
    spec_recipe = recipe(
        formulas={"a": "true", "b": "false"}, default_labels=("b",)
    )
    assert list(spec_recipe.resolve_formulas({})) == ["b"]


# -- the ok_protocol port: identical sweep rows before/after ---------------------


def comparable(reports):
    """Deterministic sweep content, with the scenario name factored out."""
    return [
        (
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


def test_ok_protocol_port_matches_legacy_rows():
    """The DSL registration reproduces the hand-wired sweep, row for row."""

    @register_scenario(
        name="ok_protocol_legacy",
        summary="legacy hand-wired ok_protocol registration (test shadow)",
        section="Section 11",
        parameters=(
            Parameter("horizon", int, default=3, minimum=1, description="steps"),
            Parameter("eps", int, default=1, minimum=0, description="epsilon"),
        ),
        formulas=_registry_formulas,
    )
    def build_legacy(horizon: int, eps: int) -> BuiltScenario:
        return BuiltScenario(
            model=build_ok_system(horizon),
            note="no focus point: the Section 11 claims are validity claims",
        )

    try:
        grid = {"horizon": [1, 2, 3], "eps": [0, 1]}
        ported = ExperimentRunner().sweep("ok_protocol", grid)
        legacy = ExperimentRunner().sweep("ok_protocol_legacy", grid)
        assert comparable(ported) == comparable(legacy)
        assert all(report.scenario == "ok_protocol" for report in ported)
    finally:
        unregister_scenario("ok_protocol_legacy")


# -- family sanity ---------------------------------------------------------------


def test_gossip_secret_spreads_but_is_not_common():
    report = ExperimentRunner().run("gossip", {"n": 3, "horizon": 4})
    rows = {row.label: row for row in report.rows}
    assert report.universe == 8 * 5  # 2^3 secret assignments x 5 points each
    assert rows["E whether secret_0"].valid
    assert rows["K_g1 whether secret_0"].satisfiable
    assert not rows["C secret_0"].valid
    assert rows["C secret_0"].satisfiable


def test_gossip_run_count_scales_with_ring_size():
    for n in (2, 4):
        report = ExperimentRunner().run("gossip", {"n": n, "horizon": 2})
        assert report.universe == (2 ** n) * 3


def test_sequence_transmission_knowledge_without_common_knowledge():
    """Over the unreliable line the receiver can know the bit; C never holds."""
    report = ExperimentRunner().run(
        "sequence_transmission",
        {"n_bits": 1, "horizon": 3, "delivery": "unreliable"},
    )
    rows = {row.label: row for row in report.rows}
    assert rows["K_R whether bit_0"].satisfiable
    assert not rows["C whether bit_0"].satisfiable
    assert not rows["K_S got_0"].satisfiable  # no ack arrives within horizon 3


def test_sequence_transmission_reliable_delivers_eventually():
    report = ExperimentRunner().run(
        "sequence_transmission",
        {"n_bits": 1, "horizon": 3, "delivery": "reliable"},
    )
    rows = {row.label: row for row in report.rows}
    assert rows["<> got_0"].valid
    assert rows["C whether bit_0"].satisfiable


def test_byzantine_detection_climbs_to_common_knowledge():
    report = ExperimentRunner().run(
        "byzantine_general", {"horizon": 4, "drop_first": 0}
    )
    rows = {row.label: row for row in report.rows}
    assert rows["detect_r0"].satisfiable
    assert rows["K_r0 faulty"].satisfiable
    assert rows["C faulty"].satisfiable
    assert not rows["faulty"].valid  # the honest runs exist


def test_byzantine_adversary_destroys_detection():
    report = ExperimentRunner().run(
        "byzantine_general", {"horizon": 4, "drop_first": 6}
    )
    rows = {row.label: row for row in report.rows}
    assert rows["faulty"].satisfiable  # the fact still varies with the run
    assert not rows["detect_r0"].satisfiable
    assert not rows["K_r0 faulty"].satisfiable
    assert not rows["C faulty"].satisfiable
