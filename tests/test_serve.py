"""The evaluation service: endpoints, coalescing, streaming, shutdown.

Four families of guarantees live here:

* **Endpoint round-trips** — every endpoint answered by a real server on an
  ephemeral port matches its CLI ``--json`` twin: ``GET /scenarios`` is
  ``repro list --json``, ``GET /scenarios/<name>`` is ``repro describe
  --json``, a ``POST /run`` body is a ``repro run --json`` report, and the
  ``POST /sweep`` NDJSON rows parse to exactly the elements ``repro sweep
  --json`` prints, in the same grid order (timing fields excluded — they
  are honest wall-clock measurements).
* **Coalescing** — N concurrent identical ``POST /run`` requests cost one
  ``eval_count`` and produce byte-identical responses; different requests
  evaluate independently; the request digest is the store's content
  address, so the same logical request from HTTP JSON and from CLI ``-p``
  strings lands on the same store row.
* **Error bodies** — malformed requests answer structured JSON carrying
  the library's message and, for static-check failures, the full REP
  diagnostic list; transport errors (bad JSON, bad route, bad method) are
  equally structured.
* **Lifecycle** — the event loop answers ``/healthz`` while a sweep
  streams, and a graceful shutdown mid-stream truncates the NDJSON at a
  line boundary (every received line parses; the completion trailer is
  absent).

The container has no async test plugin, so every test drives the server
with plain :mod:`http.client` from the test thread while
:class:`repro.serve.ServerThread` owns the event loop.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main as cli_main
from repro.errors import ReproError
from repro.serve import ServerThread, parse_run_request
from repro.serve.schema import ServeRequestError, parse_sweep_request

# Wall-clock measurements legitimately differ between otherwise identical
# reports; everything else must match exactly.
TIMING_FIELDS = ("build_seconds", "eval_seconds")


def comparable(report_dict):
    return {k: v for k, v in report_dict.items() if k not in TIMING_FIELDS}


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def get(server, path):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def post(server, path, payload):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    try:
        conn.request("POST", path, body=json.dumps(payload))
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def slow_runner(server, delay=0.25):
    """Wrap the resident runner's ``run`` with a delay.

    Evaluations on the test scenarios finish in single-digit milliseconds —
    faster than eight client threads can connect — so coalescing tests
    widen the in-flight window to make the overlap deterministic.
    """
    runner = server.app.state.runner
    original = runner.run

    def slowed(*args, **kwargs):
        time.sleep(delay)
        return original(*args, **kwargs)

    runner.run = slowed
    return runner


@pytest.fixture
def server():
    with ServerThread() as running:
        yield running


# -- endpoint round-trips ------------------------------------------------------

def test_healthz(server):
    status, payload = get(server, "/healthz")
    assert status == 200
    assert payload["ok"] is True
    assert payload["scenarios"] > 0
    assert payload["store"] is False


def test_stats_shape(server):
    status, payload = get(server, "/stats")
    assert status == 200
    assert payload["eval_count"] == 0
    assert payload["store_hits"] == 0
    assert payload["coalesce"] == {"hits": 0, "misses": 0, "inflight": 0}


def test_scenarios_matches_cli_list_json(server, capsys):
    code, out, _ = run_cli(capsys, "list", "--json")
    assert code == 0
    status, payload = get(server, "/scenarios")
    assert status == 200
    assert payload == json.loads(out)


def test_scenario_detail_matches_cli_describe_json(server, capsys):
    code, out, _ = run_cli(capsys, "describe", "muddy_children", "--json")
    assert code == 0
    status, payload = get(server, "/scenarios/muddy_children")
    assert status == 200
    assert payload == json.loads(out)


def test_run_matches_cli_run_json(server, capsys):
    code, out, _ = run_cli(
        capsys, "run", "muddy_children", "-p", "n=3", "-p", "k=2", "--json"
    )
    assert code == 0
    status, body = post(
        server, "/run", {"scenario": "muddy_children", "params": {"n": 3, "k": 2}}
    )
    assert status == 200
    assert comparable(json.loads(body)) == comparable(json.loads(out))


def test_sweep_rows_match_cli_sweep_json(server, capsys):
    code, out, _ = run_cli(
        capsys,
        "sweep",
        "muddy_children",
        "-g",
        "n=2..4",
        "-p",
        "k=1",
        "--backends",
        "both",
        "--json",
    )
    assert code == 0
    cli_rows = json.loads(out)
    status, body = post(
        server,
        "/sweep",
        {
            "scenario": "muddy_children",
            "grid": {"n": [2, 3, 4]},
            "params": {"k": 1},
            "backends": "both",
        },
    )
    assert status == 200
    lines = [json.loads(line) for line in body.decode().splitlines()]
    assert lines[-1] == {"sweep_complete": True, "rows": len(cli_rows)}
    served_rows = lines[:-1]
    assert len(served_rows) == len(cli_rows)
    for served, expected in zip(served_rows, cli_rows):
        assert comparable(served) == comparable(expected)


def test_sweep_rows_are_compact_single_lines(server):
    status, body = post(
        server,
        "/sweep",
        {"scenario": "muddy_children", "grid": {"n": [2]}, "params": {"k": 1}},
    )
    assert status == 200
    lines = body.decode().splitlines()
    for line in lines:
        # each line is one complete, compact JSON document
        assert json.dumps(json.loads(line), separators=(",", ":")) == line


# -- error bodies --------------------------------------------------------------

def test_unknown_scenario_is_404(server):
    status, body = post(server, "/run", {"scenario": "nope", "params": {}})
    assert status == 404
    error = json.loads(body)["error"]
    assert error["type"] == "unknown_scenario"
    assert "nope" in error["message"]
    status, _payload = get(server, "/scenarios/nope")
    assert status == 404


def test_check_error_carries_rep_diagnostics(server):
    status, body = post(
        server,
        "/run",
        {"scenario": "muddy_children", "formulas": ["K_1 bogus_atom"]},
    )
    assert status == 400
    error = json.loads(body)["error"]
    assert error["type"] == "check_failed"
    codes = {diagnostic["code"] for diagnostic in error["diagnostics"]}
    assert codes & {"REP101", "REP102"}


def test_bad_parameter_is_400(server):
    status, body = post(
        server, "/run", {"scenario": "muddy_children", "params": {"n": 2.5}}
    )
    assert status == 400
    assert "fractional" in json.loads(body)["error"]["message"]


def test_invalid_json_body_is_400(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request("POST", "/run", body=b"{not json")
        response = conn.getresponse()
        assert response.status == 400
        assert json.loads(response.read())["error"]["type"] == "invalid_request"
    finally:
        conn.close()


def test_unknown_route_and_bad_method(server):
    status, payload = get(server, "/no/such/route")
    assert status == 404
    assert payload["error"]["type"] == "not_found"
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request("POST", "/healthz", body=b"{}")
        response = conn.getresponse()
        assert response.status == 405
    finally:
        conn.close()


def test_sweep_conflicting_fixed_and_swept_param(server):
    status, body = post(
        server,
        "/sweep",
        {"scenario": "muddy_children", "grid": {"n": [2, 3]}, "params": {"n": 2}},
    )
    assert status == 400
    assert "both fixed" in json.loads(body)["error"]["message"]


def test_sweep_invalid_batch_fails_before_streaming(server):
    # pre-flight runs before the 200 status line: the failure is a JSON
    # error body, not a truncated NDJSON stream
    status, body = post(
        server,
        "/sweep",
        {
            "scenario": "muddy_children",
            "grid": {"n": [2, 3]},
            "formulas": ["K_1 bogus_atom"],
        },
    )
    assert status == 400
    assert json.loads(body)["error"]["type"] == "check_failed"


# -- coalescing ----------------------------------------------------------------

def test_concurrent_identical_runs_coalesce_to_one_evaluation():
    with ServerThread() as server:
        runner = slow_runner(server)
        payload = {"scenario": "muddy_children", "params": {"n": 4, "k": 3}}

        def one(_index):
            return post(server, "/run", payload)

        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(one, range(8)))
        assert {status for status, _ in results} == {200}
        assert len({body for _, body in results}) == 1
        assert runner.eval_count == 1
        _status, stats = get(server, "/stats")
        assert stats["eval_count"] == 1
        assert stats["coalesce"]["misses"] == 1
        assert stats["coalesce"]["hits"] == 7


def test_different_requests_do_not_coalesce():
    with ServerThread() as server:
        runner = slow_runner(server, delay=0.15)

        def one(n):
            return post(
                server, "/run", {"scenario": "muddy_children", "params": {"n": n}}
            )

        with ThreadPoolExecutor(2) as pool:
            results = list(pool.map(one, (3, 4)))
        assert {status for status, _ in results} == {200}
        assert runner.eval_count == 2


def test_digest_identical_across_json_and_cli_spellings():
    # JSON floats, JSON ints and CLI strings all canonicalise to the same
    # content address — the coalescing key and the store key are one thing
    spellings = [
        {"scenario": "muddy_children", "params": {"n": 4.0, "k": 2.0}},
        {"scenario": "muddy_children", "params": {"n": 4, "k": 2}},
        {"scenario": "muddy_children", "params": {"n": "4", "k": "2"}},
        {"scenario": "muddy_children", "params": {"k": 2, "n": 4}},
    ]
    digests = {parse_run_request(payload).digest for payload in spellings}
    assert len(digests) == 1
    assert None not in digests


def test_http_run_and_cli_run_share_a_store_row(tmp_path, capsys):
    # The differential test pinning satellite 3: an HTTP request with JSON
    # float params and a CLI invocation with -p strings must land on the
    # same store key, so the CLI run is served from the HTTP run's row.
    store_path = str(tmp_path / "serve.sqlite")
    with ServerThread(store_path=store_path) as server:
        status, body = post(
            server,
            "/run",
            {"scenario": "muddy_children", "params": {"n": 4.0, "k": 2.0}},
        )
        assert status == 200
        assert json.loads(body)["from_store"] is False
        assert server.app.state.runner.eval_count == 1

        # a second identical request is served from the store, not re-evaluated
        status, body = post(
            server,
            "/run",
            {"scenario": "muddy_children", "params": {"n": 4, "k": 2}},
        )
        assert status == 200
        assert json.loads(body)["from_store"] is True
        assert server.app.state.runner.eval_count == 1

    code, out, _ = run_cli(
        capsys,
        "run",
        "muddy_children",
        "-p",
        "n=4",
        "-p",
        "k=2",
        "--store",
        store_path,
        "--resume",
        "--json",
    )
    assert code == 0
    assert json.loads(out)["from_store"] is True


# -- lifecycle -----------------------------------------------------------------

def test_healthz_answers_while_sweep_streams():
    with ServerThread() as server:
        slow_runner(server, delay=0.3)
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            conn.request(
                "POST",
                "/sweep",
                body=json.dumps(
                    {
                        "scenario": "muddy_children",
                        "grid": {"n": [2, 3, 4]},
                        "params": {"k": 1},
                    }
                ),
            )
            response = conn.getresponse()
            first = response.readline()  # at least one point evaluated
            assert json.loads(first)["params"]["n"] == 2
            # the remaining points take ~0.6s; the loop must answer now
            started = time.perf_counter()
            status, payload = get(server, "/healthz")
            elapsed = time.perf_counter() - started
            assert status == 200 and payload["ok"] is True
            assert elapsed < 0.25
            rest = response.read().decode()
            assert json.loads(rest.splitlines()[-1])["sweep_complete"] is True
        finally:
            conn.close()


def test_graceful_shutdown_mid_stream_ends_on_a_line_boundary():
    server = ServerThread().start()
    try:
        slow_runner(server, delay=0.2)
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        conn.request(
            "POST",
            "/sweep",
            body=json.dumps(
                {
                    "scenario": "muddy_children",
                    "grid": {"n": [2, 3, 4, 5, 6]},
                    "params": {"k": 1},
                }
            ),
        )
        response = conn.getresponse()
        first = response.readline()
        assert json.loads(first)["params"]["n"] == 2
    finally:
        server.stop()
    # whatever arrived after shutdown still parses line by line, and the
    # completion trailer never appeared: the stream is honestly truncated
    remainder = response.read().decode()
    documents = [json.loads(line) for line in remainder.splitlines() if line]
    assert all("sweep_complete" not in doc for doc in documents)
    conn.close()


def test_keepalive_connection_serves_many_requests(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        for _ in range(3):
            conn.request("GET", "/healthz")
            assert conn.getresponse().read()
        conn.request(
            "POST",
            "/run",
            body=json.dumps({"scenario": "muddy_children", "params": {}}),
        )
        assert conn.getresponse().status == 200
    finally:
        conn.close()


def test_store_survives_across_requests():
    # the resident store makes the second request a store hit, not an eval
    import tempfile, os

    with tempfile.TemporaryDirectory() as tmp:
        with ServerThread(store_path=os.path.join(tmp, "s.sqlite")) as server:
            payload = {"scenario": "muddy_children", "params": {"n": 3, "k": 1}}
            post(server, "/run", payload)
            post(server, "/run", payload)
            _status, stats = get(server, "/stats")
            assert stats["eval_count"] == 1
            assert stats["store_hits"] == 1


# -- request schema (no server needed) -----------------------------------------

def test_parse_run_request_rejects_unknown_fields():
    with pytest.raises(ServeRequestError, match="unknown request field"):
        parse_run_request({"scenario": "muddy_children", "prams": {}})


def test_parse_run_request_rejects_non_object():
    with pytest.raises(ServeRequestError, match="JSON object"):
        parse_run_request([1, 2, 3])


def test_parse_sweep_request_counts_grid_points():
    request = parse_sweep_request(
        {
            "scenario": "muddy_children",
            "grid": {"n": [2, 3, 4]},
            "params": {"k": 1},
            "backends": "both",
        }
    )
    assert request.point_count == 6
    assert request.backends == ("frozenset", "bitset")
    assert request.grid["k"] == [1]


def test_parse_sweep_request_rejects_empty_axis():
    with pytest.raises(ServeRequestError, match="non-empty"):
        parse_sweep_request({"scenario": "muddy_children", "grid": {"n": []}})


def test_serve_cli_rejects_bad_workers(capsys):
    code, _out, err = run_cli(capsys, "serve", "--workers", "0")
    assert code == 2
    assert "--workers" in err


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_serve_process_shuts_down_on_signal_even_with_sigint_ignored(signum):
    """A backgrounded server still takes its stop signals and exits 130.

    Non-interactive shells launch ``cmd &`` jobs with SIGINT set to SIG_IGN
    and Python leaves an ignored SIGINT alone — without run_server restoring
    the handler, ``kill -INT`` (and CI's teardown) would hang forever.  The
    subprocess reproduces that launch environment via preexec_fn.
    """
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--no-store"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=repo_root,
        preexec_fn=lambda: signal.signal(signal.SIGINT, signal.SIG_IGN),
    )
    try:
        line = proc.stdout.readline().decode("utf-8", "replace")
        assert "listening on" in line, line
        proc.send_signal(signum)
        code = proc.wait(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert code == 130
