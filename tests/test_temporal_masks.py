"""Differential and unit tests for the mask-space temporal evaluator.

The systems layer evaluates the temporal and temporal-epistemic operators twice:
the frozenset transcription of the paper's clauses (the reference semantics in
``ViewBasedInterpretation._evaluate_temporal``) and the mask-space fast path used
on the bitset backend (``_evaluate_temporal_masks`` over a
:class:`repro.engine.universe.Segmentation`).  This module pins the two paths
observably identical — per operator, on seeded simulated systems and on a
hand-built ragged system with drifting clocks — and unit-tests the segment sweeps
against brute-force models.  The temporal-operator bugfix regressions (fractional
eps rejection, drifting-clock timestamp matching) live here too.
"""

from __future__ import annotations

import random
import zlib

import pytest

from _engine_gen import TEMPORAL_NODE_TYPES, formula_suite, node_types_used
from repro.engine import Segmentation
from repro.errors import EvaluationError, ModelError, ReproError, UnknownAgentError
from repro.logic.syntax import (
    Always,
    CDiamond,
    CEps,
    CT,
    EDiamond,
    EEps,
    ET,
    Eventually,
    KT,
    Knows,
    Not,
    Prop,
)
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.scenarios.ok_protocol import build_ok_system
from repro.systems.clocks import offset_clock, perfect_clock, scaled_clock
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import RunBuilder
from repro.systems.system import System


# ---------------------------------------------------------------------------
# Segmentation unit tests (brute-force models)
# ---------------------------------------------------------------------------

RAGGED_LENGTHS = (4, 1, 7, 3, 2, 5)


def _segment_of(segments, position):
    for offset, length in zip(segments.offsets, segments.lengths):
        if offset <= position < offset + length:
            return offset, length
    raise AssertionError(f"position {position} outside every segment")


def _bits(mask):
    position = 0
    while mask:
        if mask & 1:
            yield position
        mask >>= 1
        position += 1


def _brute_suffix_or(segments, mask):
    result = 0
    total = sum(segments.lengths)
    for p in range(total):
        offset, length = _segment_of(segments, p)
        if any(mask >> q & 1 for q in range(p, offset + length)):
            result |= 1 << p
    return result


def _random_masks(seed, total, count):
    rng = random.Random(seed)
    return [rng.getrandbits(total) for _ in range(count)]


@pytest.fixture(scope="module")
def ragged():
    return Segmentation(RAGGED_LENGTHS)


def test_segmentation_rejects_degenerate_inputs():
    with pytest.raises(ModelError):
        Segmentation(())
    with pytest.raises(ModelError):
        Segmentation((3, 0, 2))


def test_segmentation_layout(ragged):
    assert ragged.lengths == RAGGED_LENGTHS
    assert ragged.offsets == (0, 4, 5, 12, 15, 17)
    assert ragged.full_mask == (1 << sum(RAGGED_LENGTHS)) - 1
    assert len(ragged) == len(RAGGED_LENGTHS)
    assert ragged.segment_mask(2) == ((1 << 7) - 1) << 5


def test_suffix_or_matches_brute_force(ragged):
    total = sum(RAGGED_LENGTHS)
    for mask in _random_masks(0xA0, total, 50):
        assert ragged.suffix_or(mask) == _brute_suffix_or(ragged, mask)


def test_suffix_and_prefix_or_match_brute_force(ragged):
    total = sum(RAGGED_LENGTHS)
    for mask in _random_masks(0xA1, total, 50):
        expected_and = 0
        expected_prefix = 0
        for p in range(total):
            offset, length = _segment_of(ragged, p)
            if all(mask >> q & 1 for q in range(p, offset + length)):
                expected_and |= 1 << p
            if any(mask >> q & 1 for q in range(offset, p + 1)):
                expected_prefix |= 1 << p
        assert ragged.suffix_and(mask) == expected_and
        assert ragged.prefix_or(mask) == expected_prefix


def test_spread_and_covered_match_brute_force(ragged):
    total = sum(RAGGED_LENGTHS)
    for mask in _random_masks(0xA2, total, 50):
        expected_spread = 0
        expected_covered = 0
        for index in range(len(ragged)):
            segment = ragged.segment_mask(index)
            if mask & segment:
                expected_spread |= segment
            if mask & segment == segment:
                expected_covered |= segment
        assert ragged.spread(mask) == expected_spread
        assert ragged.covered(mask) == expected_covered


@pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 8])
def test_window_sweeps_match_brute_force(ragged, width):
    total = sum(RAGGED_LENGTHS)
    for mask in _random_masks(0xA3 + width, total, 25):
        expected_ahead = 0
        expected_behind = 0
        for p in range(total):
            offset, length = _segment_of(ragged, p)
            ahead = range(p, min(p + width, offset + length))
            behind = range(max(p - width + 1, offset), p + 1)
            if any(mask >> q & 1 for q in ahead):
                expected_ahead |= 1 << p
            if any(mask >> q & 1 for q in behind):
                expected_behind |= 1 << p
        assert ragged.window_or_ahead(mask, width) == expected_ahead
        assert ragged.window_or_behind(mask, width) == expected_behind


def test_sweeps_never_cross_segment_boundaries(ragged):
    # A single bit at a segment's first position must not bleed into the
    # previous segment under any backward sweep.
    for index in range(1, len(ragged)):
        lone = 1 << ragged.offsets[index]
        previous = ragged.segment_mask(index - 1)
        for swept in (
            ragged.suffix_or(lone),
            ragged.window_or_ahead(lone, 4),
            ragged.spread(lone),
        ):
            assert swept & previous == 0


# ---------------------------------------------------------------------------
# Differential: mask path vs frozenset reference
# ---------------------------------------------------------------------------

GROUP = ("A", "B")
P = Prop("p")
Q = Prop("q")


def _ragged_clocked_system():
    """A hand-built system: ragged durations, drifting/offset/absent clocks.

    Exercises everything the simulated systems do not: runs of different
    lengths (ragged segment layout), non-integer clock rates (float readings),
    and a clockless processor (``K^T`` vacuously false for it).
    """
    runs = []
    specs = [
        ("r0", 5, {"A": perfect_clock(5), "B": scaled_clock(5, 0.5)}),
        ("r1", 2, {"A": offset_clock(2, 1.0), "B": scaled_clock(2, 0.5)}),
        ("r2", 7, {"A": perfect_clock(7), "B": None}),
        ("r3", 3, {"A": scaled_clock(3, 1.5), "B": perfect_clock(3)}),
    ]
    rng = random.Random(0xBEEF)
    for name, duration, clocks in specs:
        builder = RunBuilder(name, GROUP, duration, clocks=clocks)
        for time in range(duration + 1):
            if rng.random() < 0.5:
                builder.add_fact(time, "p")
            if rng.random() < 0.3:
                builder.add_fact(time, "q")
        if duration >= 2:
            message = builder.send("A", "B", f"m-{name}", time=0)
            builder.deliver(message, time=2)
        runs.append(builder.build())
    return System(runs, name="ragged-clocked")


def _interpretations(system):
    return (
        ViewBasedInterpretation(system, backend="frozenset"),
        ViewBasedInterpretation(system, backend="bitset"),
    )


SYSTEM_BUILDERS = {
    "handshake": lambda: build_handshake_system(depth=2, horizon=5),
    "ok-protocol": lambda: build_ok_system(horizon=4),
    "ragged-clocked": _ragged_clocked_system,
}


def _directed_formulas(system):
    """One formula per temporal/temporal-epistemic operator, plus nestings."""
    agents = sorted(system.processors, key=repr)
    first = agents[0]
    group = tuple(agents)
    timestamps = (0.0, 1.0, 1.5, 2.0)
    formulas = [
        Eventually(P),
        Always(P),
        Eventually(Not(Always(P))),
        Always(Eventually(Q)),
        EEps(group, P, 0),
        EEps(group, P, 1),
        EEps(group, P, 2),
        CEps(group, P, 0),
        CEps(group, P, 1),
        EDiamond(group, P),
        CDiamond(group, P),
        EDiamond(group, Knows(first, P)),
        CEps(group, Eventually(P), 1),
        Eventually(CEps(group, P, 1)),
    ]
    for timestamp in timestamps:
        formulas.append(KT(first, P, timestamp))
        formulas.append(ET(group, P, timestamp))
        formulas.append(CT(group, P, timestamp))
    return formulas


@pytest.mark.parametrize("name", sorted(SYSTEM_BUILDERS))
def test_mask_path_matches_reference_on_directed_formulas(name):
    """Every operator, directed: the two paths agree extension-for-extension."""
    system = SYSTEM_BUILDERS[name]()
    reference, fast = _interpretations(system)
    for formula in _directed_formulas(system):
        expected = reference.extension(formula)
        actual = fast.extension(formula)
        assert actual == expected, (
            f"mask path disagrees on {name}: {formula!r}\n"
            f"  reference: {sorted(map(repr, expected))}\n"
            f"  mask:      {sorted(map(repr, actual))}"
        )


def _fuzz_suite(name, system):
    agents = sorted(system.processors, key=repr)
    props = ["p", "q", "intend_attack", "late_or_lost"]
    seed = zlib.crc32(name.encode("utf-8"))
    return formula_suite(seed, props, agents, 60, temporal=True, max_depth=3)


def test_fuzz_suites_cover_every_temporal_operator():
    """Across the three systems' suites, every temporal node type occurs."""
    formulas = [
        formula
        for name, builder in SYSTEM_BUILDERS.items()
        for formula in _fuzz_suite(name, builder())
    ]
    missing = set(TEMPORAL_NODE_TYPES) - node_types_used(formulas)
    assert not missing, f"generator never produced {sorted(t.__name__ for t in missing)}"


@pytest.mark.parametrize("name", sorted(SYSTEM_BUILDERS))
def test_mask_path_matches_reference_on_fuzzed_formulas(name):
    """Seeded random temporal formulas agree across backends."""
    system = SYSTEM_BUILDERS[name]()
    reference, fast = _interpretations(system)
    for formula in _fuzz_suite(name, system):
        assert fast.extension(formula) == reference.extension(formula), (
            f"mask path disagrees on {name}: {formula!r}"
        )


def test_mask_path_validity_and_focus_verdicts_agree():
    system = build_handshake_system(depth=2, horizon=5)
    reference, fast = _interpretations(system)
    for formula in _directed_formulas(system):
        assert reference.is_valid(formula) == fast.is_valid(formula)
        assert reference.is_satisfiable(formula) == fast.is_satisfiable(formula)


def test_mask_caches_survive_clear_cache_coherently():
    """clear_cache drops body-dependent masks; results stay identical after."""
    system = _ragged_clocked_system()
    fast = ViewBasedInterpretation(system, backend="bitset")
    formulas = _directed_formulas(system)
    before = [fast.extension(f) for f in formulas]
    fast.clear_cache()
    assert not fast._mask_knowledge_cache
    after = [fast.extension(f) for f in formulas]
    assert before == after


def test_unknown_processor_errors_match_across_backends():
    system = _ragged_clocked_system()
    for backend in ("frozenset", "bitset"):
        interpretation = ViewBasedInterpretation(system, backend=backend)
        with pytest.raises(UnknownAgentError):
            interpretation.extension(KT("ghost", P, 1.0))
        with pytest.raises(UnknownAgentError):
            interpretation.extension(EEps(("A", "ghost"), P, 1))


# ---------------------------------------------------------------------------
# Bugfix regressions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("frozenset", "bitset"))
@pytest.mark.parametrize("eps", (0.5, 1.25))
def test_fractional_eps_is_rejected_not_truncated(backend, eps):
    """Regression: ``int(eps)`` silently turned ``E^0.5`` into ``E^0``.

    The window semantics lives on the discrete time grid, so a fractional eps
    is rejected with a clear error instead of being rounded to a strictly
    stronger formula.
    """
    system = _ragged_clocked_system()
    interpretation = ViewBasedInterpretation(system, backend=backend)
    for formula in (EEps(GROUP, P, eps), CEps(GROUP, P, eps)):
        with pytest.raises(EvaluationError, match="whole time steps"):
            interpretation.extension(formula)
    # The error is part of the library's single-catch hierarchy.
    with pytest.raises(ReproError):
        interpretation.extension(EEps(GROUP, P, eps))


@pytest.mark.parametrize("backend", ("frozenset", "bitset"))
def test_integral_float_eps_still_accepted(backend):
    system = _ragged_clocked_system()
    interpretation = ViewBasedInterpretation(system, backend=backend)
    assert interpretation.extension(EEps(GROUP, P, 1.0)) == interpretation.extension(
        EEps(GROUP, P, 1)
    )


@pytest.mark.parametrize("backend", ("frozenset", "bitset"))
def test_drifting_clock_timestamps_match_within_tolerance(backend):
    """Regression: ``K^T`` compared drifting-clock readings with float ``==``.

    A rate-0.1 clock reads ``0.1 * 3 == 0.30000000000000004`` at time 3; the
    formula timestamp ``0.3`` must still match it.
    """
    builder = RunBuilder("drift", GROUP, 5, clocks={
        "A": scaled_clock(5, 0.1),
        "B": perfect_clock(5),
    })
    builder.add_fact_from(0, "p")
    system = System([builder.build()], name="drift-system")
    interpretation = ViewBasedInterpretation(system, backend=backend)
    run = system.run("drift")
    # The reading at time 3 is not exactly 0.3 in binary floating point...
    assert run.clock_reading("A", 3) != 0.3
    # ...but K^0.3_A p must still see it: p holds everywhere, so the run
    # qualifies and the formula holds at every point of the run.
    assert interpretation.extension(KT("A", P, 0.3)) == frozenset(run.points())
    # A timestamp the clock never reads still yields the empty extension.
    assert interpretation.extension(KT("A", P, 0.35)) == frozenset()


def test_drifting_clock_regression_agrees_across_backends():
    builder = RunBuilder("drift", GROUP, 6, clocks={
        "A": scaled_clock(6, 0.3),
        "B": scaled_clock(6, 1.1, offset=0.2),
    })
    builder.add_fact_from(2, "p")
    system = System([builder.build()], name="drift-both")
    reference, fast = _interpretations(system)
    for timestamp in (0.0, 0.3, 0.6, 0.9, 1.2, 2.4, 3.5):
        for formula in (KT("A", P, timestamp), KT("B", P, timestamp), ET(GROUP, P, timestamp), CT(GROUP, P, timestamp)):
            assert reference.extension(formula) == fast.extension(formula), repr(formula)
