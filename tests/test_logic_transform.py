"""Unit tests for formula transformations and the fixpoint helpers."""

import pytest

from repro.errors import EvaluationError, FormulaError
from repro.logic.fixpoint import (
    greatest_fixpoint,
    is_monotone_on_chain,
    iterate_to_fixpoint,
    least_fixpoint,
)
from repro.logic.syntax import (
    And,
    C,
    Common,
    E,
    Everyone,
    K,
    Knows,
    Not,
    Nu,
    Or,
    Prop,
    S,
    Someone,
    TRUE,
    FALSE,
    Var,
    prop,
    props,
)
from repro.logic.transform import (
    expand_derived,
    simplify,
    substitute,
    substitute_var,
    to_nnf,
    unfold_common,
    unfold_fixpoint,
)


class TestSubstitute:
    def test_substitutes_by_name_and_by_prop(self):
        p, q = props("p", "q")
        assert substitute(K("a", p), {"p": q}) == K("a", q)
        assert substitute(K("a", p), {p: q}) == K("a", q)

    def test_substitution_is_simultaneous(self):
        p, q = props("p", "q")
        swapped = substitute(p & q, {"p": q, "q": p})
        assert swapped == (q & p)

    def test_substitute_var_respects_binding(self):
        p = prop("p")
        inner = Nu("X", Everyone(["a"], Var("X")))
        formula = And((Var("X"), inner))
        result = substitute_var(formula, "X", p)
        assert result == And((p, inner))


class TestExpandDerived:
    def test_everyone_expands_to_conjunction_of_knowledge(self):
        p = prop("p")
        expanded = expand_derived(Everyone(["a", "b"], p))
        assert isinstance(expanded, And)
        assert set(expanded.operands) == {Knows("a", p), Knows("b", p)}

    def test_someone_expands_to_disjunction(self):
        p = prop("p")
        expanded = expand_derived(Someone(["a", "b"], p))
        assert isinstance(expanded, Or)
        assert set(expanded.operands) == {Knows("a", p), Knows("b", p)}

    def test_common_knowledge_is_not_expanded(self):
        p = prop("p")
        assert expand_derived(Common(["a", "b"], p)) == Common(["a", "b"], p)


class TestUnfolding:
    def test_unfold_common_builds_increasing_nestings(self):
        p = prop("p")
        unfolded = unfold_common(Common(["a", "b"], p), 3)
        assert isinstance(unfolded, And)
        assert len(unfolded.operands) == 3
        assert unfolded.operands[0] == E(["a", "b"], p)
        assert unfolded.operands[2] == E(["a", "b"], p, 3)

    def test_unfold_common_rejects_zero_depth(self):
        with pytest.raises(FormulaError):
            unfold_common(Common(["a"], prop("p")), 0)

    def test_unfold_fixpoint_is_one_substitution_step(self):
        p = prop("p")
        fixpoint = Nu("X", Everyone(["a"], And((p, Var("X")))))
        unfolded = unfold_fixpoint(fixpoint)
        assert unfolded == Everyone(["a"], And((p, fixpoint)))


class TestNnfAndSimplify:
    def test_nnf_pushes_negations_to_atoms(self):
        p, q = props("p", "q")
        result = to_nnf(~(p & q))
        assert result == Or((Not(p), Not(q)))

    def test_nnf_eliminates_implication(self):
        p, q = props("p", "q")
        assert to_nnf(p >> q) == Or((Not(p), q))

    def test_nnf_keeps_negation_on_modal_operators(self):
        p = prop("p")
        result = to_nnf(~K("a", p))
        assert result == Not(K("a", p))

    def test_simplify_constant_folding(self):
        p = prop("p")
        assert simplify(p & TRUE) == p
        assert simplify(p & FALSE) == FALSE
        assert simplify(p | FALSE) == p
        assert simplify(p | TRUE) == TRUE
        assert simplify(~~p) == p

    def test_simplify_flattens_and_deduplicates(self):
        p, q = props("p", "q")
        nested = And((p, And((p, q))))
        assert simplify(nested) == And((p, q))

    def test_simplify_trivial_implications(self):
        p = prop("p")
        assert simplify(p >> p) == TRUE
        assert simplify(FALSE >> p) == TRUE

    def test_simplify_preserves_modal_bodies(self):
        p = prop("p")
        assert simplify(K("a", p & TRUE)) == K("a", p)


class TestFixpointIteration:
    def test_greatest_fixpoint_shrinks_from_universe(self):
        universe = frozenset(range(10))
        trace = greatest_fixpoint(lambda s: frozenset(x for x in s if x >= 3), universe)
        assert trace.result == frozenset(range(3, 10))
        assert trace.iterations >= 1

    def test_least_fixpoint_grows_from_empty(self):
        universe = frozenset(range(5))

        def closure(current):
            grown = set(current) | {0}
            grown |= {x + 1 for x in current if x + 1 < 5}
            return frozenset(grown)

        trace = least_fixpoint(closure, universe)
        assert trace.result == universe

    def test_iteration_reports_non_convergence(self):
        flip = lambda s: frozenset({1}) if 1 not in s else frozenset()
        with pytest.raises(EvaluationError):
            iterate_to_fixpoint(flip, frozenset(), max_iterations=10)

    def test_monotonicity_spot_check(self):
        chain = [frozenset(), frozenset({1}), frozenset({1, 2})]
        assert is_monotone_on_chain(lambda s: s, chain)
        assert not is_monotone_on_chain(
            lambda s: frozenset() if s else frozenset({9}), chain
        )
