"""Unit tests for the formula parser."""

import pytest

from repro.errors import ParseError
from repro.logic.parser import parse, tokenize
from repro.logic.syntax import (
    And,
    C,
    Common,
    D,
    E,
    Iff,
    Implies,
    K,
    Not,
    Or,
    Prop,
    S,
    TRUE,
    FALSE,
)


class TestTokenizer:
    def test_rejects_unknown_characters(self):
        with pytest.raises(ParseError):
            tokenize("p @ q")

    def test_skips_whitespace(self):
        kinds = [kind for kind, _, _ in tokenize("  p   &  q ")]
        assert kinds == ["ident", "and", "ident"]


class TestBasics:
    def test_propositions_and_constants(self):
        assert parse("p") == Prop("p")
        assert parse("true") == TRUE
        assert parse("false") == FALSE

    def test_boolean_connectives(self):
        assert parse("p & q") == And((Prop("p"), Prop("q")))
        assert parse("p | q") == Or((Prop("p"), Prop("q")))
        assert parse("~p") == Not(Prop("p"))
        assert parse("p -> q") == Implies(Prop("p"), Prop("q"))
        assert parse("p <-> q") == Iff(Prop("p"), Prop("q"))

    def test_precedence_and_over_or(self):
        assert parse("p & q | r") == Or((And((Prop("p"), Prop("q"))), Prop("r")))

    def test_implication_is_right_associative(self):
        assert parse("p -> q -> r") == Implies(
            Prop("p"), Implies(Prop("q"), Prop("r"))
        )

    def test_parentheses(self):
        assert parse("p & (q | r)") == And((Prop("p"), Or((Prop("q"), Prop("r")))))


class TestModalOperators:
    def test_knowledge(self):
        assert parse("K_a p") == K("a", Prop("p"))

    def test_group_operators(self):
        assert parse("C_{a,b} p") == C(["a", "b"], Prop("p"))
        assert parse("D_{a,b} p") == D(["a", "b"], Prop("p"))
        assert parse("S_{a,b} p") == S(["a", "b"], Prop("p"))
        assert parse("E_{a,b} p") == E(["a", "b"], Prop("p"))

    def test_singleton_group_without_braces(self):
        assert parse("E_a p") == E(["a"], Prop("p"))

    def test_e_power(self):
        assert parse("E^3_{a,b} p") == E(["a", "b"], Prop("p"), 3)

    def test_numeric_agents(self):
        assert parse("K_1 p") == K(1, Prop("p"))
        assert parse("C_{1,2} p") == C([1, 2], Prop("p"))

    def test_nested_modalities(self):
        assert parse("K_a K_b p") == K("a", K("b", Prop("p")))

    def test_modal_binds_tighter_than_and(self):
        assert parse("K_a p & q") == And((K("a", Prop("p")), Prop("q")))

    def test_proposition_names_with_underscores_still_work(self):
        assert parse("muddy_a & at_least_one") == And(
            (Prop("muddy_a"), Prop("at_least_one"))
        )

    def test_power_on_c_is_rejected(self):
        with pytest.raises(ParseError):
            parse("C^2_{a,b} p")


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("p q")

    def test_unbalanced_parentheses(self):
        with pytest.raises(ParseError):
            parse("(p & q")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse("p &")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_error_reports_position(self):
        try:
            parse("p & $")
        except ParseError as error:
            assert error.position >= 0
        else:  # pragma: no cover
            pytest.fail("expected a ParseError")
