"""Cache coherence and error-path behaviour of the shared evaluation engine.

The engine refactor moved memoisation out of the two evaluators into
:class:`repro.engine.EvaluationEngine`.  The latent bug class this guards against:
an evaluator-level ``clear_cache()`` that empties the host's cache but leaves the
engine memo populated, so configuration changes (e.g. switching the
common-knowledge strategy mid-session) silently serve stale extensions.  Both
evaluators now keep *no* cache of their own and delegate, which these tests pin.

The error paths must also survive the refactor byte-for-byte: temporal operators on
a bare Kripke structure raise :class:`~repro.errors.EvaluationError` with the same
message the pre-engine checker produced.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError, UnknownAgentError
from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import CommonKnowledgeStrategy, ModelChecker
from repro.logic.syntax import (
    Always,
    C,
    CDiamond,
    CEps,
    CT,
    E,
    EDiamond,
    EEps,
    ET,
    Eventually,
    Formula,
    K,
    KT,
    Var,
    prop,
)
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.systems.interpretation import ViewBasedInterpretation

CHILDREN = ("a", "b", "c")
M = prop("at_least_one")

pytestmark = pytest.mark.usefixtures("engine_backend")


@pytest.fixture(params=["frozenset", "bitset"])
def backend(request):
    return request.param


# ---------------------------------------------------------------------------
# clear_cache coherence
# ---------------------------------------------------------------------------


def test_checker_clear_cache_clears_engine_memo(backend):
    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    before = checker.extension(C(CHILDREN, M))
    assert checker.engine.cache_size > 0
    checker.clear_cache()
    assert checker.engine.cache_size == 0
    assert checker.extension(C(CHILDREN, M)) == before


def test_interpretation_clear_cache_clears_engine_memo(backend):
    system = build_handshake_system(depth=2, horizon=5)
    interp = ViewBasedInterpretation(system, backend=backend)
    fact = prop("intend_attack")
    before = interp.extension(CDiamond(("A", "B"), fact))
    assert interp.engine.cache_size > 0
    interp.clear_cache()
    assert interp.engine.cache_size == 0
    assert interp.extension(CDiamond(("A", "B"), fact)) == before


def test_strategy_mutation_mid_session_requeries_coherently(backend):
    """Regression for the stale-memo bug class: switching CommonKnowledgeStrategy
    mid-session must not serve extensions memoised under the old configuration."""
    model = others_attribute_model(CHILDREN)
    checker = ModelChecker(
        model, CommonKnowledgeStrategy.REACHABILITY, backend=backend
    )
    formula = C(CHILDREN, M)
    via_reachability = checker.extension(formula)
    assert checker.common_strategy == CommonKnowledgeStrategy.REACHABILITY
    assert checker.engine.cache_size > 0

    checker.common_strategy = CommonKnowledgeStrategy.FIXPOINT
    # The switch invalidates everything memoised under the old strategy.
    assert checker.engine.cache_size == 0
    via_fixpoint = checker.extension(formula)
    # The strategies agree semantically (Section 6 vs Appendix A)...
    assert via_fixpoint == via_reachability
    # ...and the re-query really ran under the new configuration.
    assert checker.common_strategy == CommonKnowledgeStrategy.FIXPOINT

    # Round-trip back, with an explicit clear_cache thrown in.
    checker.common_strategy = CommonKnowledgeStrategy.REACHABILITY
    checker.clear_cache()
    assert checker.extension(formula) == via_reachability


def test_strategy_setter_rejects_unknown_strategy(backend):
    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    with pytest.raises(EvaluationError, match="unknown common-knowledge strategy"):
        checker.common_strategy = "telepathy"


def test_batch_queries_share_one_memo(backend):
    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    formulas = [E(CHILDREN, M, k) for k in range(1, 4)] + [C(CHILDREN, M)]
    extensions = checker.extensions(formulas)
    assert extensions == [checker.extension(f) for f in formulas]
    populated = checker.engine.cache_size
    # Re-running the batch is pure cache hits: the memo does not grow.
    checker.extensions(formulas)
    assert checker.engine.cache_size == populated


# ---------------------------------------------------------------------------
# Error paths through the engine
# ---------------------------------------------------------------------------

_TEMPORAL_FORMULAS = [
    EEps(CHILDREN, M, 1),
    CEps(CHILDREN, M, 1),
    EDiamond(CHILDREN, M),
    CDiamond(CHILDREN, M),
    KT("a", M, 0),
    ET(CHILDREN, M, 0),
    CT(CHILDREN, M, 0),
    Eventually(M),
    Always(M),
]


@pytest.mark.parametrize(
    "formula", _TEMPORAL_FORMULAS, ids=lambda f: type(f).__name__
)
def test_temporal_operators_raise_on_bare_kripke(backend, formula):
    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    expected = (
        f"{type(formula).__name__} requires a runs-and-systems model; "
        "use repro.systems.ViewBasedInterpretation instead of a bare Kripke "
        "structure"
    )
    with pytest.raises(EvaluationError) as excinfo:
        checker.extension(formula)
    assert str(excinfo.value) == expected


def test_temporal_operators_raise_even_when_nested(backend):
    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    with pytest.raises(EvaluationError, match="requires a runs-and-systems model"):
        checker.extension(K("a", Eventually(M)))


def test_unbound_fixpoint_variable_message(backend):
    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    with pytest.raises(EvaluationError) as excinfo:
        checker.extension(Var("X"))
    assert str(excinfo.value) == "fixpoint variable 'X' is free and unbound"
    # ...but an environment binding makes it evaluable.
    bound = checker.extension(Var("X"), {"X": checker.extension(M)})
    assert bound == checker.extension(M)


def test_unsupported_node_message(backend):
    class Mystery(Formula):
        def children(self):
            return ()

        def _key(self):
            return ()

        def __repr__(self):
            return "mystery"

    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    with pytest.raises(EvaluationError) as excinfo:
        checker.extension(Mystery())
    assert str(excinfo.value) == "unsupported formula node Mystery"


def test_unknown_agent_in_knows_raises_host_error(backend):
    checker = ModelChecker(others_attribute_model(CHILDREN), backend=backend)
    with pytest.raises(UnknownAgentError, match="unknown agent"):
        checker.extension(K("zz", M))
    system = build_handshake_system(depth=1, horizon=3)
    interp = ViewBasedInterpretation(system, backend=backend)
    with pytest.raises(UnknownAgentError, match="unknown processor"):
        interp.extension(K("zz", prop("intend_attack")))


def test_unknown_backend_is_rejected():
    with pytest.raises(EvaluationError, match="unknown engine backend"):
        ModelChecker(others_attribute_model(CHILDREN), backend="abacus")
