"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest

from repro.engine import set_default_backend
from repro.kripke.builders import others_attribute_model, shared_memory_model
from repro.kripke.checker import ModelChecker
from repro.logic.syntax import prop
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.simulation.network import Unreliable
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.interpretation import ViewBasedInterpretation


THREE_CHILDREN = ("a", "b", "c")


def pytest_addoption(parser):
    parser.addoption(
        "--engine-backend",
        action="store",
        default="frozenset",
        choices=("frozenset", "bitset", "both"),
        help=(
            "Which repro.engine backend evaluators default to for the whole suite: "
            "the frozenset reference (default), the bitset fast path, or both "
            "(parametrizes every test over the two backends)."
        ),
    )
    parser.addoption(
        "--fuzz-extended",
        action="store_true",
        default=False,
        help=(
            "Widen the random-protocol fuzz matrix (tests/test_dsl_fuzz.py) from "
            "the fixed PR seeds to the extended range; combine with the "
            "FUZZ_SEED_OFFSET environment variable to rotate which seeds the "
            "scheduled CI run draws."
        ),
    )


@pytest.fixture(scope="session")
def fuzz_seeds(request):
    """The fuzz-seed range for this test run.

    The default (tier-1/PR) range is fixed so failures reproduce exactly;
    ``--fuzz-extended`` widens it and honours ``FUZZ_SEED_OFFSET`` so the
    scheduled CI job sweeps a rotating window of the seed space.
    """
    import os

    offset = int(os.environ.get("FUZZ_SEED_OFFSET", "0"))
    count = 200 if request.config.getoption("--fuzz-extended") else 50
    return range(offset, offset + count)


def pytest_generate_tests(metafunc):
    if "engine_backend" in metafunc.fixturenames:
        option = metafunc.config.getoption("--engine-backend")
        if option == "both":
            metafunc.parametrize(
                "engine_backend", ["frozenset", "bitset"], indirect=True
            )


@pytest.fixture(autouse=True)
def engine_backend(request):
    """Run every test under the backend selected by ``--engine-backend``.

    Tier-1 (`pytest -x -q`) keeps the frozenset reference semantics; a second quick
    pass with ``--engine-backend bitset`` (or one combined run with ``both``) puts
    the exact same suite on the bitset fast path.  Evaluators constructed without an
    explicit ``backend=`` argument pick up this process-wide default.
    """
    backend = getattr(request, "param", None)
    if backend is None:
        backend = request.config.getoption("--engine-backend")
        if backend == "both":
            backend = "frozenset"
    previous = set_default_backend(backend)
    try:
        yield backend
    finally:
        set_default_backend(previous)


@pytest.fixture(scope="session")
def muddy_model():
    """The 8-world muddy-children model for three children."""
    return others_attribute_model(THREE_CHILDREN)


@pytest.fixture
def muddy_checker(muddy_model, engine_backend):
    # Function-scoped on purpose: a checker captures the engine backend at
    # construction, so a session-scoped instance would silently keep the first
    # test's backend for the whole run under ``--engine-backend both``.  The
    # model itself is backend-free and stays session-scoped.
    return ModelChecker(muddy_model)


class _SendOnce(Protocol):
    """A sends a single message to B at time 0 (used by several system fixtures)."""

    def step(self, processor, history, time):
        if processor == "A" and time == 0 and not history.sent_messages():
            return Action.send("B", "hello")
        return Action.nothing()


def _delivered_fact(run):
    facts = {}
    for t in run.times():
        if run.history("B", t).received_messages():
            facts[t] = {"delivered"}
    # The fact is about the point itself, so also mark the time of receipt.
    for t in run.times():
        if any(type(e).__name__ == "ReceiveEvent" for e in run.events_at("B", t)):
            for later in range(t, run.duration + 1):
                facts.setdefault(later, set()).add("delivered")
    return {t: frozenset(v) for t, v in facts.items()}


@pytest.fixture(scope="session")
def lossy_two_processor_system():
    """A two-processor system over an unreliable link (one message, lost or delivered)."""
    return simulate(
        _SendOnce(),
        ["A", "B"],
        duration=3,
        delivery=Unreliable(delay=1),
        fact_rules=[_delivered_fact],
        system_name="lossy-two",
    )


@pytest.fixture
def lossy_interpretation(lossy_two_processor_system, engine_backend):
    # Function-scoped for the same reason as muddy_checker: the interpretation
    # binds its backend at construction time.
    return ViewBasedInterpretation(lossy_two_processor_system)


@pytest.fixture(scope="session")
def handshake_system():
    """The depth-2 coordinated-attack handshake system (small but rich)."""
    return build_handshake_system(depth=2, horizon=5)
