"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest

from repro.kripke.builders import others_attribute_model, shared_memory_model
from repro.kripke.checker import ModelChecker
from repro.logic.syntax import prop
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.simulation.network import Unreliable
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.interpretation import ViewBasedInterpretation


THREE_CHILDREN = ("a", "b", "c")


@pytest.fixture(scope="session")
def muddy_model():
    """The 8-world muddy-children model for three children."""
    return others_attribute_model(THREE_CHILDREN)


@pytest.fixture(scope="session")
def muddy_checker(muddy_model):
    return ModelChecker(muddy_model)


class _SendOnce(Protocol):
    """A sends a single message to B at time 0 (used by several system fixtures)."""

    def step(self, processor, history, time):
        if processor == "A" and time == 0 and not history.sent_messages():
            return Action.send("B", "hello")
        return Action.nothing()


def _delivered_fact(run):
    facts = {}
    for t in run.times():
        if run.history("B", t).received_messages():
            facts[t] = {"delivered"}
    # The fact is about the point itself, so also mark the time of receipt.
    for t in run.times():
        if any(type(e).__name__ == "ReceiveEvent" for e in run.events_at("B", t)):
            for later in range(t, run.duration + 1):
                facts.setdefault(later, set()).add("delivered")
    return {t: frozenset(v) for t, v in facts.items()}


@pytest.fixture(scope="session")
def lossy_two_processor_system():
    """A two-processor system over an unreliable link (one message, lost or delivered)."""
    return simulate(
        _SendOnce(),
        ["A", "B"],
        duration=3,
        delivery=Unreliable(delay=1),
        fact_rules=[_delivered_fact],
        system_name="lossy-two",
    )


@pytest.fixture(scope="session")
def lossy_interpretation(lossy_two_processor_system):
    return ViewBasedInterpretation(lossy_two_processor_system)


@pytest.fixture(scope="session")
def handshake_system():
    """The depth-2 coordinated-attack handshake system (small but rich)."""
    return build_handshake_system(depth=2, horizon=5)
