"""Property test: ``parse(pretty(f)) == f`` across the whole language.

A seeded random generator builds formulas over every operator in
:mod:`repro.logic.syntax` — Boolean connectives, the S5 knowledge operators,
the Sections 11–12 temporal-epistemic variants added through PR 4, the
``<>``/``[]`` future fragment and the Appendix A fixpoint binders — and the
round trip through :func:`repro.logic.pretty.pretty` and
:func:`repro.logic.parser.parse` must reproduce each formula *structurally*
(equality on formulas is structural equality).

Inside fixpoint bodies the generator only places the bound variable under
positive contexts (no ``~``/``->``/``<->`` below a binder), mirroring the
positivity requirement :class:`~repro.logic.syntax.GreatestFixpoint` enforces.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import FormulaError
from repro.logic.parser import parse
from repro.logic.pretty import pretty
from repro.logic.syntax import (
    FALSE,
    TRUE,
    Always,
    And,
    Common,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Distributed,
    Everyone,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Eventually,
    GreatestFixpoint,
    Iff,
    Implies,
    Knows,
    KnowsAt,
    LeastFixpoint,
    Not,
    Or,
    Prop,
    Someone,
    Var,
)

SEEDS = 300
MAX_DEPTH = 4

PROPS = ("p", "q", "r", "muddy_1", "at_least_one", "fact'")
AGENTS = ("a", "b", "child_0", 1, 2)
GROUPS = (("a", "b"), ("a",), (1, 2), ("a", "b", "child_0"), (1, "b"))
NUMBERS = (0, 1, 2, 3, 0.5, 1.5, 2.25)

# Node builders that never touch negative polarity, usable inside binder bodies.
_POSITIVE_BRANCHES = (
    "and",
    "or",
    "knows",
    "someone",
    "everyone",
    "everyone_k",
    "distributed",
    "common",
    "eeps",
    "ceps",
    "ediamond",
    "cdiamond",
    "knows_at",
    "everyone_at",
    "common_at",
    "eventually",
    "always",
    "binder",
)
# The polarity-flipping connectives, only generated outside binder scopes.
_ALL_BRANCHES = _POSITIVE_BRANCHES + ("not", "implies", "iff")


def _leaf(rng: random.Random, scope):
    choices = ["prop", "prop", "prop", "true", "false"]
    if scope:
        choices += ["var", "var"]
    kind = rng.choice(choices)
    if kind == "true":
        return TRUE
    if kind == "false":
        return FALSE
    if kind == "var":
        return Var(rng.choice(scope))
    return Prop(rng.choice(PROPS))


def generate(rng: random.Random, depth: int, scope=(), positive_only=False):
    """One random formula; ``scope`` holds the fixpoint variables in scope."""
    if depth <= 0 or rng.random() < 0.2:
        return _leaf(rng, scope)
    branches = _POSITIVE_BRANCHES if positive_only else _ALL_BRANCHES
    kind = rng.choice(branches)
    sub = lambda: generate(rng, depth - 1, scope, positive_only)  # noqa: E731
    if kind == "not":
        return Not(sub())
    if kind == "and":
        return And(tuple(sub() for _ in range(rng.randint(2, 3))))
    if kind == "or":
        return Or(tuple(sub() for _ in range(rng.randint(2, 3))))
    if kind == "implies":
        return Implies(sub(), sub())
    if kind == "iff":
        return Iff(sub(), sub())
    if kind == "knows":
        return Knows(rng.choice(AGENTS), sub())
    if kind == "someone":
        return Someone(rng.choice(GROUPS), sub())
    if kind == "everyone":
        return Everyone(rng.choice(GROUPS), sub())
    if kind == "everyone_k":
        # An E^k tower: the printer collapses same-group nesting into E^k.
        group = rng.choice(GROUPS)
        body = sub()
        for _ in range(rng.randint(2, 4)):
            body = Everyone(group, body)
        return body
    if kind == "distributed":
        return Distributed(rng.choice(GROUPS), sub())
    if kind == "common":
        return Common(rng.choice(GROUPS), sub())
    if kind == "eeps":
        return EveryoneEps(rng.choice(GROUPS), sub(), rng.choice(NUMBERS))
    if kind == "ceps":
        return CommonEps(rng.choice(GROUPS), sub(), rng.choice(NUMBERS))
    if kind == "ediamond":
        return EveryoneDiamond(rng.choice(GROUPS), sub())
    if kind == "cdiamond":
        return CommonDiamond(rng.choice(GROUPS), sub())
    if kind == "knows_at":
        return KnowsAt(rng.choice(AGENTS), sub(), rng.choice(NUMBERS))
    if kind == "everyone_at":
        return EveryoneAt(rng.choice(GROUPS), sub(), rng.choice(NUMBERS))
    if kind == "common_at":
        return CommonAt(rng.choice(GROUPS), sub(), rng.choice(NUMBERS))
    if kind == "eventually":
        return Eventually(sub())
    if kind == "always":
        return Always(sub())
    if kind == "binder":
        variable = f"X{len(scope)}"
        binder = GreatestFixpoint if rng.random() < 0.5 else LeastFixpoint
        body = generate(rng, depth - 1, scope + (variable,), positive_only=True)
        return binder(variable, body)
    raise AssertionError(f"unhandled branch {kind!r}")  # pragma: no cover


EVERY_OPERATOR = {
    "TrueFormula",
    "FalseFormula",
    "Prop",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Knows",
    "Someone",
    "Everyone",
    "Distributed",
    "Common",
    "EveryoneEps",
    "CommonEps",
    "EveryoneDiamond",
    "CommonDiamond",
    "KnowsAt",
    "EveryoneAt",
    "CommonAt",
    "Eventually",
    "Always",
    "GreatestFixpoint",
    "LeastFixpoint",
}


def test_parse_pretty_round_trip_over_seeded_random_formulas():
    """The property: parse(pretty(f)) == f, ~300 formulas, every operator."""
    covered = set()
    for seed in range(SEEDS):
        rng = random.Random(seed)
        formula = generate(rng, MAX_DEPTH)
        covered.update(type(node).__name__ for node in formula.subformulas())
        text = pretty(formula)
        reparsed = parse(text)
        assert reparsed == formula, (
            f"seed {seed}: {formula!r} printed as {text!r} "
            f"re-parsed as {reparsed!r}"
        )
        # pretty is a fixed point: printing the reparse changes nothing.
        assert pretty(reparsed) == text, f"seed {seed}: unstable rendering {text!r}"
    missing = EVERY_OPERATOR - covered
    assert not missing, f"generator never produced {sorted(missing)}"


@pytest.mark.parametrize(
    "text",
    [
        "Eeps^0.5_{a,b} p",
        "Ceps^2_{a,b} K_a p",
        "E<>_{a,b} (p & q)",
        "C<>_{1,2} p",
        "K@3_a p",
        "K@0.5_1 p",
        "E@1.5_{a,b} p",
        "C@2_{a,b} ~p",
        "<> [] p",
        "nu X. K_a (p & X)",
        "mu Y. p | E_{a,b} Y",
        "nu X0. mu X1. X0 & X1 | p",
        "(nu X. p & X) -> q",
    ],
    ids=repr,
)
def test_directed_round_trips_for_the_new_syntax(text):
    formula = parse(text)
    assert parse(pretty(formula)) == formula


class TestNewGrammar:
    def test_temporal_epistemic_operators_parse(self):
        assert parse("Eeps^0.5_{a,b} p") == EveryoneEps(("a", "b"), Prop("p"), 0.5)
        assert parse("Ceps^2_{a,b} p") == CommonEps(("a", "b"), Prop("p"), 2)
        assert parse("E<>_{a,b} p") == EveryoneDiamond(("a", "b"), Prop("p"))
        assert parse("C<>_{a,b} p") == CommonDiamond(("a", "b"), Prop("p"))
        assert parse("K@3_a p") == KnowsAt("a", Prop("p"), 3)
        assert parse("E@1.5_{a,b} p") == EveryoneAt(("a", "b"), Prop("p"), 1.5)
        assert parse("C@2_{a,b} p") == CommonAt(("a", "b"), Prop("p"), 2)

    def test_future_fragment_parses(self):
        assert parse("<> p") == Eventually(Prop("p"))
        assert parse("[] p") == Always(Prop("p"))
        assert parse("~<> ~p") == Not(Eventually(Not(Prop("p"))))

    def test_binders_and_variables(self):
        formula = parse("nu X. K_a (p & X)")
        assert formula == GreatestFixpoint(
            "X", Knows("a", And((Prop("p"), Var("X"))))
        )
        assert parse("mu X. p | X") == LeastFixpoint("X", Or((Prop("p"), Var("X"))))

    def test_binder_body_extends_maximally_right(self):
        assert parse("nu X. p & X") == GreatestFixpoint(
            "X", And((Prop("p"), Var("X")))
        )

    def test_unbound_identifier_stays_a_proposition(self):
        # X is only a Var under a binder; free occurrences are propositions.
        assert parse("p & X") == And((Prop("p"), Prop("X")))
        assert parse("(nu X. X) & X") == And(
            (GreatestFixpoint("X", Var("X")), Prop("X"))
        )

    def test_nu_and_mu_remain_ordinary_propositions_when_not_binding(self):
        assert parse("nu & mu") == And((Prop("nu"), Prop("mu")))
        assert parse("nu") == Prop("nu")

    def test_eeps_and_everyone_power_do_not_collide(self):
        # E^2 is the iterated-E tower, Eeps^2 the eps-interval operator.
        assert parse("E^2_{a,b} p") == Everyone(("a", "b"), Everyone(("a", "b"), Prop("p")))
        assert parse("Eeps^2_{a,b} p") == EveryoneEps(("a", "b"), Prop("p"), 2)


class TestPrettyErrors:
    def test_free_variable_rejected(self):
        with pytest.raises(FormulaError, match="free"):
            pretty(Var("X"))

    def test_proposition_shadowing_a_bound_variable_rejected(self):
        shadowing = GreatestFixpoint("X", And((Prop("X"), Var("X"))))
        with pytest.raises(FormulaError, match="shadows"):
            pretty(shadowing)

    def test_inexpressible_names_rejected(self):
        with pytest.raises(FormulaError, match="not expressible"):
            pretty(Prop("has space"))
        with pytest.raises(FormulaError, match="not expressible"):
            pretty(Knows("agent name", Prop("p")))
        with pytest.raises(FormulaError, match="not expressible"):
            pretty(Prop("true"))

    def test_modal_shaped_names_rejected(self):
        """'K_a' is identifier-shaped but re-tokenizes as the modal 'K_' + agent."""
        for name in ("K_a", "E_0", "S_1", "C_x", "D_muddy"):
            with pytest.raises(FormulaError, match="modal"):
                pretty(Prop(name))
        with pytest.raises(FormulaError, match="modal"):
            pretty(Knows("K_b", Prop("p")))
        # Near misses stay expressible: no alnum after the underscore, or the
        # prefix letter is not a modal operator.
        for name in ("K_", "Ka_b", "muddy_a", "Q_1"):
            assert parse(pretty(Prop(name))) == Prop(name)

    def test_one_operand_connectives_rejected(self):
        with pytest.raises(FormulaError, match="one-operand"):
            pretty(And((Prop("p"),)))

    def test_inexpressible_numbers_rejected(self):
        with pytest.raises(FormulaError, match="decimal"):
            pretty(EveryoneEps(("a", "b"), Prop("p"), 1e-9))
        with pytest.raises(FormulaError, match="negative"):
            pretty(KnowsAt("a", Prop("p"), -1))
