"""Tier-1-adjacent repo checks: examples, CLI entry point, docs freshness.

These run the same commands a CI job (and the verify skill) would, so a green
test suite certifies the whole documentation surface:

* every ``examples/*.py`` runs to completion — *without* ``PYTHONPATH``, which
  exercises the scripts' source-checkout bootstrap;
* ``python -m repro list`` works;
* ``tools/check_doc_coverage.py`` passes (public API docstrings);
* ``tools/gen_scenario_docs.py --check`` passes (``docs/scenarios.md`` is in
  sync with the registry).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _run(args, *, env=None, cwd=None):
    return subprocess.run(
        args,
        cwd=str(cwd or REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _env_with_src():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def _env_without_pythonpath():
    env = dict(os.environ)
    env.pop("PYTHONPATH", None)
    return env


@pytest.mark.parametrize("example", EXAMPLES, ids=[e.name for e in EXAMPLES])
def test_example_runs_to_completion(example, tmp_path):
    """Each example is a runnable quickstart, even from a foreign cwd w/o PYTHONPATH."""
    result = _run(
        [sys.executable, str(example)],
        env=_env_without_pythonpath(),
        cwd=tmp_path,
    )
    assert result.returncode == 0, f"{example.name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{example.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 4


def test_python_dash_m_repro_list():
    result = _run([sys.executable, "-m", "repro", "list"], env=_env_with_src())
    assert result.returncode == 0, result.stderr
    for name in ("muddy_children", "coordinated_attack", "commit"):
        assert name in result.stdout


def test_doc_coverage_check_passes():
    result = _run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_doc_coverage.py")],
        env=_env_with_src(),
    )
    assert result.returncode == 0, f"doc coverage regressed:\n{result.stdout}"


def test_scenario_docs_are_fresh():
    result = _run(
        [sys.executable, str(REPO_ROOT / "tools" / "gen_scenario_docs.py"), "--check"],
        env=_env_with_src(),
    )
    assert result.returncode == 0, (
        "docs/scenarios.md is stale; regenerate with "
        f"PYTHONPATH=src python tools/gen_scenario_docs.py\n{result.stdout}"
    )


def test_readme_and_architecture_docs_exist():
    readme = REPO_ROOT / "README.md"
    architecture = REPO_ROOT / "docs" / "architecture.md"
    assert readme.exists() and "Quickstart" in readme.read_text()
    assert architecture.exists() and "repro.engine" in architecture.read_text()


def test_bench_report_quick_smoke(tmp_path):
    """``tools/bench_report.py --quick`` runs benchmark bodies once and writes JSON."""
    import json

    output = tmp_path / "BENCH_results.json"
    result = _run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "bench_report.py"),
            "--quick",
            "--bench",
            "bench_bisimulation.py",
            "--output",
            str(output),
        ],
        env=_env_with_src(),
    )
    assert result.returncode == 0, f"bench_report --quick failed:\n{result.stderr[-2000:]}"
    payload = json.loads(output.read_text())
    assert payload["mode"] == "quick"
    assert payload["benchmarks"] == [
        {"file": "benchmarks/bench_bisimulation.py", "outcome": "smoke-passed"}
    ]
