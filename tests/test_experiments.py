"""Tests for the scenario registry and the experiment runner."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.experiments import (
    DEFAULT_MAX_CACHED_INSTANCES,
    BuiltScenario,
    ExperimentRunner,
    Parameter,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.kripke.builders import others_attribute_model

ALL_SCENARIOS = (
    "broadcast",
    "byzantine_general",
    "cheating_husbands",
    "commit",
    "coordinated_attack",
    "gossip",
    "muddy_children",
    "ok_protocol",
    "phases",
    "r2d2",
    "random_protocol",
    "sequence_transmission",
)


# -- registry contents ---------------------------------------------------------

def test_every_paper_scenario_is_registered():
    assert scenario_names() == ALL_SCENARIOS


def test_specs_carry_schema_and_formulas():
    for name in ALL_SCENARIOS:
        spec = get_scenario(name)
        assert spec.summary and spec.section
        assert spec.parameters, name
        # Every registered scenario has defaults for every parameter and a
        # non-empty default formula set (the CLI relies on both).
        params = spec.validate_params({})
        assert spec.default_formulas(params), name


# -- registration rules --------------------------------------------------------

@pytest.fixture
def scratch_registration():
    """Register-and-clean helper so tests never leak registry state."""
    registered = []

    def register(name, **kwargs):
        kwargs.setdefault("summary", "scratch")
        kwargs.setdefault("section", "nowhere")
        decorator = register_scenario(name, **kwargs)

        def apply(builder):
            result = decorator(builder)
            registered.append(name)
            return result

        return apply

    yield register
    for name in registered:
        unregister_scenario(name)


def _tiny_builder(**_params):
    return others_attribute_model(("a", "b"))


def test_duplicate_registration_rejected(scratch_registration):
    scratch_registration("scratch_dup")(_tiny_builder)
    with pytest.raises(ScenarioError, match="already registered"):
        register_scenario("scratch_dup", summary="again", section="nowhere")(_tiny_builder)


def test_duplicate_parameter_names_rejected():
    with pytest.raises(ScenarioError, match="twice"):
        register_scenario(
            "scratch_params",
            summary="s",
            section="s",
            parameters=(Parameter("n"), Parameter("n")),
        )


def test_unknown_scenario():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("does_not_exist")


def test_builder_return_type_checked(scratch_registration):
    scratch_registration("scratch_bad_return")(lambda: 42)
    with pytest.raises(ScenarioError, match="expected a KripkeStructure"):
        get_scenario("scratch_bad_return").build({})


# -- parameter validation ------------------------------------------------------

def test_unknown_parameter_rejected():
    spec = get_scenario("muddy_children")
    with pytest.raises(ScenarioError, match="unknown parameter"):
        spec.validate_params({"nn": 3})


def test_missing_required_parameter(scratch_registration):
    scratch_registration("scratch_required", parameters=(Parameter("n", int),))(
        _tiny_builder
    )
    with pytest.raises(ScenarioError, match="requires parameter 'n'"):
        get_scenario("scratch_required").validate_params({})


def test_type_coercion_from_strings():
    spec = get_scenario("muddy_children")
    params = spec.validate_params({"n": "4", "k": "2", "announced": "true"})
    assert params == {"n": 4, "k": 2, "announced": True}


def test_integral_float_coerces_to_int():
    # JSON has one number type, so HTTP clients routinely send 4.0 for an
    # int parameter; it must canonicalise to the same value (and the same
    # store key) as the CLI's "4"
    spec = get_scenario("muddy_children")
    params = spec.validate_params({"n": 4.0, "k": 2.0})
    assert params == {"n": 4, "k": 2, "announced": False}
    assert type(params["n"]) is int and type(params["k"]) is int


def test_type_mismatch_rejected():
    spec = get_scenario("muddy_children")
    with pytest.raises(ScenarioError, match="expects int"):
        spec.validate_params({"n": "four"})
    with pytest.raises(ScenarioError, match="expects int"):
        spec.validate_params({"n": 2.5})
    with pytest.raises(ScenarioError, match="boolean"):
        spec.validate_params({"announced": "maybe"})


def test_range_validation():
    spec = get_scenario("muddy_children")
    with pytest.raises(ScenarioError, match=">= 1"):
        spec.validate_params({"n": 0})


def test_choices_validation():
    spec = get_scenario("r2d2")
    with pytest.raises(ScenarioError, match="one of"):
        spec.validate_params({"variant": "psychic"})


def test_cross_parameter_validation_happens_in_builder():
    with pytest.raises(ScenarioError, match="between 0 and n"):
        get_scenario("muddy_children").build({"n": 2, "k": 5})


# -- runner behaviour ----------------------------------------------------------

def test_runner_caches_instances_by_parameter_key():
    runner = ExperimentRunner()
    first = runner.instance("muddy_children", {"n": 3, "k": 2})
    again = runner.instance("muddy_children", {"k": 2, "n": 3})  # order-insensitive
    other = runner.instance("muddy_children", {"n": 4, "k": 2})
    assert first is again
    assert first is not other
    assert runner.cached_instances == 2


def test_instance_cache_default_bound_is_generous_and_documented():
    runner = ExperimentRunner()
    assert runner.max_cached_instances == DEFAULT_MAX_CACHED_INSTANCES
    assert DEFAULT_MAX_CACHED_INSTANCES >= 64  # "generous": real sweeps fit


def test_instance_cache_bound_must_be_positive():
    with pytest.raises(ScenarioError, match=">= 1"):
        ExperimentRunner(max_cached_instances=0)


def test_instance_cache_is_bounded_on_huge_grids(scratch_registration):
    """Regression for the unbounded cache: a 1000-point grid stays under the bound."""
    scratch_registration(
        "scratch_lru_grid", parameters=(Parameter("n", int, default=0),)
    )(_tiny_builder)
    runner = ExperimentRunner(max_cached_instances=8)
    for i in range(1000):
        runner.instance("scratch_lru_grid", {"n": i})
        assert runner.cached_instances <= 8
    assert runner.cached_instances == 8


def test_instance_cache_evicts_least_recently_used(scratch_registration):
    scratch_registration(
        "scratch_lru_order", parameters=(Parameter("n", int, default=0),)
    )(_tiny_builder)
    runner = ExperimentRunner(max_cached_instances=2)
    first = runner.instance("scratch_lru_order", {"n": 1})
    runner.instance("scratch_lru_order", {"n": 2})
    assert runner.instance("scratch_lru_order", {"n": 1}) is first  # refresh recency
    runner.instance("scratch_lru_order", {"n": 3})  # evicts n=2, not n=1
    assert runner.instance("scratch_lru_order", {"n": 1}) is first
    assert runner.cached_instances == 2


def test_sweep_on_large_grid_stays_under_bound(scratch_registration):
    scratch_registration(
        "scratch_lru_sweep", parameters=(Parameter("n", int, default=0),)
    )(_tiny_builder)
    runner = ExperimentRunner(max_cached_instances=16)
    reports = runner.sweep(
        "scratch_lru_sweep", {"n": range(120)}, formulas=["at_least_one"]
    )
    assert len(reports) == 120
    assert runner.cached_instances <= 16


def test_runner_caches_evaluators_per_backend():
    runner = ExperimentRunner()
    instance = runner.instance("muddy_children", {})
    assert instance.evaluator("bitset") is instance.evaluator("bitset")
    assert instance.evaluator("bitset") is not instance.evaluator("frozenset")


def test_run_is_thread_safe_under_concurrent_hammering():
    # The evaluation service shares one runner across executor threads.
    # Before the cache locks, this hammer corrupted the instance OrderedDict
    # (lost evictions, "dictionary changed size during iteration") and raced
    # the engine's memo caches; now every run must complete and the
    # counters must balance exactly.
    import threading

    runner = ExperimentRunner(max_cached_instances=2)
    points = [{"n": 2, "k": 1}, {"n": 3, "k": 1}, {"n": 4, "k": 1}]
    rounds = 6
    errors = []
    barrier = threading.Barrier(8)

    def hammer(index):
        try:
            barrier.wait(timeout=30)
            for round_number in range(rounds):
                report = runner.run(
                    "muddy_children", points[(index + round_number) % len(points)]
                )
                assert report.rows and report.error is None
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert runner.eval_count == 8 * rounds
    assert runner.cached_instances <= 2


def test_run_reproduces_the_muddy_children_claims(engine_backend):
    runner = ExperimentRunner()
    report = runner.run("muddy_children", {"n": 4, "k": 3})
    rows = {row.label: row for row in report.rows}
    assert rows["E^2 m"].holds_at_focus is True   # E^{k-1} m holds initially
    assert rows["E^3 m"].holds_at_focus is False  # E^k m does not
    assert rows["C m"].count == 0                 # C m holds nowhere
    assert report.universe == 16
    assert report.kind == "kripke"


def test_run_after_announcement(engine_backend):
    runner = ExperimentRunner()
    report = runner.run("muddy_children", {"n": 4, "k": 3, "announced": True})
    rows = {row.label: row for row in report.rows}
    assert rows["C m"].holds_at_focus is True     # the father's announcement
    assert rows["m"].valid is True                # m worlds only survive


def test_run_with_explicit_formula_strings():
    runner = ExperimentRunner()
    report = runner.run(
        "muddy_children",
        {"n": 3, "k": 2},
        formulas=["K_child_0 at_least_one", ("labelled", "C_{child_0,child_1,child_2} at_least_one")],
    )
    assert [row.label for row in report.rows] == ["K_child_0 at_least_one", "labelled"]
    assert report.rows[1].count == 0


def test_run_system_scenario(engine_backend):
    runner = ExperimentRunner()
    report = runner.run("coordinated_attack", {"depth": 2, "horizon": 4})
    rows = {row.label: row for row in report.rows}
    # The knowledge ladder strictly shrinks and C intend is never attained.
    assert rows["intend"].count > rows["K_B intend"].count
    assert rows["K_B intend"].count > rows["K_A K_B intend"].count
    assert rows["C intend"].count == 0
    assert report.kind == "system"


def test_sweep_backends_agree():
    runner = ExperimentRunner()
    reports = runner.sweep(
        "muddy_children",
        {"n": range(2, 5)},
        backends=("frozenset", "bitset"),
    )
    assert len(reports) == 6
    by_backend = {}
    for report in reports:
        key = (report.params["n"],)
        by_backend.setdefault(key, []).append(
            [(row.label, row.count, row.holds_at_focus) for row in report.rows]
        )
    for key, outcomes in by_backend.items():
        assert outcomes[0] == outcomes[1], f"backends disagree at {key}"


def test_sweep_rejects_unknown_axis_and_empty_axis():
    runner = ExperimentRunner()
    with pytest.raises(ScenarioError, match="no parameter"):
        runner.sweep("muddy_children", {"bogus": [1]})
    with pytest.raises(ScenarioError, match="no values"):
        runner.sweep("muddy_children", {"n": []})


def test_run_without_default_formulas_requires_explicit_ones(scratch_registration):
    scratch_registration("scratch_no_formulas")(_tiny_builder)
    runner = ExperimentRunner()
    with pytest.raises(ScenarioError, match="no default formulas"):
        runner.run("scratch_no_formulas")
    report = runner.run("scratch_no_formulas", formulas=["K_a p"])
    assert report.rows[0].label == "K_a p"


def test_built_scenario_focus_reported():
    runner = ExperimentRunner()
    report = runner.run("muddy_children", {"n": 2, "k": 1})
    assert report.focus == repr((True, False))
    assert all(row.holds_at_focus is not None for row in report.rows)
    system_report = runner.run("commit", {})
    assert system_report.focus is None
    assert all(row.holds_at_focus is None for row in system_report.rows)


def test_report_round_trips_to_dict():
    runner = ExperimentRunner()
    report = runner.run("muddy_children", {})
    payload = report.to_dict()
    assert payload["scenario"] == "muddy_children"
    assert payload["rows"][0]["label"] == "m"
    assert isinstance(payload["eval_seconds"], float)


def test_run_minimize_preserves_focus_verdicts(engine_backend):
    runner = ExperimentRunner()
    plain = runner.run("muddy_children", {"n": 4, "k": 3})
    reduced = runner.run("muddy_children", {"n": 4, "k": 3}, minimize=True)
    assert reduced.minimized and not plain.minimized
    assert [row.holds_at_focus for row in plain.rows] == [
        row.holds_at_focus for row in reduced.rows
    ]
    assert [row.satisfiable for row in plain.rows] == [
        row.satisfiable for row in reduced.rows
    ]
    assert [row.valid for row in plain.rows] == [row.valid for row in reduced.rows]


def test_minimized_evaluators_are_cached_separately():
    runner = ExperimentRunner()
    instance = runner.instance("muddy_children", {})
    plain = instance.evaluator("bitset")
    reduced = instance.evaluator("bitset", minimize=True)
    assert plain is not reduced
    assert reduced is instance.evaluator("bitset", minimize=True)


# -- system scenarios: minimisation and the temporal fast path ------------------


def test_minimize_system_scenario_routes_through_kripke_export(engine_backend):
    """minimize=True on a system scenario quotients its Kripke export.

    Static-fragment verdicts (satisfiability, validity) are bisimulation
    invariant, so they must match the un-minimised run; the quotient may not be
    larger than the point count.
    """
    runner = ExperimentRunner()
    formulas = [
        ("intend", "intend_attack"),
        ("K_B intend", "K_B intend_attack"),
        ("C intend", "C_{A,B} intend_attack"),
    ]
    plain = runner.run("coordinated_attack", {"depth": 2, "horizon": 4}, formulas=formulas)
    reduced = runner.run(
        "coordinated_attack", {"depth": 2, "horizon": 4}, formulas=formulas, minimize=True
    )
    assert reduced.minimized and reduced.kind == "system"
    assert reduced.universe <= plain.universe
    assert [row.satisfiable for row in plain.rows] == [
        row.satisfiable for row in reduced.rows
    ]
    assert [row.valid for row in plain.rows] == [row.valid for row in reduced.rows]


def test_minimize_system_scenario_translates_point_focus(scratch_registration):
    """A system scenario's Point focus maps through the (run name, time) labels."""
    from repro.systems.runs import RunBuilder
    from repro.systems.system import System

    def build_focused(**_params):
        builder = RunBuilder("r0", ("A", "B"), 2)
        builder.add_fact_from(1, "lit")
        run = builder.build()
        return BuiltScenario(model=System([run]), focus=run.point(1))

    scratch_registration("scratch_focused_system")(build_focused)
    runner = ExperimentRunner()
    report = runner.run(
        "scratch_focused_system", formulas=[("lit", "lit")], minimize=True
    )
    assert report.minimized
    (row,) = report.rows
    assert row.holds_at_focus is True


def test_minimize_system_scenario_rejects_temporal_formulas():
    """The quotient has no run/time structure: temporal operators are rejected
    statically by the pre-flight checker, before any model is built."""
    from repro.errors import CheckError
    from repro.logic.syntax import Eventually, Prop

    runner = ExperimentRunner()
    with pytest.raises(CheckError, match="runs-and-systems"):
        runner.run(
            "coordinated_attack",
            {"depth": 2, "horizon": 4},
            formulas=[("ladder", Eventually(Prop("intend_attack")))],
            minimize=True,
        )


def test_universe_size_is_cached_on_the_instance():
    runner = ExperimentRunner()
    instance = runner.instance("coordinated_attack", {"depth": 2, "horizon": 4})
    size = instance.universe_size
    assert size == instance.model.point_count()
    # The slot is primed on first access and served from the cache afterwards.
    assert instance._universe_size == size
    instance._universe_size = size + 1  # a re-enumerating property would revert this
    assert instance.universe_size == size + 1


@pytest.mark.parametrize("scenario,params", [
    ("ok_protocol", {"horizon": 3}),
    ("phases", {"phase_end": 2, "skew": 1}),
])
def test_temporal_default_formulas_agree_across_backends(scenario, params):
    """The registered temporal formula sets produce identical reports on the
    frozenset reference and the bitset mask path."""
    runner = ExperimentRunner()
    reports = {
        backend: runner.run(scenario, params, backend=backend)
        for backend in ("frozenset", "bitset")
    }
    rows_by_backend = {
        backend: [
            (row.label, row.count, row.satisfiable, row.valid, row.holds_at_focus)
            for row in report.rows
        ]
        for backend, report in reports.items()
    }
    assert rows_by_backend["frozenset"] == rows_by_backend["bitset"]
