"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so callers can
catch library-level failures with a single ``except`` clause while still being able to
distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class FormulaError(ReproError):
    """Raised when a formula is malformed or used outside its supported semantics."""


class ParseError(FormulaError):
    """Raised by the formula parser when the input text is not a valid formula."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        base = super().__str__()
        if self.position >= 0:
            return f"{base} (at position {self.position} in {self.text!r})"
        return base


class PositivityError(FormulaError):
    """Raised when a fixpoint variable occurs under an odd number of negations.

    Appendix A's semantics for ``nu X. phi`` / ``mu X. phi`` is only sound when
    every free occurrence of ``X`` in ``phi`` is *positive* (under an even
    number of negations), which makes the induced set transformer monotone.
    Carries ``variable`` (the offending ``Var`` name) so tooling — the static
    checker, the CLI — can report it structurally instead of re-parsing the
    message text.
    """

    def __init__(self, message: str, variable: "str | None" = None):
        super().__init__(message)
        self.variable = variable


class ModelError(ReproError):
    """Raised when a Kripke structure or system is malformed or inconsistent."""


class UnknownWorldError(ModelError):
    """Raised when a world is referenced that does not exist in the structure."""


class UnknownAgentError(ModelError):
    """Raised when an agent is referenced that does not exist in the structure."""


class UnknownPointError(ModelError):
    """Raised when a (run, time) point is referenced outside the system."""


class EvaluationError(ReproError):
    """Raised when a formula cannot be evaluated under the given interpretation.

    The typical cause is using a temporal-epistemic operator (``C^eps``, ``C^<>``,
    ``C^T``) against a plain Kripke structure, which has no notion of runs or time.
    """


class ProtocolError(ReproError):
    """Raised when a protocol violates its contract (e.g. acts before waking up)."""


class SimulationError(ReproError):
    """Raised when the simulator is configured inconsistently."""


class ScenarioError(ReproError):
    """Raised when a scenario is instantiated with invalid parameters."""


class DSLError(ScenarioError):
    """Raised when a declarative scenario recipe is malformed.

    Typical causes: a protocol factory that does not cover every processor, a
    delivery field that is not a :class:`~repro.simulation.network.DeliveryModel`,
    a formula entry that fails to parse, or a default-label selection naming a
    label the formula suite does not define.  Subclasses
    :class:`ScenarioError` so registry-level callers (CLI, runner) report DSL
    misuse through the same ``error:`` path as any other scenario problem.
    """


class CheckError(ScenarioError):
    """Raised when the static checker rejects a formula batch before a run.

    The pre-flight in :meth:`ExperimentRunner.run` / :meth:`~ExperimentRunner.sweep`
    and the ``repro check`` CLI verb collect :class:`~repro.analysis.diagnostics.Diagnostic`
    records first and raise one ``CheckError`` summarising every error-severity
    finding, so a bad batch is rejected *before* any model is built or a worker
    pool spins up.  ``diagnostics`` holds the full structured list (warnings
    included) for programmatic consumers.
    """

    def __init__(self, message: str, diagnostics: "list | None" = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class StoreError(ReproError):
    """Raised when a persistent result store cannot be opened or trusted.

    Covers corrupt/truncated sqlite files, stores written by an incompatible
    store schema, and stores whose recorded ``semantics_version`` does not
    match this build.  Messages always name the offending path and a remedy
    (delete the file, run ``repro store gc --stale``, or pass ``--no-store``),
    so a stale cache never silently poisons a sweep.
    """


class SweepFaultError(ReproError):
    """Raised when a supervised sweep gives up on a grid point (or the pool).

    Carries the exact failing point — ``scenario``, ``params``, ``backend`` —
    and the full ``attempts`` history (one record per attempt, each naming the
    failure kind: ``error`` for an exception, ``timeout`` for a tripped
    watchdog, ``crash`` for a worker that died), so an aborted sweep names
    precisely what to fix or quarantine.  Raised by ``--on-error abort`` once
    the retry budget is exhausted, and by either mode when the pool-restart
    budget runs out; the CLI maps it to exit code 1.
    """

    def __init__(
        self,
        message: str,
        scenario: "str | None" = None,
        params: "dict | None" = None,
        backend: "str | None" = None,
        attempts: "list | None" = None,
    ):
        super().__init__(message)
        self.scenario = scenario
        self.params = dict(params) if params else {}
        self.backend = backend
        self.attempts = list(attempts or [])


class ChaosError(ReproError):
    """Raised when a ``REPRO_CHAOS`` fault-injection config is malformed.

    The chaos harness is a *test* instrument: a bad config must fail loudly at
    injection time, never silently skip its faults and let a supervision test
    pass vacuously.
    """


class ChaosInjectedError(ChaosError):
    """The exception an injected ``raise`` fault throws inside an evaluation.

    Deliberately a distinct type: supervision code must treat it like any
    other point failure (retry, quarantine, abort), while tests can assert
    that a quarantined point failed for exactly the injected reason.
    """


class TraceError(ReproError):
    """Raised when a recorded JSONL event log cannot be ingested.

    Covers malformed lines (bad JSON, missing fields, unknown line types) and
    semantic violations: events before their run header, decreasing times
    within a run, duplicate deliveries of the same message, receives with no
    matching send, or events outside the run's ``0..duration`` window.
    """
