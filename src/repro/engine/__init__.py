"""Shared, backend-pluggable evaluation core for the epistemic language.

This package factors the structural-recursion semantics of Section 6 out of the two
evaluators (:class:`repro.kripke.checker.ModelChecker` and
:class:`repro.systems.interpretation.ViewBasedInterpretation`) into one engine with
two interchangeable set representations:

* the ``frozenset`` reference backend (the paper's clauses, transcribed literally);
* the ``bitset`` backend (extensions as integer bitmasks over an indexed universe,
  with per-agent partition masks and per-group reachability closures precomputed).

The differential tests in ``tests/test_engine_equivalence.py`` keep the two backends
in lock-step on every operator.
"""

from repro.engine.backends import (
    BACKENDS,
    BitsetBackend,
    EngineBackend,
    FrozensetBackend,
    get_default_backend,
    resolve_backend_name,
    set_default_backend,
)
from repro.engine.core import (
    COMMON_FIXPOINT,
    COMMON_REACHABILITY,
    EvaluationEngine,
)
from repro.engine.universe import IndexedUniverse, Segmentation

__all__ = [
    "BACKENDS",
    "BitsetBackend",
    "EngineBackend",
    "FrozensetBackend",
    "IndexedUniverse",
    "Segmentation",
    "EvaluationEngine",
    "COMMON_FIXPOINT",
    "COMMON_REACHABILITY",
    "get_default_backend",
    "resolve_backend_name",
    "set_default_backend",
]
