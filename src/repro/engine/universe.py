"""Indexed universes: mapping worlds/points to bit positions.

The bitset backend of :mod:`repro.engine` represents a set of worlds (or points) as a
single Python integer whose ``i``-th bit records membership of the ``i``-th element.
:class:`IndexedUniverse` owns that numbering: it fixes a deterministic order over the
elements once, and converts between masks and frozensets.

Python integers are arbitrary-precision, so a universe of ``n`` elements needs one
``n``-bit int per set and the Boolean connectives of the epistemic language become
single CPU-friendly bitwise operations (``&``, ``|``, ``^``) instead of per-element
hash-set traversals.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Sequence, Tuple

from repro.errors import ModelError

__all__ = ["IndexedUniverse", "MaskCompressor"]

Element = Hashable


class IndexedUniverse:
    """A fixed, ordered universe of hashable elements with bitmask conversions.

    Parameters
    ----------
    elements:
        The elements of the universe, in the order that fixes their bit positions.
        The caller is responsible for passing a deterministic order (e.g. sorted by
        ``repr``); duplicates are rejected.
    """

    __slots__ = ("_elements", "_index", "_full")

    def __init__(self, elements: Iterable[Element]):
        self._elements: Tuple[Element, ...] = tuple(elements)
        self._index: Dict[Element, int] = {
            element: position for position, element in enumerate(self._elements)
        }
        if len(self._index) != len(self._elements):
            raise ModelError("IndexedUniverse elements must be distinct")
        if not self._elements:
            raise ModelError("IndexedUniverse needs at least one element")
        self._full: int = (1 << len(self._elements)) - 1

    # -- basic accessors -------------------------------------------------------
    @property
    def elements(self) -> Tuple[Element, ...]:
        """The elements in bit-position order."""
        return self._elements

    @property
    def full_mask(self) -> int:
        """The mask with every element's bit set."""
        return self._full

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._index

    def index_of(self, element: Element) -> int:
        """The bit position of ``element`` (raises ``KeyError`` if unknown)."""
        return self._index[element]

    def bit(self, element: Element) -> int:
        """The single-bit mask of ``element``."""
        return 1 << self._index[element]

    # -- conversions -----------------------------------------------------------
    def mask_of(self, elements: Iterable[Element]) -> int:
        """The mask whose set bits are exactly ``elements``."""
        index = self._index
        mask = 0
        for element in elements:
            mask |= 1 << index[element]
        return mask

    def to_frozenset(self, mask: int) -> FrozenSet[Element]:
        """The elements whose bits are set in ``mask``."""
        return frozenset(self.elements_of(mask))

    def elements_of(self, mask: int) -> Iterator[Element]:
        """Yield the elements of ``mask`` in bit-position order."""
        elements = self._elements
        while mask:
            low = mask & -mask
            yield elements[low.bit_length() - 1]
            mask ^= low

    @staticmethod
    def count(mask: int) -> int:
        """How many elements ``mask`` contains (popcount)."""
        return mask.bit_count()

    def subuniverse(self, survivor_mask: int) -> "Tuple[IndexedUniverse, MaskCompressor]":
        """The universe of the elements in ``survivor_mask``, plus its remapper.

        The sub-universe keeps the parent's relative element order, so a parent
        whose order was sorted stays sorted after restriction.  The returned
        :class:`MaskCompressor` translates parent-numbered masks into the
        sub-universe's numbering.
        """
        compressor = MaskCompressor(survivor_mask)
        return IndexedUniverse(self.elements_of(survivor_mask)), compressor


class MaskCompressor:
    """Remaps bitmasks from a parent universe onto the sub-universe of survivors.

    Restriction in bitmask space is an AND against the survivor mask followed by
    a *compression*: surviving bits are repacked contiguously, in order, so they
    line up with the restricted structure's own :class:`IndexedUniverse`.  The
    compressor precomputes the parent-position -> child-position table once and
    then remaps any number of masks in ``O(popcount)`` each.
    """

    __slots__ = ("survivor_mask", "_child_bit")

    def __init__(self, survivor_mask: int):
        if survivor_mask < 0:
            raise ModelError("survivor mask must be non-negative")
        self.survivor_mask = survivor_mask
        # _child_bit[parent position] = the child's single-bit mask.
        child_bit: Dict[int, int] = {}
        position = 0
        remaining = survivor_mask
        while remaining:
            low = remaining & -remaining
            child_bit[low.bit_length() - 1] = 1 << position
            position += 1
            remaining ^= low
        self._child_bit = child_bit

    def __len__(self) -> int:
        return len(self._child_bit)

    def compress(self, mask: int) -> int:
        """Remap a parent-numbered ``mask`` (clipped to the survivors) to child bits."""
        child_bit = self._child_bit
        result = 0
        mask &= self.survivor_mask
        while mask:
            low = mask & -mask
            result |= child_bit[low.bit_length() - 1]
            mask ^= low
        return result
