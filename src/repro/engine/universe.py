"""Indexed universes: mapping worlds/points to bit positions.

The bitset backend of :mod:`repro.engine` represents a set of worlds (or points) as a
single Python integer whose ``i``-th bit records membership of the ``i``-th element.
:class:`IndexedUniverse` owns that numbering: it fixes a deterministic order over the
elements once, and converts between masks and frozensets.

Python integers are arbitrary-precision, so a universe of ``n`` elements needs one
``n``-bit int per set and the Boolean connectives of the epistemic language become
single CPU-friendly bitwise operations (``&``, ``|``, ``^``) instead of per-element
hash-set traversals.

:class:`Segmentation` layers a *segment structure* on top of such a numbering: when
the elements are the points of a system of runs laid out run-major (every run's
``0 .. duration`` block occupies one contiguous bit range), the temporal sweeps of
the Sections 11–12 operators become parallel-prefix bit tricks confined to each
segment — one backward OR sweep evaluates ``<> phi`` for every point of every run
at once.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Sequence, Tuple

from repro.errors import ModelError

__all__ = ["IndexedUniverse", "MaskCompressor", "Segmentation"]

Element = Hashable


class IndexedUniverse:
    """A fixed, ordered universe of hashable elements with bitmask conversions.

    Parameters
    ----------
    elements:
        The elements of the universe, in the order that fixes their bit positions.
        The caller is responsible for passing a deterministic order (e.g. sorted by
        ``repr``); duplicates are rejected.
    """

    __slots__ = ("_elements", "_index", "_full")

    def __init__(self, elements: Iterable[Element]):
        self._elements: Tuple[Element, ...] = tuple(elements)
        self._index: Dict[Element, int] = {
            element: position for position, element in enumerate(self._elements)
        }
        if len(self._index) != len(self._elements):
            raise ModelError("IndexedUniverse elements must be distinct")
        if not self._elements:
            raise ModelError("IndexedUniverse needs at least one element")
        self._full: int = (1 << len(self._elements)) - 1

    # -- basic accessors -------------------------------------------------------
    @property
    def elements(self) -> Tuple[Element, ...]:
        """The elements in bit-position order."""
        return self._elements

    @property
    def full_mask(self) -> int:
        """The mask with every element's bit set."""
        return self._full

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._index

    def index_of(self, element: Element) -> int:
        """The bit position of ``element`` (raises ``KeyError`` if unknown)."""
        return self._index[element]

    def bit(self, element: Element) -> int:
        """The single-bit mask of ``element``."""
        return 1 << self._index[element]

    # -- conversions -----------------------------------------------------------
    def mask_of(self, elements: Iterable[Element]) -> int:
        """The mask whose set bits are exactly ``elements``."""
        index = self._index
        mask = 0
        for element in elements:
            mask |= 1 << index[element]
        return mask

    def to_frozenset(self, mask: int) -> FrozenSet[Element]:
        """The elements whose bits are set in ``mask``."""
        return frozenset(self.elements_of(mask))

    def elements_of(self, mask: int) -> Iterator[Element]:
        """Yield the elements of ``mask`` in bit-position order."""
        elements = self._elements
        while mask:
            low = mask & -mask
            yield elements[low.bit_length() - 1]
            mask ^= low

    @staticmethod
    def count(mask: int) -> int:
        """How many elements ``mask`` contains (popcount)."""
        return mask.bit_count()

    def subuniverse(self, survivor_mask: int) -> "Tuple[IndexedUniverse, MaskCompressor]":
        """The universe of the elements in ``survivor_mask``, plus its remapper.

        The sub-universe keeps the parent's relative element order, so a parent
        whose order was sorted stays sorted after restriction.  The returned
        :class:`MaskCompressor` translates parent-numbered masks into the
        sub-universe's numbering.
        """
        compressor = MaskCompressor(survivor_mask)
        return IndexedUniverse(self.elements_of(survivor_mask)), compressor


class Segmentation:
    """Contiguous, gap-free segments over the bit positions ``0 .. n-1``.

    The systems layer lays its points out run-major (``System.points()`` yields each
    run's ``0 .. duration`` block contiguously, runs sorted by name), so segment
    ``i`` is run ``i`` and bit ``offset_i + t`` is the point ``(run_i, t)``.  All
    sweeps below stay strictly inside their segment: a shift never carries a bit
    across a run boundary, however ragged the durations.

    Within-segment shifts are guarded by precomputed masks, so every sweep is a
    handful of whole-universe bitwise operations — ``O(log max_length)`` big-int
    ops total — instead of a per-point Python loop.
    """

    __slots__ = (
        "_lengths",
        "_offsets",
        "_segment_masks",
        "_full",
        "_max_length",
        "_ahead_guards",
        "_behind_guards",
    )

    def __init__(self, lengths: Iterable[int]):
        self._lengths: Tuple[int, ...] = tuple(int(length) for length in lengths)
        if not self._lengths:
            raise ModelError("Segmentation needs at least one segment")
        if any(length <= 0 for length in self._lengths):
            raise ModelError("segment lengths must be positive")
        offsets = []
        masks = []
        position = 0
        for length in self._lengths:
            offsets.append(position)
            masks.append(((1 << length) - 1) << position)
            position += length
        self._offsets: Tuple[int, ...] = tuple(offsets)
        self._segment_masks: Tuple[int, ...] = tuple(masks)
        self._full: int = (1 << position) - 1
        self._max_length: int = max(self._lengths)
        # Guard masks, by shift distance, computed on demand and cached: the
        # distances used are the powers of two of the doubling sweeps plus the
        # residual steps of bounded windows, so the cache stays tiny.
        self._ahead_guards: Dict[int, int] = {}
        self._behind_guards: Dict[int, int] = {}

    # -- basic accessors -------------------------------------------------------
    @property
    def lengths(self) -> Tuple[int, ...]:
        """The segment lengths, in segment order."""
        return self._lengths

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Each segment's first bit position."""
        return self._offsets

    @property
    def full_mask(self) -> int:
        """The mask with every position's bit set."""
        return self._full

    def __len__(self) -> int:
        return len(self._lengths)

    def segment_mask(self, index: int) -> int:
        """The mask of every position in segment ``index``."""
        return self._segment_masks[index]

    # -- shift guards ----------------------------------------------------------
    def ahead_guard(self, distance: int) -> int:
        """Positions whose ``distance``-later neighbour is in the same segment.

        ANDing this against a right-shifted mask keeps a backward (future-looking)
        sweep from pulling bits across the next segment's boundary.
        """
        guard = self._ahead_guards.get(distance)
        if guard is None:
            guard = 0
            for offset, length in zip(self._offsets, self._lengths):
                if length > distance:
                    guard |= ((1 << (length - distance)) - 1) << offset
            self._ahead_guards[distance] = guard
        return guard

    def behind_guard(self, distance: int) -> int:
        """Positions whose ``distance``-earlier neighbour is in the same segment."""
        guard = self._behind_guards.get(distance)
        if guard is None:
            guard = 0
            for offset, length in zip(self._offsets, self._lengths):
                if length > distance:
                    guard |= ((1 << (length - distance)) - 1) << (offset + distance)
            self._behind_guards[distance] = guard
        return guard

    # -- within-segment sweeps -------------------------------------------------
    def suffix_or(self, mask: int) -> int:
        """Bit ``p`` set iff some bit ``>= p`` *in p's segment* is set in ``mask``.

        With bit positions read as times, this is ``<> phi``: true now iff true at
        the current or some later point of the same run.  One doubling sweep
        serves every run simultaneously.
        """
        distance = 1
        while distance < self._max_length:
            mask |= (mask >> distance) & self.ahead_guard(distance)
            distance <<= 1
        return mask

    def prefix_or(self, mask: int) -> int:
        """Bit ``p`` set iff some bit ``<= p`` in ``p``'s segment is set in ``mask``."""
        distance = 1
        while distance < self._max_length:
            mask |= (mask << distance) & self.behind_guard(distance)
            distance <<= 1
        return mask

    def suffix_and(self, mask: int) -> int:
        """Bit ``p`` set iff every bit ``>= p`` in ``p``'s segment is set in ``mask``
        (``[] phi`` over times)."""
        return self._full ^ self.suffix_or(self._full ^ (mask & self._full))

    def spread(self, mask: int) -> int:
        """The union of the segments that intersect ``mask``.

        This is the broadcast-to-run step of the run-level operators (``E^<>``,
        ``K^T``): a property established anywhere in a run holds at every point
        of that run.
        """
        return self.suffix_or(self.prefix_or(mask & self._full))

    def covered(self, mask: int) -> int:
        """The union of the segments entirely contained in ``mask``."""
        return self._full ^ self.spread(self._full ^ (mask & self._full))

    def window_or_ahead(self, mask: int, width: int) -> int:
        """Bit ``p`` = OR of ``mask`` bits ``p .. p+width-1`` within ``p``'s segment.

        The look-ahead half of the ``E^eps`` window: at a window start, does the
        window (clipped to the run) contain a set bit?
        """
        if width <= 1:
            return mask
        covered = 1
        while covered < width:
            step = min(covered, width - covered)
            mask |= (mask >> step) & self.ahead_guard(step)
            covered += step
        return mask

    def window_or_behind(self, mask: int, width: int) -> int:
        """Bit ``p`` = OR of ``mask`` bits ``p-width+1 .. p`` within ``p``'s segment
        (the look-behind half of the ``E^eps`` window: some admissible start works)."""
        if width <= 1:
            return mask
        covered = 1
        while covered < width:
            step = min(covered, width - covered)
            mask |= (mask << step) & self.behind_guard(step)
            covered += step
        return mask


class MaskCompressor:
    """Remaps bitmasks from a parent universe onto the sub-universe of survivors.

    Restriction in bitmask space is an AND against the survivor mask followed by
    a *compression*: surviving bits are repacked contiguously, in order, so they
    line up with the restricted structure's own :class:`IndexedUniverse`.  The
    compressor precomputes the parent-position -> child-position table once and
    then remaps any number of masks in ``O(popcount)`` each.
    """

    __slots__ = ("survivor_mask", "_child_bit")

    def __init__(self, survivor_mask: int):
        if survivor_mask < 0:
            raise ModelError("survivor mask must be non-negative")
        self.survivor_mask = survivor_mask
        # _child_bit[parent position] = the child's single-bit mask.
        child_bit: Dict[int, int] = {}
        position = 0
        remaining = survivor_mask
        while remaining:
            low = remaining & -remaining
            child_bit[low.bit_length() - 1] = 1 << position
            position += 1
            remaining ^= low
        self._child_bit = child_bit

    def __len__(self) -> int:
        return len(self._child_bit)

    def compress(self, mask: int) -> int:
        """Remap a parent-numbered ``mask`` (clipped to the survivors) to child bits."""
        child_bit = self._child_bit
        result = 0
        mask &= self.survivor_mask
        while mask:
            low = mask & -mask
            result |= child_bit[low.bit_length() - 1]
            mask ^= low
        return result
