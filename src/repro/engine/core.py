"""The shared formula-evaluation engine.

:class:`EvaluationEngine` implements the structural recursion of Section 6 once, for
both evaluators of the library:

* :class:`repro.kripke.checker.ModelChecker` instantiates it over the worlds of a
  Kripke structure (temporal operators rejected via the ``special`` hook);
* :class:`repro.systems.interpretation.ViewBasedInterpretation` instantiates it over
  the points of a system (temporal and temporal-epistemic operators supplied via the
  ``special`` hook).

The engine is generic over a set-representation *backend*
(:mod:`repro.engine.backends`): the reference ``frozenset`` backend, or the ``bitset``
backend that evaluates over integer bitmasks.  Results are memoised under structural
keys — structurally equal formulas share one interned key, so repeated queries (and
repeated ``C_G`` fixpoint iterations, whose iterates re-evaluate the same body under
the same variable environment) hit the cache regardless of which formula object the
caller built.

Hosts keep their own error vocabulary by injecting callbacks: ``require_agent`` /
``require_group`` raise the host's unknown-agent errors, and ``special`` either
evaluates host-specific operators (returning a frozenset) or returns ``None`` to make
the engine raise its generic unsupported-node error.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import EvaluationError
from repro.engine.backends import BACKENDS, EngineBackend, resolve_backend_name
from repro.logic.syntax import (
    And,
    Common,
    Distributed,
    Everyone,
    FalseFormula,
    Formula,
    GreatestFixpoint,
    Iff,
    Implies,
    Knows,
    LeastFixpoint,
    Not,
    Or,
    Prop,
    Someone,
    TrueFormula,
    Var,
    _occurrences_positive,
)

__all__ = ["EvaluationEngine", "COMMON_REACHABILITY", "COMMON_FIXPOINT"]

Element = Hashable
Agent = Hashable

COMMON_REACHABILITY = "reachability"
COMMON_FIXPOINT = "fixpoint"
_COMMON_STRATEGIES = (COMMON_REACHABILITY, COMMON_FIXPOINT)

_MAX_FIXPOINT_ITERATIONS = 1_000_000

SpecialHandler = Callable[[Formula, Callable[[Formula], FrozenSet[Element]]], Optional[FrozenSet[Element]]]

SpecialNativeHandler = Callable[
    [Formula, Callable[[Formula], object], EngineBackend], Optional[object]
]


class EvaluationEngine:
    """Backend-pluggable evaluator for the static epistemic language.

    Parameters
    ----------
    elements:
        The universe (worlds or points), in a deterministic order.
    class_maps:
        One ``element -> equivalence class`` map per agent.
    prop_extension:
        Returns the extension (a set of elements) of a primitive proposition name.
    require_agent:
        Called (and expected to raise the host's error) when a ``K_i`` names an
        agent with no class map.
    require_group:
        Normalises/validates a group and returns its members as a sorted tuple,
        raising the host's error for unknown members.
    special:
        Optional hook for operators the engine does not implement (the temporal and
        temporal-epistemic fragment).  It receives the formula and an evaluator for
        subformulas (closing over the current variable environment) and returns the
        extension as a frozenset, or ``None`` if the node is unsupported.
    special_native:
        Optional *backend-native* variant of ``special``, consulted first.  It
        additionally receives the active backend, and its subformula evaluator
        hands back raw backend values (bitmasks on the bitset backend) instead of
        frozensets; its result must likewise be a backend value.  Returning
        ``None`` falls through to ``special`` — hosts use this to run a fast mask
        path on the bitset backend while keeping the frozenset transcription as
        the reference semantics.
    backend:
        ``"frozenset"``, ``"bitset"``, ``None`` for the process-wide default
        (:func:`repro.engine.backends.get_default_backend`), or an already-built
        :class:`~repro.engine.backends.EngineBackend` instance (hosts use this to
        share precomputed masks across evaluators of the same model).
    common_strategy:
        How ``C_G`` is evaluated: ``"reachability"`` (Section 6's graph
        characterisation) or ``"fixpoint"`` (Appendix A's greatest fixed point).
    """

    def __init__(
        self,
        elements: Sequence[Element],
        class_maps: Mapping[Agent, Mapping[Element, FrozenSet[Element]]],
        prop_extension: Callable[[str], Iterable[Element]],
        *,
        require_agent: Callable[[Agent], None],
        require_group: Callable[[object], Tuple[Agent, ...]],
        special: Optional[SpecialHandler] = None,
        special_native: Optional[SpecialNativeHandler] = None,
        backend: "Union[str, EngineBackend, None]" = None,
        common_strategy: str = COMMON_REACHABILITY,
    ):
        if common_strategy not in _COMMON_STRATEGIES:
            raise EvaluationError(
                f"unknown common-knowledge strategy {common_strategy!r}; "
                f"expected one of {_COMMON_STRATEGIES}"
            )
        if isinstance(backend, EngineBackend):
            self._backend: EngineBackend = backend
        else:
            backend_name = resolve_backend_name(backend)
            self._backend = BACKENDS[backend_name](elements, class_maps)
        # Environment extensions handed in by callers are clipped to this set, so
        # both backends see identical inputs (the bitset backend cannot even
        # represent foreign elements).
        self._universe_set: FrozenSet[Element] = frozenset(elements)
        self._prop_extension = prop_extension
        self._require_agent = require_agent
        self._require_group = require_group
        self._special = special
        self._special_native = special_native
        self._common_strategy = common_strategy
        # Structural interning: structurally equal formulas map to one small int, so
        # memo keys hash the (deep) formula once per distinct structure.
        self._interned: Dict[Formula, int] = {}
        self._memo: Dict[Tuple[int, Tuple[Tuple[str, object], ...]], object] = {}

    # -- configuration ----------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """The name of the active set-representation backend."""
        return self._backend.name

    @property
    def backend(self) -> EngineBackend:
        """The active backend instance (exposed for tests and benchmarks)."""
        return self._backend

    @property
    def common_strategy(self) -> str:
        """The active ``C_G`` evaluation strategy."""
        return self._common_strategy

    @common_strategy.setter
    def common_strategy(self, strategy: str) -> None:
        if strategy not in _COMMON_STRATEGIES:
            raise EvaluationError(
                f"unknown common-knowledge strategy {strategy!r}; "
                f"expected one of {_COMMON_STRATEGIES}"
            )
        if strategy != self._common_strategy:
            self._common_strategy = strategy
            # Memoised C_G extensions were computed under the old strategy; both
            # strategies agree semantically, but dropping them keeps the cache
            # trivially coherent with the configuration.
            self._memo.clear()

    @property
    def cache_size(self) -> int:
        """How many (formula, environment) extensions are currently memoised."""
        return len(self._memo)

    def clear_cache(self) -> None:
        """Drop every memoised extension (structural per-group caches survive —
        they depend only on the immutable model, never on formulas)."""
        self._memo.clear()
        # The interner only exists to serve memo keys; dropping it with the memo
        # keeps long-lived engines from retaining every formula ever evaluated.
        self._interned.clear()

    # -- public evaluation API ----------------------------------------------------
    def extension(
        self,
        formula: Formula,
        environment: Optional[Mapping[str, FrozenSet[Element]]] = None,
    ) -> FrozenSet[Element]:
        """The set of elements at which ``formula`` holds, as a frozenset.

        Environment values are restricted to the universe: elements that are not
        worlds/points of the model are ignored, identically on every backend.
        """
        return self._backend.to_frozenset(
            self._evaluate(formula, self._convert_environment(environment))
        )

    def extensions(
        self,
        formulas: Iterable[Formula],
        environment: Optional[Mapping[str, FrozenSet[Element]]] = None,
    ) -> List[FrozenSet[Element]]:
        """Batch evaluation: the extensions of ``formulas`` in order.

        All queries share the engine's subformula memo, so a batch of formulas with
        common subterms (e.g. the ``E^k`` hierarchy) costs little more than the
        largest single query.
        """
        backend = self._backend
        env = self._convert_environment(environment)
        return [backend.to_frozenset(self._evaluate(f, env)) for f in formulas]

    def _convert_environment(
        self, environment: Optional[Mapping[str, FrozenSet[Element]]]
    ) -> Dict[str, object]:
        backend = self._backend
        universe = self._universe_set
        return {
            name: backend.from_frozenset(universe & frozenset(value))
            for name, value in (environment or {}).items()
        }

    # -- recursion ---------------------------------------------------------------
    def _intern(self, formula: Formula) -> int:
        key = self._interned.get(formula)
        if key is None:
            key = len(self._interned)
            self._interned[formula] = key
        return key

    def _evaluate(self, formula: Formula, env: Dict[str, object]):
        key = (self._intern(formula), tuple(sorted(env.items())))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._evaluate_uncached(formula, env)
        self._memo[key] = result
        return result

    def _evaluate_uncached(self, formula: Formula, env: Dict[str, object]):
        backend = self._backend

        if isinstance(formula, TrueFormula):
            return backend.full
        if isinstance(formula, FalseFormula):
            return backend.empty
        if isinstance(formula, Prop):
            return backend.from_frozenset(self._prop_extension(formula.name))
        if isinstance(formula, Var):
            if formula.name not in env:
                raise EvaluationError(
                    f"fixpoint variable {formula.name!r} is free and unbound"
                )
            return env[formula.name]
        if isinstance(formula, Not):
            return backend.complement(self._evaluate(formula.operand, env))
        if isinstance(formula, And):
            result = backend.full
            for operand in formula.operands:
                result = backend.intersect(result, self._evaluate(operand, env))
                if backend.is_empty(result):
                    break
            return result
        if isinstance(formula, Or):
            result = backend.empty
            for operand in formula.operands:
                result = backend.union(result, self._evaluate(operand, env))
            return result
        if isinstance(formula, Implies):
            antecedent = self._evaluate(formula.antecedent, env)
            consequent = self._evaluate(formula.consequent, env)
            return backend.union(backend.complement(antecedent), consequent)
        if isinstance(formula, Iff):
            left = self._evaluate(formula.left, env)
            right = self._evaluate(formula.right, env)
            return backend.equiv(left, right)

        if isinstance(formula, Knows):
            if not backend.has_agent(formula.agent):
                self._require_agent(formula.agent)
            body = self._evaluate(formula.operand, env)
            return backend.knowledge(formula.agent, body)
        if isinstance(formula, Someone):
            members = self._require_group(formula.group)
            body = self._evaluate(formula.operand, env)
            return backend.someone(members, body)
        if isinstance(formula, Everyone):
            members = self._require_group(formula.group)
            body = self._evaluate(formula.operand, env)
            return backend.everyone(members, body)
        if isinstance(formula, Distributed):
            members = self._require_group(formula.group)
            body = self._evaluate(formula.operand, env)
            return backend.distributed(members, body)
        if isinstance(formula, Common):
            members = self._require_group(formula.group)
            body = self._evaluate(formula.operand, env)
            if self._common_strategy == COMMON_REACHABILITY:
                return backend.common_reachability(members, body)
            return self._common_fixpoint(members, body)

        if isinstance(formula, GreatestFixpoint):
            return self._bound_fixpoint(formula, env, greatest=True)
        if isinstance(formula, LeastFixpoint):
            return self._bound_fixpoint(formula, env, greatest=False)

        return self._evaluate_special(formula, env)

    def _evaluate_special(self, formula: Formula, env: Dict[str, object]):
        backend = self._backend
        if self._special_native is not None:

            def evaluate_native(subformula: Formula):
                return self._evaluate(subformula, env)

            native = self._special_native(formula, evaluate_native, backend)
            if native is not None:
                return native
        if self._special is not None:

            def evaluate(subformula: Formula) -> FrozenSet[Element]:
                return backend.to_frozenset(self._evaluate(subformula, env))

            result = self._special(formula, evaluate)
            if result is not None:
                return backend.from_frozenset(result)
        raise EvaluationError(f"unsupported formula node {type(formula).__name__}")

    # -- fixpoints ---------------------------------------------------------------
    # One iterate-until-stable loop serves both fixpoint forms.  It mirrors
    # repro.logic.fixpoint.iterate_to_fixpoint, which cannot be reused directly
    # because it coerces every iterate through frozenset() and the transformer
    # here works on opaque backend values (ints for the bitset backend).

    @staticmethod
    def _iterate_until_stable(step, start):
        current = start
        for _ in range(_MAX_FIXPOINT_ITERATIONS):
            nxt = step(current)
            if nxt == current:
                return current
            current = nxt
        raise EvaluationError(
            f"fixpoint iteration did not converge within {_MAX_FIXPOINT_ITERATIONS} steps"
        )

    def _common_fixpoint(self, members: Tuple[Agent, ...], body):
        """``C_G phi`` as the greatest fixed point of ``X == E_G(phi & X)``."""
        backend = self._backend
        return self._iterate_until_stable(
            lambda current: backend.everyone(members, backend.intersect(body, current)),
            backend.full,
        )

    def _bound_fixpoint(self, formula, env: Dict[str, object], greatest: bool):
        # The constructor enforces the positivity restriction, but formulas can
        # reach evaluation without passing through it (unpickling restores
        # slots directly), so re-check here: iterating a non-monotone body
        # converges to a meaningless answer or not at all.
        if not _occurrences_positive(formula.body, formula.variable, positive=True):
            binder = "nu" if greatest else "mu"
            raise EvaluationError(
                f"cannot iterate {binder} {formula.variable}: a free occurrence "
                f"of {formula.variable!r} in the body sits under an odd number "
                "of negations, so the induced set transformer is not monotone "
                "and the fixed point may not exist"
            )
        backend = self._backend

        def step(current):
            inner_env = dict(env)
            inner_env[formula.variable] = current
            return self._evaluate(formula.body, inner_env)

        return self._iterate_until_stable(
            step, backend.full if greatest else backend.empty
        )
