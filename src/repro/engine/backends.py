"""Set-representation backends for the shared evaluation engine.

The engine (:mod:`repro.engine.core`) performs the structural recursion of Section 6
generically; a *backend* decides how extensions (sets of worlds/points) are
represented and supplies the epistemic primitives over that representation:

* :class:`FrozensetBackend` — the reference implementation.  Extensions are
  ``frozenset`` objects and every operator is evaluated by the per-world subset
  checks that transcribe the paper's clauses (a)-(g) directly.  It is deliberately
  naive so it can serve as the ground truth of the differential test harness.
* :class:`BitsetBackend` — the fast implementation.  Extensions are Python ints
  (bitmasks over an :class:`~repro.engine.universe.IndexedUniverse`); each agent's
  partition is precomputed as a tuple of block masks, so ``K_i`` is one ``AND`` plus
  one compare per equivalence class, and the Boolean connectives are single bitwise
  operations.  Group joint partitions (for ``D_G``) and G-reachability components
  (for ``C_G``) are computed once per group and memoised on the backend.

Both backends are constructed from the same inputs — a deterministic element order
and one ``element -> equivalence class`` map per agent — so they are guaranteed to
describe the same model; the differential tests check that they also agree on every
formula.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping, Sequence, Tuple

from repro.errors import EvaluationError
from repro.engine.universe import IndexedUniverse

__all__ = [
    "EngineBackend",
    "FrozensetBackend",
    "BitsetBackend",
    "BACKENDS",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend_name",
]

Element = Hashable
Agent = Hashable
ClassMaps = Mapping[Agent, Mapping[Element, FrozenSet[Element]]]


class EngineBackend:
    """Interface shared by the set-representation backends.

    A backend value (``S`` below) is whatever the backend uses to represent a set of
    elements; callers must treat it as opaque and convert at the boundary with
    :meth:`from_frozenset` / :meth:`to_frozenset`.  Backend values are hashable and
    comparable with ``==``, which the engine relies on for memo keys and fixpoint
    termination tests.
    """

    name: str = "?"

    def __init__(self, elements: Sequence[Element], class_maps: ClassMaps):
        raise NotImplementedError

    # -- conversions -----------------------------------------------------------
    def from_frozenset(self, members):
        """Convert an iterable of elements into a backend value."""
        raise NotImplementedError

    def to_frozenset(self, value) -> FrozenSet[Element]:
        """Convert a backend value back into a frozenset of elements."""
        raise NotImplementedError

    # -- set algebra -----------------------------------------------------------
    @property
    def full(self):
        """The whole universe as a backend value."""
        raise NotImplementedError

    @property
    def empty(self):
        """The empty set as a backend value."""
        raise NotImplementedError

    def complement(self, value):
        """The universe minus ``value``."""
        raise NotImplementedError

    def union(self, left, right):
        """The union of two backend values."""
        raise NotImplementedError

    def intersect(self, left, right):
        """The intersection of two backend values."""
        raise NotImplementedError

    def equiv(self, left, right):
        """The elements at which membership of ``left`` and ``right`` agrees."""
        raise NotImplementedError

    def is_empty(self, value) -> bool:
        """Whether the backend value denotes the empty set."""
        raise NotImplementedError

    def has_agent(self, agent: Agent) -> bool:
        """Whether this backend carries a partition for ``agent``."""
        raise NotImplementedError

    # -- epistemic primitives ---------------------------------------------------
    def knowledge(self, agent: Agent, body):
        """``K_i``: the elements whose ``agent``-class is contained in ``body``."""
        raise NotImplementedError

    def someone(self, members: Tuple[Agent, ...], body):
        """``S_G``: union of ``K_i`` over the members."""
        result = self.empty
        for agent in members:
            result = self.union(result, self.knowledge(agent, body))
        return result

    def everyone(self, members: Tuple[Agent, ...], body):
        """``E_G``: intersection of ``K_i`` over the members."""
        result = self.full
        for agent in members:
            result = self.intersect(result, self.knowledge(agent, body))
            if self.is_empty(result):
                break
        return result

    def distributed(self, members: Tuple[Agent, ...], body):
        """``D_G``: elements whose joint class (intersection) is inside ``body``."""
        raise NotImplementedError

    def common_reachability(self, members: Tuple[Agent, ...], body):
        """``C_G`` via Section 6: elements whose G-component is inside ``body``."""
        raise NotImplementedError


class FrozensetBackend(EngineBackend):
    """Reference backend: extensions are frozensets, operators are per-world loops."""

    name = "frozenset"

    def __init__(self, elements: Sequence[Element], class_maps: ClassMaps):
        self._elements: Tuple[Element, ...] = tuple(elements)
        self._full: FrozenSet[Element] = frozenset(self._elements)
        # Inner maps are stored by reference: both hosts hand over effectively
        # immutable mappings (KripkeStructure exposes a read-only view over frozen
        # storage; ViewBasedInterpretation's class maps are never mutated after
        # construction), so copying them per evaluator would be pure waste.
        self._class_maps = dict(class_maps)
        self._components: Dict[Tuple[Agent, ...], Dict[Element, FrozenSet[Element]]] = {}

    # -- conversions -----------------------------------------------------------
    def from_frozenset(self, members) -> FrozenSet[Element]:
        return frozenset(members)

    def to_frozenset(self, value) -> FrozenSet[Element]:
        return value

    # -- set algebra -----------------------------------------------------------
    @property
    def full(self) -> FrozenSet[Element]:
        return self._full

    @property
    def empty(self) -> FrozenSet[Element]:
        return frozenset()

    def complement(self, value):
        return self._full - value

    def union(self, left, right):
        return left | right

    def intersect(self, left, right):
        return left & right

    def equiv(self, left, right):
        return self._full - (left ^ right)

    def is_empty(self, value) -> bool:
        return not value

    def has_agent(self, agent: Agent) -> bool:
        return agent in self._class_maps

    # -- epistemic primitives ---------------------------------------------------
    def knowledge(self, agent: Agent, body):
        class_of = self._class_maps[agent]
        return frozenset(w for w in self._elements if class_of[w] <= body)

    def distributed(self, members: Tuple[Agent, ...], body):
        maps = [self._class_maps[agent] for agent in members]
        result = []
        for w in self._elements:
            joint = maps[0][w]
            for class_of in maps[1:]:
                joint = joint & class_of[w]
            if joint <= body:
                result.append(w)
        return frozenset(result)

    def common_reachability(self, members: Tuple[Agent, ...], body):
        component_of = self._components.get(members)
        if component_of is None:
            component_of = self._build_components(members)
            self._components[members] = component_of
        return frozenset(w for w in self._elements if component_of[w] <= body)

    def _build_components(
        self, members: Tuple[Agent, ...]
    ) -> Dict[Element, FrozenSet[Element]]:
        component_of: Dict[Element, FrozenSet[Element]] = {}
        for start in self._elements:
            if start in component_of:
                continue
            visited = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for agent in members:
                    for neighbour in self._class_maps[agent][current]:
                        if neighbour not in visited:
                            visited.add(neighbour)
                            frontier.append(neighbour)
            component = frozenset(visited)
            for member in component:
                component_of[member] = component
        return component_of


class BitsetBackend(EngineBackend):
    """Fast backend: extensions are int bitmasks over an indexed universe."""

    name = "bitset"

    @classmethod
    def from_precomputed(
        cls,
        universe: IndexedUniverse,
        blocks: Mapping[Agent, Sequence[int]],
        class_at: Mapping[Agent, Sequence[int]],
        component_source=None,
    ) -> "BitsetBackend":
        """Build a backend from masks that already exist.

        :class:`repro.kripke.structure.KripkeStructure` caches its indexed universe,
        partition masks and per-world class masks, so evaluators over the same
        structure can share one precomputation instead of re-deriving the masks on
        every construction.  ``component_source`` (members-tuple -> component
        masks), when given, likewise shares the host's cached G-reachability
        closures instead of re-merging blocks per backend instance.
        """
        self = cls.__new__(cls)
        self._universe = universe
        self._full_mask = universe.full_mask
        self._blocks = {agent: tuple(masks) for agent, masks in blocks.items()}
        self._class_at = {agent: list(masks) for agent, masks in class_at.items()}
        self._joint_blocks = {}
        self._component_masks = {}
        self._component_source = component_source
        return self

    def __init__(self, elements: Sequence[Element], class_maps: ClassMaps):
        self._universe = IndexedUniverse(elements)
        self._full_mask = self._universe.full_mask
        # Per agent: the distinct partition blocks as masks, and the per-element
        # class mask in bit-position order (for joint-partition refinement).
        self._blocks: Dict[Agent, Tuple[int, ...]] = {}
        self._class_at: Dict[Agent, List[int]] = {}
        for agent, class_of in class_maps.items():
            seen: Dict[int, None] = {}
            class_at: List[int] = []
            for element in self._universe.elements:
                mask = self._universe.mask_of(class_of[element])
                class_at.append(mask)
                seen.setdefault(mask, None)
            self._blocks[agent] = tuple(seen)
            self._class_at[agent] = class_at
        self._joint_blocks: Dict[Tuple[Agent, ...], Tuple[int, ...]] = {}
        self._component_masks: Dict[Tuple[Agent, ...], Tuple[int, ...]] = {}
        self._component_source = None

    @property
    def universe(self) -> IndexedUniverse:
        """The element <-> bit-position numbering this backend evaluates over."""
        return self._universe

    # -- conversions -----------------------------------------------------------
    def from_frozenset(self, members) -> int:
        return self._universe.mask_of(members)

    def to_frozenset(self, value) -> FrozenSet[Element]:
        return self._universe.to_frozenset(value)

    # -- set algebra -----------------------------------------------------------
    @property
    def full(self) -> int:
        return self._full_mask

    @property
    def empty(self) -> int:
        return 0

    def complement(self, value):
        return self._full_mask ^ value

    def union(self, left, right):
        return left | right

    def intersect(self, left, right):
        return left & right

    def equiv(self, left, right):
        return self._full_mask ^ (left ^ right)

    def is_empty(self, value) -> bool:
        return not value

    def has_agent(self, agent: Agent) -> bool:
        return agent in self._blocks

    # -- epistemic primitives ---------------------------------------------------
    def knowledge(self, agent: Agent, body):
        result = 0
        for block in self._blocks[agent]:
            if block & body == block:
                result |= block
        return result

    def distributed(self, members: Tuple[Agent, ...], body):
        blocks = self._joint_blocks.get(members)
        if blocks is None:
            blocks = self._build_joint_blocks(members)
            self._joint_blocks[members] = blocks
        result = 0
        for block in blocks:
            if block & body == block:
                result |= block
        return result

    def common_reachability(self, members: Tuple[Agent, ...], body):
        components = self._component_masks.get(members)
        if components is None:
            if self._component_source is not None:
                components = tuple(self._component_source(members))
            else:
                components = self._build_components(members)
            self._component_masks[members] = components
        result = 0
        for component in components:
            if component & body == component:
                result |= component
        return result

    # -- precomputation ---------------------------------------------------------
    def _build_joint_blocks(self, members: Tuple[Agent, ...]) -> Tuple[int, ...]:
        """The joint partition of ``members``: per-element intersection of classes.

        The intersection of equivalence relations is again an equivalence relation,
        so the per-element intersections form a partition and ``D_G`` reduces to the
        same blocks-inside-body scan as ``K_i``.
        """
        class_ats = [self._class_at[agent] for agent in members]
        seen: Dict[int, None] = {}
        for position in range(len(self._universe)):
            joint = class_ats[0][position]
            for class_at in class_ats[1:]:
                joint &= class_at[position]
            seen.setdefault(joint, None)
        return tuple(seen)

    def _build_components(self, members: Tuple[Agent, ...]) -> Tuple[int, ...]:
        """G-reachability components as masks, by merging overlapping blocks.

        Components are the connected components of the union of the members'
        partitions; merging each block into the (pairwise-disjoint) accumulated
        components computes exactly that closure.
        """
        components: List[int] = []
        for agent in members:
            for block in self._blocks[agent]:
                merged = block
                kept: List[int] = []
                for component in components:
                    if component & merged:
                        merged |= component
                    else:
                        kept.append(component)
                kept.append(merged)
                components = kept
        return tuple(components)


BACKENDS: Dict[str, type] = {
    FrozensetBackend.name: FrozensetBackend,
    BitsetBackend.name: BitsetBackend,
}

_default_backend: str = FrozensetBackend.name


def resolve_backend_name(name) -> str:
    """Validate ``name`` (``None`` means the process-wide default) into a backend key."""
    if name is None:
        return _default_backend
    if name not in BACKENDS:
        raise EvaluationError(
            f"unknown engine backend {name!r}; expected one of {tuple(sorted(BACKENDS))}"
        )
    return name


def get_default_backend() -> str:
    """The backend used when an evaluator is constructed without an explicit one."""
    return _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous default.

    The test suite uses this (via the ``--engine-backend`` pytest option) to run the
    full suite against either backend without touching each test.
    """
    global _default_backend
    if name not in BACKENDS:
        raise EvaluationError(
            f"unknown engine backend {name!r}; expected one of {tuple(sorted(BACKENDS))}"
        )
    previous = _default_backend
    _default_backend = name
    return previous
