"""repro — an executable reproduction of Halpern & Moses, "Knowledge and Common
Knowledge in a Distributed Environment" (PODC 1984 / JACM 1990).

The library is organised in layers (see DESIGN.md):

* :mod:`repro.logic` — the epistemic language: ``K_i``, ``S_G``, ``E_G``, ``D_G``,
  ``C_G``, the temporal variants ``C^eps`` / ``C^<>`` / ``C^T``, and the fixpoint
  operators of Appendix A.
* :mod:`repro.engine` — the shared formula-evaluation core with pluggable set
  representations (``frozenset`` reference backend and fast ``bitset`` backend).
* :mod:`repro.kripke` — finite S5 Kripke structures, model checking, public
  announcements, bisimulation.
* :mod:`repro.systems` — the runs-and-systems model of Section 5, view-based and
  general epistemic interpretations, and the communication-property conditions of
  Section 8 / Appendix B.
* :mod:`repro.simulation` — deterministic protocols, delivery models, and exhaustive
  run enumeration.
* :mod:`repro.scenarios` — the paper's worked examples (muddy children, coordinated
  attack, R2–D2, the OK protocol, phases, distributed commit).
* :mod:`repro.experiments` — the scenario registry and the batch
  :class:`~repro.experiments.runner.ExperimentRunner` (parameter grids, backend
  sweeps, structure caching).
* :mod:`repro.analysis` — executable forms of the paper's theorems.
* :mod:`repro.cli` — the ``python -m repro`` / ``repro`` command line interface
  (``list`` / ``describe`` / ``run`` / ``sweep``).

Quickstart::

    from repro.logic import C, E, prop
    from repro.kripke import ModelChecker, others_attribute_model, public_announce

    children = ["a", "b", "c"]
    model = others_attribute_model(children)
    m = prop("at_least_one")
    checker = ModelChecker(model)
    checker.holds(E(children, m, 2), (True, True, False))   # False: E^2 m fails
    after = public_announce(model, m)
    ModelChecker(after).holds(C(children, m), (True, True, False))  # True
"""

from repro.errors import (
    EvaluationError,
    FormulaError,
    ModelError,
    ParseError,
    ProtocolError,
    ReproError,
    ScenarioError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "EvaluationError",
    "FormulaError",
    "ModelError",
    "ParseError",
    "ProtocolError",
    "ReproError",
    "ScenarioError",
    "SimulationError",
    "__version__",
]
