"""Sharded parallel execution of parameter sweeps.

A sweep's cartesian grid is an embarrassingly parallel workload: every
``(scenario, parameters, backend)`` point builds and evaluates independently.
This module shards the grid into contiguous chunks and runs the chunks in a
:class:`concurrent.futures.ProcessPoolExecutor`, with three invariants:

* **Only specs cross the boundary.**  A grid point travels as a
  :class:`RunSpec` — scenario *name*, validated parameters flattened through
  :func:`repro.experiments.registry.params_to_key`, the normalised
  ``(label, Formula)`` batch (formulas pickle structurally), the resolved
  backend name and the ``minimize``/``fresh_evaluator`` flags.  Models,
  evaluators and their caches never leave the process that built them; result
  rows come back as plain :class:`~repro.experiments.runner.ExperimentReport`
  data.
* **Workers own their caches.**  Each worker process holds one
  :class:`~repro.experiments.runner.ExperimentRunner` (created by the pool
  initializer) whose LRU instance cache is bounded exactly like the parent's,
  so a huge grid cannot blow memory on either side of the pool.
* **Deterministic merge.**  Chunks are submitted in grid order and their
  results are yielded in submission order, so a parallel sweep's report
  sequence — order, values, ``minimized`` flags — is identical to the serial
  sweep's; only the timing fields differ.  Chunks are *contiguous* slices of
  the grid on purpose: neighbouring points often share a scenario instance
  (same parameters on another backend, or the same model re-parameterised), so
  contiguity preserves the cache locality the serial sweep enjoys.

Workers import scenarios from the registry (``load_builtin_scenarios``), so
every built-in scenario is available regardless of the pool start method;
scenarios registered at runtime in the parent are visible to workers only
under the ``fork`` start method (the Linux default).

The persistent result store (:mod:`repro.experiments.store`) composes with
this design without widening it: the parent partitions the grid against the
store *before* submitting (recorded points never reach a worker), and because
result rows already stream back to the parent as plain data, the parent is
the single process that writes them to the store — workers stay entirely
store-free, and cross-*sweep* concurrency is sqlite WAL's problem, not ours.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ScenarioError
from repro.experiments.registry import load_builtin_scenarios, params_from_key
from repro.logic.syntax import Formula

__all__ = [
    "RunSpec",
    "available_cpus",
    "resolve_jobs",
    "iter_parallel_sweep",
    "run_specs",
]

DEFAULT_CHUNKS_PER_WORKER = 4
"""How many chunks each worker gets on average.

More chunks than workers smooths out uneven grid points (a temporal-heavy
horizon=6 point can take many times longer than horizon=3) at the cost of a
little more submission overhead; four per worker is a conventional balance.
"""


@dataclass(frozen=True)
class RunSpec:
    """One grid point of a sweep, in the picklable shape shipped to workers.

    ``params_key`` is the canonical tuple form of the *validated* parameter
    assignment (:func:`~repro.experiments.registry.params_to_key`);
    ``formulas`` is the normalised ``(label, Formula)`` batch, or ``None`` to
    use the scenario's default formula set (computed per grid point in the
    worker, exactly as the serial path does); ``backend`` is the already
    resolved engine backend name.
    """

    scenario: str
    params_key: Tuple[Tuple[str, object], ...]
    formulas: Optional[Tuple[Tuple[str, Formula], ...]]
    backend: str
    minimize: bool = False
    fresh_evaluator: bool = False


def available_cpus() -> int:
    """How many CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; ``os.sched_getaffinity(0)`` (Linux)
    reports the scheduling mask, which is what matters inside cgroup-limited
    CI containers and under ``taskset`` — spawning one worker per *machine*
    CPU there just makes the permitted cores thrash.  Falls back to
    ``os.cpu_count()`` where affinity is not a concept (macOS, Windows).
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return len(getter(0)) or 1
        except OSError:  # pragma: no cover - affinity query refused
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Turn the user-facing ``jobs`` value into a concrete worker count.

    ``None`` and ``1`` mean serial execution (returns 1), ``0`` means one
    worker per available CPU (:func:`available_cpus` — affinity-aware, so a
    cgroup-limited container gets its quota, not the whole machine), and any
    other positive integer is taken literally.  Negative values raise
    :class:`~repro.errors.ScenarioError`.
    """
    if jobs is None:
        return 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ScenarioError(f"jobs must be an integer >= 0, got {jobs!r}")
    if jobs < 0:
        raise ScenarioError(f"jobs must be >= 0 (0 = one worker per CPU), got {jobs}")
    if jobs == 0:
        return available_cpus()
    return jobs


# One runner per worker process, created by the pool initializer.  Module-level
# because ProcessPoolExecutor tasks can only reach per-process state through
# globals; the parent process never touches it.
_WORKER_RUNNER = None


def _init_worker(max_cached_instances: int) -> None:
    """Pool initializer: build this worker's runner and load the registry."""
    global _WORKER_RUNNER
    from repro.experiments.runner import ExperimentRunner

    load_builtin_scenarios()
    _WORKER_RUNNER = ExperimentRunner(max_cached_instances=max_cached_instances)


def _run_on(runner, specs: Sequence[RunSpec]) -> List[object]:
    """Evaluate ``specs`` in grid order on ``runner`` (the shared spec→report loop)."""
    return [
        runner.run(
            spec.scenario,
            params_from_key(spec.params_key),
            formulas=spec.formulas,
            backend=spec.backend,
            fresh_evaluator=spec.fresh_evaluator,
            minimize=spec.minimize,
        )
        for spec in specs
    ]


def _run_chunk(specs: Sequence[RunSpec]) -> List[object]:
    """Evaluate one contiguous chunk of grid points in this worker."""
    runner = _WORKER_RUNNER
    if runner is None:  # pragma: no cover - initializer always runs first
        raise ScenarioError("parallel sweep worker used before initialization")
    return _run_on(runner, specs)


def _chunked(specs: Sequence[RunSpec], jobs: int) -> List[Sequence[RunSpec]]:
    """Split ``specs`` into contiguous chunks sized for ``jobs`` workers."""
    size = max(1, -(-len(specs) // (jobs * DEFAULT_CHUNKS_PER_WORKER)))
    return [specs[start : start + size] for start in range(0, len(specs), size)]


def run_specs(
    specs: Sequence[RunSpec], max_cached_instances: Optional[int] = None
) -> List[object]:
    """Evaluate ``specs`` serially in this process (the jobs=1 reference path).

    Used by tests and benchmarks that want the exact worker code path —
    spec in, report out — without a pool; a fresh runner is created the same
    way a worker's initializer would, including the instance-cache bound
    (``None`` = the runner's default).
    """
    from repro.experiments.runner import DEFAULT_MAX_CACHED_INSTANCES, ExperimentRunner

    load_builtin_scenarios()
    if max_cached_instances is None:
        max_cached_instances = DEFAULT_MAX_CACHED_INSTANCES
    return _run_on(ExperimentRunner(max_cached_instances=max_cached_instances), specs)


def iter_parallel_sweep(
    specs: Sequence[RunSpec],
    jobs: int,
    max_cached_instances: Optional[int] = None,
) -> Iterator[object]:
    """Evaluate ``specs`` on a ``jobs``-worker pool, yielding in grid order.

    Chunks are submitted up front and their futures are drained in submission
    order, so reports stream out as soon as their prefix of the grid is
    complete — later chunks keep computing in the background while earlier
    results are being consumed.  Worker exceptions propagate to the caller.
    Abandoning the iterator early (``close()`` on the generator, or an error
    in the consumer) cancels every not-yet-started chunk, so teardown only
    waits for the chunks already running.
    """
    from repro.experiments.runner import DEFAULT_MAX_CACHED_INSTANCES

    if max_cached_instances is None:
        max_cached_instances = DEFAULT_MAX_CACHED_INSTANCES
    if jobs < 2:
        yield from run_specs(specs, max_cached_instances=max_cached_instances)
        return
    chunks = _chunked(specs, jobs)
    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)),
        initializer=_init_worker,
        initargs=(max_cached_instances,),
    )
    try:
        futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
        for future in futures:
            yield from future.result()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
