"""Deterministic, env-keyed fault injection for supervision testing.

Halpern–Moses studies protocols under an adversary that may drop any message;
this module is the same adversary aimed at our own execution layer.  A JSON
config in the ``REPRO_CHAOS`` environment variable injects faults into
evaluation at exact, content-addressed grid points — in this process and in
every pool worker (workers inherit the environment) — so the supervision layer
(:mod:`repro.experiments.supervise`) is testable byte-for-byte in CI: the same
config against the same grid always faults the same points in the same way.

Config shape::

    {
      "state_dir": "/tmp/chaos-state",          # required for finite failures
      "faults": [
        {"kind": "raise",   "scenario": "muddy_children", "params": {"n": 4}},
        {"kind": "sigkill", "params": {"n": 5}, "failures": 1},
        {"kind": "hang",    "params": {"n": 6}, "hang_seconds": 60.0}
      ]
    }

Each fault matches a grid point by ``scenario`` (omitted = any), a ``params``
*subset* (every listed name must equal the point's validated value) and
optionally ``backend``.  Kinds:

* ``raise`` — throw :class:`~repro.errors.ChaosInjectedError` (the poison
  point);
* ``sigkill`` — ``SIGKILL`` the current process mid-evaluation (an OOM-killed
  worker; breaks the whole pool);
* ``hang`` — sleep ``hang_seconds`` (default 3600) before continuing (a hung
  worker; only a watchdog timeout gets the point back).

``failures`` bounds how many *attempts* fault before the point heals —
``"failures": 1`` is the transient-then-succeed shape that must recover under
``--retries``.  Attempt counting is cross-process (supervised retries may land
in freshly respawned workers), so finite ``failures`` requires ``state_dir``:
each attempt atomically claims ``<digest>.<n>`` in it, where the digest is the
sha256 content address of the (scenario, params, backend, fault index) tuple —
the same derived-from-the-spec determinism the result store's keys use.
Omitted ``failures`` means the fault always fires.

The hook is a single call, :func:`maybe_inject`, placed in
:meth:`~repro.experiments.runner.ExperimentRunner.run` after the store lookup
and before the model build: store-served rows are never faulted (there is
nothing to fault — no evaluation happens), every evaluated point is.  With
``REPRO_CHAOS`` unset the hook is a dictionary miss and an early return.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ChaosError, ChaosInjectedError

__all__ = ["ENV_VAR", "FAULT_KINDS", "ChaosFault", "ChaosConfig", "maybe_inject"]

ENV_VAR = "REPRO_CHAOS"
"""The environment variable the injection config is read from (JSON text)."""

FAULT_KINDS = ("raise", "sigkill", "hang")

DEFAULT_HANG_SECONDS = 3600.0
"""How long a ``hang`` fault sleeps when the config does not say.

Long enough that any sane watchdog trips first, short enough that an
*unsupervised* run eventually finishes instead of wedging forever.
"""


@dataclass(frozen=True)
class ChaosFault:
    """One injected fault: where it fires, what it does, when it heals."""

    kind: str
    scenario: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()
    backend: Optional[str] = None
    failures: Optional[int] = None
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def matches(
        self, scenario: str, params: Mapping[str, object], backend: str
    ) -> bool:
        """Whether this fault targets the given (validated) grid point."""
        if self.scenario is not None and self.scenario != scenario:
            return False
        if self.backend is not None and self.backend != backend:
            return False
        sentinel = object()
        return all(params.get(name, sentinel) == value for name, value in self.params)


@dataclass(frozen=True)
class ChaosConfig:
    """The parsed ``REPRO_CHAOS`` payload."""

    faults: Tuple[ChaosFault, ...]
    state_dir: Optional[str] = None


def _parse_fault(index: int, entry: object) -> ChaosFault:
    if not isinstance(entry, dict):
        raise ChaosError(
            f"{ENV_VAR} fault #{index} must be an object, got {type(entry).__name__}"
        )
    unknown = set(entry) - {
        "kind",
        "scenario",
        "params",
        "backend",
        "failures",
        "hang_seconds",
    }
    if unknown:
        raise ChaosError(
            f"{ENV_VAR} fault #{index} has unknown field(s): {sorted(unknown)}"
        )
    kind = entry.get("kind")
    if kind not in FAULT_KINDS:
        raise ChaosError(
            f"{ENV_VAR} fault #{index}: kind must be one of {FAULT_KINDS}, "
            f"got {kind!r}"
        )
    params = entry.get("params", {})
    if not isinstance(params, dict):
        raise ChaosError(f"{ENV_VAR} fault #{index}: params must be an object")
    failures = entry.get("failures")
    if failures is not None and (not isinstance(failures, int) or failures < 1):
        raise ChaosError(
            f"{ENV_VAR} fault #{index}: failures must be a positive integer "
            f"(omit it for a permanent fault), got {failures!r}"
        )
    hang_seconds = entry.get("hang_seconds", DEFAULT_HANG_SECONDS)
    if not isinstance(hang_seconds, (int, float)) or hang_seconds <= 0:
        raise ChaosError(
            f"{ENV_VAR} fault #{index}: hang_seconds must be a positive number"
        )
    return ChaosFault(
        kind=kind,
        scenario=entry.get("scenario"),
        params=tuple(sorted(params.items())),
        backend=entry.get("backend"),
        failures=failures,
        hang_seconds=float(hang_seconds),
    )


def parse_config(raw: str) -> ChaosConfig:
    """Parse (and validate) a ``REPRO_CHAOS`` JSON payload."""
    try:
        payload = json.loads(raw)
    except ValueError as error:
        raise ChaosError(f"{ENV_VAR} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "faults" not in payload:
        raise ChaosError(
            f"{ENV_VAR} must be an object with a 'faults' list, got {raw!r}"
        )
    unknown = set(payload) - {"faults", "state_dir"}
    if unknown:
        raise ChaosError(f"{ENV_VAR} has unknown field(s): {sorted(unknown)}")
    faults_entry = payload["faults"]
    if not isinstance(faults_entry, list):
        raise ChaosError(f"{ENV_VAR} 'faults' must be a list")
    faults = tuple(_parse_fault(i, entry) for i, entry in enumerate(faults_entry))
    state_dir = payload.get("state_dir")
    if state_dir is not None and not isinstance(state_dir, str):
        raise ChaosError(f"{ENV_VAR} state_dir must be a path string")
    if state_dir is None and any(f.failures is not None for f in faults):
        raise ChaosError(
            f"{ENV_VAR}: finite 'failures' counts need a 'state_dir' to count "
            "attempts across processes (supervised retries respawn workers)"
        )
    return ChaosConfig(faults=faults, state_dir=state_dir)


# The parsed config, cached against the exact env string that produced it —
# tests rewrite REPRO_CHAOS between cases, and workers parse exactly once.
_CACHE: Tuple[Optional[str], Optional[ChaosConfig]] = (None, None)


def _config() -> Optional[ChaosConfig]:
    global _CACHE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _CACHE[0] != raw:
        _CACHE = (raw, parse_config(raw))
    return _CACHE[1]


def _point_digest(
    scenario: str, params: Mapping[str, object], backend: str, fault_index: int
) -> str:
    canonical = json.dumps(
        [scenario, sorted((str(k), repr(v)) for k, v in params.items()), backend, fault_index],
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _claim_attempt(state_dir: str, digest: str) -> int:
    """Atomically claim the next attempt number for ``digest`` (cross-process)."""
    if not os.path.isdir(state_dir):
        raise ChaosError(
            f"{ENV_VAR} state_dir {state_dir!r} does not exist; create it "
            "before injecting counted faults"
        )
    attempt = 0
    while True:
        try:
            fd = os.open(
                os.path.join(state_dir, f"{digest}.{attempt}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            attempt += 1
            continue
        os.close(fd)
        return attempt


def _fire(fault: ChaosFault, scenario: str, params: Mapping[str, object]) -> None:
    where = f"{scenario} {dict(sorted(params.items()))}"
    if fault.kind == "raise":
        raise ChaosInjectedError(f"chaos: injected failure at {where}")
    if fault.kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
        # Unreachable on POSIX; SIGKILL cannot be caught or delayed.
        raise ChaosInjectedError(f"chaos: sigkill did not terminate at {where}")
    # "hang": sleep, then let the evaluation proceed — under a watchdog the
    # worker is killed long before the sleep ends; without one the point is
    # merely (very) slow, so an unsupervised run still terminates.
    time.sleep(fault.hang_seconds)


def maybe_inject(
    scenario: str,
    params: Mapping[str, object],
    backend: str,
    minimize: bool = False,
) -> None:
    """Fire any configured fault matching this evaluation; no-op when unset.

    Called once per *evaluation attempt* of a grid point (never for
    store-served rows).  ``minimize`` currently does not take part in fault
    matching but keeps the call signature aligned with the request identity.
    """
    config = _config()
    if config is None:
        return
    for index, fault in enumerate(config.faults):
        if not fault.matches(scenario, params, backend):
            continue
        if fault.failures is not None:
            attempt = _claim_attempt(
                config.state_dir,
                _point_digest(scenario, params, backend, index),
            )
            if attempt >= fault.failures:
                continue  # healed: the fault already fired its quota
        _fire(fault, scenario, params)
