"""Scenario registry and batch experiment running (the shared on-ramp).

The paper's worked examples live as hand-written modules in
:mod:`repro.scenarios`; this package turns them into *data*:

* :mod:`repro.experiments.registry` — the ``@register_scenario`` decorator,
  typed :class:`~repro.experiments.registry.Parameter` schemas, and lookup
  helpers.  Every scenario module registers itself on import.
* :mod:`repro.experiments.runner` — the
  :class:`~repro.experiments.runner.ExperimentRunner`, which builds scenarios
  from parameter assignments (cached by parameter key under a bounded LRU),
  evaluates formula batches through the shared engine's ``extensions()`` memo,
  and sweeps parameter grids across engine backends.
* :mod:`repro.experiments.parallel` — sharded sweep execution: the cartesian
  grid is chunked over a process pool (``sweep(jobs=N)`` / ``repro sweep
  --jobs N``), with workers rebuilding instances from the registry by
  parameter key and results merged back in deterministic grid order.
* :mod:`repro.experiments.store` — the persistent content-addressed
  :class:`~repro.experiments.store.ResultStore` (sqlite, WAL): completed rows
  are recorded under their canonical request key and served back on repeat
  requests (``repro sweep --store PATH --resume``), serially and under
  ``--jobs N``.
* :mod:`repro.experiments.supervise` — fault-tolerant sweep execution: a
  :class:`~repro.experiments.supervise.FaultPolicy` (retries with backoff,
  per-point watchdog timeouts, bounded pool restarts, quarantine-or-abort)
  drives the :class:`~repro.experiments.supervise.SweepSupervisor`, which
  bisects failing chunks down to the poison point instead of aborting the
  sweep.
* :mod:`repro.experiments.chaos` — the deterministic fault-injection harness
  (``REPRO_CHAOS``) that makes the supervision layer testable byte-for-byte.

The ``python -m repro`` CLI (:mod:`repro.cli`) and the sweep benchmarks are thin
clients of this package.
"""

from repro.experiments.chaos import ChaosConfig, ChaosFault, maybe_inject
from repro.experiments.parallel import RunSpec, available_cpus, resolve_jobs
from repro.experiments.registry import (
    KIND_KRIPKE,
    KIND_SYSTEM,
    BuiltScenario,
    Parameter,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    load_builtin_scenarios,
    params_from_key,
    params_to_key,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.experiments.runner import (
    DEFAULT_MAX_CACHED_INSTANCES,
    ExperimentReport,
    ExperimentRunner,
    FormulaOutcome,
    ScenarioInstance,
)
from repro.experiments.store import (
    SCHEMA_VERSION,
    SEMANTICS_VERSION,
    ResultStore,
    StoreKey,
)
from repro.experiments.supervise import (
    ON_ERROR_MODES,
    FaultPolicy,
    SweepSupervisor,
)

__all__ = [
    "KIND_KRIPKE",
    "KIND_SYSTEM",
    "BuiltScenario",
    "ChaosConfig",
    "ChaosFault",
    "Parameter",
    "RunSpec",
    "ScenarioSpec",
    "all_scenarios",
    "available_cpus",
    "get_scenario",
    "load_builtin_scenarios",
    "maybe_inject",
    "params_from_key",
    "params_to_key",
    "register_scenario",
    "resolve_jobs",
    "scenario_names",
    "unregister_scenario",
    "DEFAULT_MAX_CACHED_INSTANCES",
    "ExperimentReport",
    "ExperimentRunner",
    "FormulaOutcome",
    "ScenarioInstance",
    "ON_ERROR_MODES",
    "FaultPolicy",
    "SweepSupervisor",
    "SCHEMA_VERSION",
    "SEMANTICS_VERSION",
    "ResultStore",
    "StoreKey",
]
