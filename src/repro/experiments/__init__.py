"""Scenario registry and batch experiment running (the shared on-ramp).

The paper's worked examples live as hand-written modules in
:mod:`repro.scenarios`; this package turns them into *data*:

* :mod:`repro.experiments.registry` — the ``@register_scenario`` decorator,
  typed :class:`~repro.experiments.registry.Parameter` schemas, and lookup
  helpers.  Every scenario module registers itself on import.
* :mod:`repro.experiments.runner` — the
  :class:`~repro.experiments.runner.ExperimentRunner`, which builds scenarios
  from parameter assignments (cached by parameter key under a bounded LRU),
  evaluates formula batches through the shared engine's ``extensions()`` memo,
  and sweeps parameter grids across engine backends.
* :mod:`repro.experiments.parallel` — sharded sweep execution: the cartesian
  grid is chunked over a process pool (``sweep(jobs=N)`` / ``repro sweep
  --jobs N``), with workers rebuilding instances from the registry by
  parameter key and results merged back in deterministic grid order.
* :mod:`repro.experiments.store` — the persistent content-addressed
  :class:`~repro.experiments.store.ResultStore` (sqlite, WAL): completed rows
  are recorded under their canonical request key and served back on repeat
  requests (``repro sweep --store PATH --resume``), serially and under
  ``--jobs N``.

The ``python -m repro`` CLI (:mod:`repro.cli`) and the sweep benchmarks are thin
clients of this package.
"""

from repro.experiments.parallel import RunSpec, resolve_jobs
from repro.experiments.registry import (
    KIND_KRIPKE,
    KIND_SYSTEM,
    BuiltScenario,
    Parameter,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    load_builtin_scenarios,
    params_from_key,
    params_to_key,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.experiments.runner import (
    DEFAULT_MAX_CACHED_INSTANCES,
    ExperimentReport,
    ExperimentRunner,
    FormulaOutcome,
    ScenarioInstance,
)
from repro.experiments.store import (
    SCHEMA_VERSION,
    SEMANTICS_VERSION,
    ResultStore,
    StoreKey,
)

__all__ = [
    "KIND_KRIPKE",
    "KIND_SYSTEM",
    "BuiltScenario",
    "Parameter",
    "RunSpec",
    "ScenarioSpec",
    "all_scenarios",
    "get_scenario",
    "load_builtin_scenarios",
    "params_from_key",
    "params_to_key",
    "register_scenario",
    "resolve_jobs",
    "scenario_names",
    "unregister_scenario",
    "DEFAULT_MAX_CACHED_INSTANCES",
    "ExperimentReport",
    "ExperimentRunner",
    "FormulaOutcome",
    "ScenarioInstance",
    "SCHEMA_VERSION",
    "SEMANTICS_VERSION",
    "ResultStore",
    "StoreKey",
]
