"""Supervised fault-tolerant execution of sharded sweeps.

:mod:`repro.experiments.parallel` treats the worker pool as reliable: the
first exception aborts the whole sweep, a ``SIGKILL``-ed worker breaks the
pool for good, and a hung worker wedges the parent forever.  This module adds
the supervision layer that makes a sweep degrade per-*point* instead of
per-*sweep*, governed by a :class:`FaultPolicy`:

* **Retries with exponential backoff** — a failed grid point is re-attempted
  up to ``retries`` times, waiting ``retry_backoff * 2**(failures-1)`` seconds
  between attempts, so transient faults (OOM kills, flaky builders) heal
  without human help.
* **Watchdog timeouts** — with ``timeout_per_point`` set, every submitted
  chunk gets a deadline of ``timeout_per_point × points`` (plus a fixed grace
  for pool spin-up).  An expired chunk's pool is killed — a hung worker cannot
  be recovered any other way — innocent in-flight chunks are resubmitted, and
  the expired chunk re-enters supervision as a failure.
* **Bounded pool restarts** — a ``BrokenProcessPool`` (worker ``SIGKILL``/OOM)
  or a watchdog kill discards and respawns the pool; more than
  ``max_pool_restarts`` restarts in one sweep raises
  :class:`~repro.errors.SweepFaultError` instead of thrashing forever.
* **Bisection down to the poison point** — a failed multi-point chunk is split
  in half and re-run, recursively, until the failure is isolated to a single
  grid point; the healthy points of the chunk are salvaged (deterministic
  evaluation re-produces their rows bit-for-bit) and only the true poison
  point is retried/quarantined.  Crash- and timeout-bisected halves run
  *cautiously* — one at a time — because the next pool break is how the
  culprit is attributed.
* **Quarantine** (``on_error="skip"``) — a point that exhausts its retry
  budget becomes a structured error row (an
  :class:`~repro.experiments.runner.ExperimentReport` with its ``error`` field
  set, carrying the full attempt history) merged in deterministic grid order
  with the healthy rows; ``on_error="abort"`` raises
  :class:`~repro.errors.SweepFaultError` naming the point instead.

The supervisor never persists anything itself: the runner records healthy
rows in the result store and *skips* quarantined ones, so a later
``--resume`` re-attempts exactly the quarantined points.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ScenarioError, SweepFaultError
from repro.experiments.parallel import RunSpec, _chunked, _init_worker, _run_chunk
from repro.experiments.registry import params_from_key
from repro.experiments.runner import ExperimentReport

__all__ = [
    "ON_ERROR_MODES",
    "FaultPolicy",
    "SweepSupervisor",
    "attempt_record",
    "describe_failure",
    "quarantine_report",
    "sweep_fault",
]

ON_ERROR_MODES = ("abort", "skip")

DEADLINE_GRACE_SECONDS = 1.0
"""Fixed slack added to every chunk deadline.

Covers what ``timeout_per_point`` should not have to: pool spin-up (fork +
worker initializer), submission latency, and scheduler jitter on loaded
machines.  Without it a 1-point chunk whose evaluation fits the budget could
still trip the watchdog on a cold pool.
"""

MAX_BACKOFF_SECONDS = 30.0
"""Cap on one exponential-backoff sleep, so a generous retry budget cannot
turn into multi-minute stalls between attempts."""


@dataclass(frozen=True)
class FaultPolicy:
    """How a sweep responds to failing grid points (see module docs).

    The default policy — abort on first error, no retries, no watchdog — is
    exactly the historical behaviour, and :attr:`supervised` is ``False`` for
    it: the runner then keeps using the plain unsupervised pool path, whose
    failure semantics existing callers rely on.
    """

    on_error: str = "abort"
    retries: int = 0
    retry_backoff: float = 0.05
    timeout_per_point: Optional[float] = None
    max_pool_restarts: int = 8

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ScenarioError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if (
            not isinstance(self.retries, int)
            or isinstance(self.retries, bool)
            or self.retries < 0
        ):
            raise ScenarioError(f"retries must be an integer >= 0, got {self.retries!r}")
        if self.retry_backoff < 0:
            raise ScenarioError(
                f"retry_backoff must be >= 0 seconds, got {self.retry_backoff!r}"
            )
        if self.timeout_per_point is not None and not self.timeout_per_point > 0:
            raise ScenarioError(
                f"timeout_per_point must be > 0 seconds, got {self.timeout_per_point!r}"
            )
        if self.max_pool_restarts < 0:
            raise ScenarioError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts!r}"
            )

    @property
    def supervised(self) -> bool:
        """Whether this policy needs the supervision machinery at all."""
        return (
            self.on_error != "abort"
            or self.retries > 0
            or self.timeout_per_point is not None
        )

    def backoff_seconds(self, failures: int) -> float:
        """The sleep before re-attempting a point that has failed ``failures`` times."""
        if self.retry_backoff <= 0:
            return 0.0
        return min(self.retry_backoff * (2 ** (failures - 1)), MAX_BACKOFF_SECONDS)


def describe_failure(error: BaseException) -> str:
    """One attempt's failure rendered as ``TypeName: message``."""
    text = str(error)
    name = type(error).__name__
    return f"{name}: {text}" if text else name


def attempt_record(attempt: int, kind: str, detail: str) -> Dict[str, object]:
    """One entry of a point's attempt history.

    ``kind`` is ``"error"`` (the evaluation raised), ``"timeout"`` (the
    watchdog expired) or ``"crash"`` (the worker process died).
    """
    return {"attempt": attempt, "kind": kind, "error": detail}


def quarantine_report(
    scenario: str,
    params: Mapping[str, object],
    backend: str,
    minimize: bool,
    attempts: Sequence[Mapping[str, object]],
) -> ExperimentReport:
    """The structured error row a quarantined grid point becomes.

    Shaped like any other :class:`~repro.experiments.runner.ExperimentReport`
    so it merges, streams and renders through the existing pipeline, but with
    no rows, a zero universe, ``kind="unknown"`` (the model was never built)
    and the ``error`` field carrying the final failure plus the whole attempt
    history.
    """
    last = attempts[-1]
    return ExperimentReport(
        scenario=scenario,
        params=dict(params),
        backend=backend,
        kind="unknown",
        universe=0,
        focus=None,
        build_seconds=0.0,
        eval_seconds=0.0,
        rows=[],
        minimized=bool(minimize),
        error={
            "kind": last["kind"],
            "message": last["error"],
            "attempts": [dict(entry) for entry in attempts],
        },
    )


def sweep_fault(
    scenario: str,
    params: Mapping[str, object],
    backend: str,
    attempts: Sequence[Mapping[str, object]],
) -> SweepFaultError:
    """The abort-mode error naming the exact poison point and its history."""
    last = attempts[-1]
    params = dict(sorted(params.items()))
    history = "; ".join(
        f"attempt {entry['attempt']} [{entry['kind']}] {entry['error']}"
        for entry in attempts
    )
    return SweepFaultError(
        f"sweep aborted: grid point {scenario} {params} [{backend}] failed "
        f"after {len(attempts)} attempt(s): {last['error']} (history: {history})",
        scenario=scenario,
        params=params,
        backend=backend,
        attempts=list(attempts),
    )


class _Unit:
    """One schedulable slice of the grid: contiguous specs plus retry state.

    ``attempts`` only accumulates once the unit has been bisected down to a
    single spec — multi-point units are split on failure, never retried, so a
    retry budget is always spent on the exact poison point.  ``ready_at`` is
    the backoff gate: the supervisor will not resubmit the unit before then.
    """

    __slots__ = ("start", "specs", "attempts", "ready_at")

    def __init__(self, start: int, specs: Sequence[RunSpec]):
        self.start = start
        self.specs = tuple(specs)
        self.attempts: List[Dict[str, object]] = []
        self.ready_at = 0.0


class SweepSupervisor:
    """Run a spec list through a supervised worker pool (see module docs).

    The public surface is :meth:`run` — a generator yielding one report per
    spec, healthy or quarantined, in grid order — plus the counters ``retries``
    (re-attempts performed), ``quarantined`` (points given up on) and
    ``pool_restarts`` (pools discarded after a crash or watchdog kill), which
    the runner folds into its own totals.
    """

    def __init__(
        self,
        specs: Sequence[RunSpec],
        jobs: int,
        policy: FaultPolicy,
        max_cached_instances: Optional[int] = None,
    ):
        from repro.experiments.runner import DEFAULT_MAX_CACHED_INSTANCES

        self.specs = list(specs)
        self.jobs = max(1, int(jobs))
        self.policy = policy
        self.max_cached_instances = (
            DEFAULT_MAX_CACHED_INSTANCES
            if max_cached_instances is None
            else max_cached_instances
        )
        self.retries = 0
        self.quarantined = 0
        self.pool_restarts = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle --------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.max_cached_instances,),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Tear the pool down *now*, killing hung or orphaned workers.

        ``shutdown`` alone never returns a hung worker: its process would keep
        sleeping, and the interpreter's atexit hook would then block on joining
        it.  The worker processes are reached through the executor's private
        ``_processes`` map — stable since 3.7 and the only handle there is —
        and killed outright; the pool object is discarded either way.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                if process.is_alive():
                    process.kill()
            except (OSError, ValueError):  # pragma: no cover - already reaped
                pass
        for process in processes:
            try:
                process.join(timeout=5)
            except (OSError, ValueError, AssertionError):  # pragma: no cover
                pass

    def _restart_pool(self, reason: str, suspect: _Unit) -> None:
        """Discard the pool, counting the restart against the policy budget."""
        self._discard_pool()
        self.pool_restarts += 1
        if self.pool_restarts > self.policy.max_pool_restarts:
            spec = suspect.specs[0]
            raise SweepFaultError(
                f"sweep gave up after {self.pool_restarts} pool restarts "
                f"({reason}); first suspect grid point: {spec.scenario} "
                f"{dict(spec.params_key)} [{spec.backend}]",
                scenario=spec.scenario,
                params=params_from_key(spec.params_key),
                backend=spec.backend,
                attempts=list(suspect.attempts),
            )

    # -- the supervision loop --------------------------------------------------
    def run(self) -> Iterator[ExperimentReport]:
        """Yield one report per spec, in grid order, surviving point faults."""
        pending: Deque[_Unit] = deque()
        offset = 0
        for chunk in _chunked(self.specs, self.jobs):
            pending.append(_Unit(offset, chunk))
            offset += len(chunk)
        # Units suspected of crashing or hanging a worker run from this queue,
        # one at a time, so the next pool break identifies its culprit exactly.
        cautious: Deque[_Unit] = deque()
        buffer: Dict[int, ExperimentReport] = {}
        inflight: Dict[object, Tuple[_Unit, Optional[float]]] = {}
        emit = 0
        total = len(self.specs)
        try:
            while emit < total:
                while emit in buffer:
                    yield buffer.pop(emit)
                    emit += 1
                if emit >= total:
                    break
                now = time.monotonic()
                self._submit_ready(pending, cautious, inflight, buffer, now)
                if not inflight:
                    waiting = list(cautious) + list(pending)
                    if not waiting and emit not in buffer:
                        raise ScenarioError(
                            "internal error: sweep supervisor lost track of "
                            f"{total - emit} grid point(s)"
                        )  # pragma: no cover - invariant guard
                    if waiting:
                        # Everything runnable is backing off; sleep to the
                        # earliest retry gate.
                        wake = min(unit.ready_at for unit in waiting)
                        time.sleep(min(max(wake - time.monotonic(), 0.0), 1.0))
                    continue
                timeout = self._wait_timeout(pending, cautious, inflight, now)
                done, _ = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    self._handle_done(future, pending, cautious, inflight, buffer)
                self._expire_deadlines(pending, cautious, inflight, buffer)
        finally:
            self._discard_pool()

    # -- scheduling ------------------------------------------------------------
    @staticmethod
    def _take_ready(queue: Deque[_Unit], now: float) -> Optional[_Unit]:
        for index, unit in enumerate(queue):
            if unit.ready_at <= now:
                del queue[index]
                return unit
        return None

    def _submit_ready(
        self,
        pending: Deque[_Unit],
        cautious: Deque[_Unit],
        inflight: Dict[object, Tuple[_Unit, Optional[float]]],
        buffer: Dict[int, ExperimentReport],
        now: float,
    ) -> None:
        # In cautious mode exactly one unit runs in the whole pool; otherwise
        # keep one chunk per worker in flight so watchdog deadlines measure
        # *running* time, not time spent queued behind other chunks.
        capacity = (1 if cautious else self.jobs) - len(inflight)
        source = cautious if cautious else pending
        while capacity > 0 and source:
            unit = self._take_ready(source, now)
            if unit is None:
                break
            try:
                future = self._ensure_pool().submit(_run_chunk, list(unit.specs))
            except BrokenProcessPool as error:
                # The pool died between submissions (a worker was killed while
                # idle); everything in flight is suspect, this unit included.
                self._recover_broken_pool(
                    unit, error, pending, cautious, inflight, buffer
                )
                return
            deadline = None
            if self.policy.timeout_per_point is not None:
                deadline = (
                    time.monotonic()
                    + self.policy.timeout_per_point * len(unit.specs)
                    + DEADLINE_GRACE_SECONDS
                )
            inflight[future] = (unit, deadline)
            capacity -= 1

    def _wait_timeout(
        self,
        pending: Deque[_Unit],
        cautious: Deque[_Unit],
        inflight: Dict[object, Tuple[_Unit, Optional[float]]],
        now: float,
    ) -> Optional[float]:
        marks = [deadline for _, deadline in inflight.values() if deadline is not None]
        marks += [
            unit.ready_at
            for unit in list(pending) + list(cautious)
            if unit.ready_at > now
        ]
        if not marks:
            return None
        return max(min(marks) - now, 0.0) + 0.01

    # -- completion and failure handling ---------------------------------------
    def _handle_done(
        self,
        future,
        pending: Deque[_Unit],
        cautious: Deque[_Unit],
        inflight: Dict[object, Tuple[_Unit, Optional[float]]],
        buffer: Dict[int, ExperimentReport],
    ) -> None:
        entry = inflight.pop(future, None)
        if entry is None:
            return  # already reassigned during a pool-break recovery
        unit, _ = entry
        try:
            reports = future.result(timeout=0)
        except BrokenProcessPool as error:
            self._recover_broken_pool(unit, error, pending, cautious, inflight, buffer)
        except Exception as error:
            # The worker raised and said so: the pool is healthy, the culprit
            # chunk is known. Bisect or retry in normal parallel mode.
            self._failed(
                unit,
                "error",
                describe_failure(error),
                pending,
                cautious,
                buffer,
                crash=False,
            )
        else:
            for index, report in enumerate(reports):
                buffer[unit.start + index] = report

    def _recover_broken_pool(
        self,
        first_suspect: _Unit,
        error: BaseException,
        pending: Deque[_Unit],
        cautious: Deque[_Unit],
        inflight: Dict[object, Tuple[_Unit, Optional[float]]],
        buffer: Dict[int, ExperimentReport],
    ) -> None:
        """A worker died without a word (SIGKILL, OOM): rebuild and attribute.

        Completed results still held by other futures are harvested first.
        Every unit that was in flight is a *suspect* — the executor cannot say
        whose worker died — so suspects re-run cautiously, one at a time; when
        a pool with a single unit in flight breaks, that unit is the proven
        culprit and takes the failure.
        """
        suspects = [first_suspect]
        for future, (unit, _) in list(inflight.items()):
            harvested = False
            if future.done():
                try:
                    reports = future.result(timeout=0)
                except Exception:
                    pass
                else:
                    for index, report in enumerate(reports):
                        buffer[unit.start + index] = report
                    harvested = True
            if not harvested:
                suspects.append(unit)
        inflight.clear()
        self._restart_pool("a worker process died unexpectedly", suspects[0])
        if len(suspects) == 1:
            # Alone in the pool: proven culprit.
            self._failed(
                suspects[0],
                "crash",
                f"worker process died during this chunk ({describe_failure(error)})",
                pending,
                cautious,
                buffer,
                crash=True,
            )
            return
        for unit in sorted(suspects, key=lambda u: u.start, reverse=True):
            cautious.appendleft(unit)

    def _expire_deadlines(
        self,
        pending: Deque[_Unit],
        cautious: Deque[_Unit],
        inflight: Dict[object, Tuple[_Unit, Optional[float]]],
        buffer: Dict[int, ExperimentReport],
    ) -> None:
        if self.policy.timeout_per_point is None or not inflight:
            return
        now = time.monotonic()
        expired = [
            future
            for future, (_, deadline) in inflight.items()
            if deadline is not None and now >= deadline and not future.done()
        ]
        if not expired:
            return
        # A hung worker can only be stopped by killing the pool, which also
        # discards the innocent chunks' workers: harvest what finished, then
        # resubmit the innocents and route the expired units through failure
        # handling.
        for future in list(inflight):
            if future not in expired and future.done():
                self._handle_done(future, pending, cautious, inflight, buffer)
        expired_units = [inflight[future][0] for future in expired if future in inflight]
        innocents = [
            unit
            for future, (unit, _) in inflight.items()
            if future not in expired
        ]
        if not expired_units:  # pragma: no cover - harvested by a racing break
            return
        inflight.clear()
        self._restart_pool("a worker exceeded the point watchdog", expired_units[0])
        for unit in sorted(innocents, key=lambda u: u.start, reverse=True):
            pending.appendleft(unit)
        budget = self.policy.timeout_per_point
        for unit in expired_units:
            self._failed(
                unit,
                "timeout",
                (
                    f"watchdog expired: {len(unit.specs)} point(s) still "
                    f"running after {budget * len(unit.specs):g}s "
                    f"(timeout-per-point {budget:g}s)"
                ),
                pending,
                cautious,
                buffer,
                crash=True,
            )

    def _failed(
        self,
        unit: _Unit,
        kind: str,
        detail: str,
        pending: Deque[_Unit],
        cautious: Deque[_Unit],
        buffer: Dict[int, ExperimentReport],
        crash: bool,
    ) -> None:
        """Apply the fault policy to a failed unit (bisect / retry / settle)."""
        if len(unit.specs) > 1:
            mid = len(unit.specs) // 2
            left = _Unit(unit.start, unit.specs[:mid])
            right = _Unit(unit.start + mid, unit.specs[mid:])
            # Crash/hang halves stay cautious — running them alone is how the
            # next break or timeout pins the poison point; plain-error halves
            # can rejoin normal parallelism, the worker will name the failure.
            target = cautious if crash else pending
            target.appendleft(right)
            target.appendleft(left)
            return
        spec = unit.specs[0]
        unit.attempts.append(
            attempt_record(len(unit.attempts) + 1, kind, detail)
        )
        failures = len(unit.attempts)
        if failures <= self.policy.retries:
            self.retries += 1
            unit.ready_at = time.monotonic() + self.policy.backoff_seconds(failures)
            (cautious if crash else pending).appendleft(unit)
            return
        if self.policy.on_error == "skip":
            self.quarantined += 1
            buffer[unit.start] = quarantine_report(
                spec.scenario,
                params_from_key(spec.params_key),
                spec.backend,
                spec.minimize,
                unit.attempts,
            )
            return
        raise sweep_fault(
            spec.scenario,
            params_from_key(spec.params_key),
            spec.backend,
            unit.attempts,
        )
