"""Persistent content-addressed storage for experiment results.

A sweep's rows die with the process unless something durable remembers them;
this module is that something.  :class:`ResultStore` is an on-disk sqlite
database mapping the *canonical identity of an evaluation request* to the
:class:`~repro.experiments.runner.ExperimentReport` it produced, so that

* ``repro sweep --store PATH --resume`` skips every grid point whose row is
  already recorded (including rows recorded by a sweep that crashed halfway),
* overlapping grids share work across processes and across days, and
* a future long-lived service can answer repeat queries from cache.

Key anatomy
-----------

A request is identified by :class:`StoreKey` — six components, every one of
which changes the answer and therefore the key:

* ``scenario`` — the registered scenario name;
* ``params`` — the *validated* parameter assignment, flattened through
  :func:`~repro.experiments.registry.params_to_key` (sorted tuple, so spelling
  order never matters);
* ``formulas`` — the evaluated batch as ``(label, pretty(formula))`` pairs.
  The PR 5 pretty-printer is a structural inverse of the parser
  (``parse(pretty(f)) == f``), which makes the text form a faithful canonical
  spelling of the formula; two structurally equal formulas always print
  identically, whatever code built them;
* ``backend`` — the resolved engine backend name (``frozenset``/``bitset``);
  the backends are differentially tested to agree, but the store never
  *assumes* they do;
* ``minimize`` — whether evaluation ran on the bisimulation quotient
  (universe and counts differ there);
* ``semantics_version`` — :data:`SEMANTICS_VERSION`, bumped whenever the
  meaning of a stored row changes (an operator's semantics, a report field's
  interpretation).  Bumping it orphans every existing row.

The canonical JSON rendering of those components is hashed (sha256) into the
content address; the components are *also* stored as columns so ``repro store
stats``/``gc`` can slice the contents without re-deriving anything.

Concurrency
-----------

The database runs in WAL journal mode with a busy timeout: concurrent sweep
processes pointed at the same store read without blocking the single writer,
and writers queue instead of failing.  Within one sweep, only the parent
process touches the store — pool workers ship plain report rows back and the
parent persists each one as it streams in — so ``--jobs N`` adds no writer
concurrency at all.  Across sweeps, whole processes may race: store creation
keys off the database's actual table set (not file existence) and is
idempotent, so two processes opening the same fresh path converge on one
schema instead of misreading each other's half-created file, and racing
``put``\\s of the same key settle last-write-wins on identical content.

Within one process, a single :class:`ResultStore` may now also be shared by
*threads* — the ``repro serve`` evaluation service runs model checks in a
thread pool, with every worker reading and writing the same store.  sqlite
connections are not safely shareable across threads, so the store hands each
thread its own connection (created lazily, with the same WAL/busy-timeout
pragmas) through a :class:`threading.local`; transactions therefore never
interleave across threads, cross-thread write ordering is sqlite's (WAL,
last-write-wins on identical content), and :meth:`close` closes every
connection the store ever opened, whichever thread it is called from.

Quarantined reports (see :mod:`repro.experiments.supervise`) are refused by
:meth:`ResultStore.put`: a failure must never satisfy a future ``--resume``
lookup, so failed grid points are always re-attempted.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.experiments.registry import ParamKey
from repro.experiments.runner import ExperimentReport
from repro.logic.pretty import pretty
from repro.logic.syntax import Formula

__all__ = ["SEMANTICS_VERSION", "SCHEMA_VERSION", "StoreKey", "ResultStore"]

SEMANTICS_VERSION = 1
"""Version of the *meaning* of stored rows.

Bump this whenever an evaluation-semantics change makes previously recorded
reports unreproducible — a fixed operator bug, a changed report field
interpretation, a new normalisation of formula batches.  Stores recorded under
another semantics version refuse to open (see :class:`ResultStore`) until
``repro store gc --stale`` prunes the orphaned rows.
"""

SCHEMA_VERSION = 1
"""Version of the sqlite layout itself (tables/columns/indexes)."""

_GIT_SHA_CACHE: Optional[str] = None


def current_git_sha() -> Optional[str]:
    """The repository HEAD commit, or ``None`` outside a git checkout.

    Recorded in new stores' meta table (and by ``tools/bench_report.py``) so
    stored results stay attributable to the code that produced them.  Cached:
    the answer cannot change within one process run.
    """
    global _GIT_SHA_CACHE
    if _GIT_SHA_CACHE is None:
        import subprocess

        try:
            completed = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=10,
            )
            sha = completed.stdout.strip()
            _GIT_SHA_CACHE = sha if completed.returncode == 0 and sha else ""
        except (OSError, ValueError):
            _GIT_SHA_CACHE = ""
    return _GIT_SHA_CACHE or None


def _utc_now() -> str:
    """A timezone-stable UTC ISO-8601 timestamp (explicit ``Z`` designator)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass(frozen=True)
class StoreKey:
    """The canonical identity of one evaluation request (see module docs).

    Build keys with :meth:`for_request` — it canonicalises the formula batch
    through the pretty-printer and pins the current semantics version — rather
    than by calling the constructor with hand-rolled components.
    """

    scenario: str
    params: ParamKey
    formulas: Tuple[Tuple[str, str], ...]
    backend: str
    minimize: bool
    semantics_version: int = SEMANTICS_VERSION

    @classmethod
    def for_request(
        cls,
        scenario: str,
        params: ParamKey,
        batch: Iterable[Tuple[str, Formula]],
        backend: str,
        minimize: bool,
    ) -> "StoreKey":
        """The key for evaluating ``batch`` on ``scenario`` at ``params``.

        ``params`` must already be the validated
        :func:`~repro.experiments.registry.params_to_key` tuple and ``backend``
        the resolved backend name; ``batch`` is the normalised
        ``(label, Formula)`` sequence, canonicalised here via
        :func:`repro.logic.pretty.pretty`.
        """
        return cls(
            scenario=scenario,
            params=params,
            formulas=tuple((label, pretty(formula)) for label, formula in batch),
            backend=backend,
            minimize=bool(minimize),
        )

    def canonical(self) -> str:
        """The deterministic JSON rendering the content address is hashed from.

        Every component is already in canonical order (``params`` is sorted by
        :func:`params_to_key`; the formula batch keeps the caller's label
        order, which is part of the request), so a plain compact dump is
        stable across processes, platforms and dict-construction order.
        """
        return json.dumps(
            [
                self.scenario,
                [[name, value] for name, value in self.params],
                [[label, text] for label, text in self.formulas],
                self.backend,
                self.minimize,
                self.semantics_version,
            ],
            separators=(",", ":"),
            sort_keys=False,
        )

    @property
    def digest(self) -> str:
        """The sha256 content address of :meth:`canonical`."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()


def _corrupt(path: str, detail: str) -> StoreError:
    return StoreError(
        f"result store {path!r} is not a readable store ({detail}); "
        "delete the file to rebuild it from scratch, or pass --no-store to "
        "run without persistence"
    )


class ResultStore:
    """An on-disk content-addressed map from :class:`StoreKey` to report.

    Parameters
    ----------
    path:
        The sqlite database file.  Created (with meta rows recording the
        schema/semantics versions, creation time and git SHA) when absent.
    check_semantics:
        When true (the default, used by the runner), a store recorded under a
        different :data:`SEMANTICS_VERSION` refuses to open with a
        :class:`~repro.errors.StoreError` naming the remedy.  ``repro store
        stats``/``gc`` open with ``check_semantics=False`` so a stale store
        can still be inspected and pruned.

    The store is a context manager; :meth:`close` is idempotent.  Instances
    are thread-safe: every thread transparently gets its own sqlite
    connection (see the module's Concurrency section), so a long-lived
    service can share one store across its whole worker pool.
    """

    def __init__(self, path: str, check_semantics: bool = True):
        self.path = str(path)
        self._closed = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        try:
            self._adopt(self._connect())
            conn = self.connection
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            # Decide fresh-vs-existing from the table set, never from file
            # existence: ``connect`` materialises the file before the first
            # schema transaction commits, so a concurrent opener racing the
            # creator would otherwise misread a store mid-creation as corrupt.
            # An entirely empty database is safe to (re-)initialise —
            # ``_create`` is idempotent, so racing creators converge.
            if not tables:
                self._create(conn)
            self._check_layout(conn, check_semantics)
        except sqlite3.DatabaseError as error:
            self.close()
            raise _corrupt(self.path, str(error)) from None
        except BaseException:
            self.close()
            raise

    # -- lifecycle -------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        """Open one pragma-configured connection to the store's database.

        ``check_same_thread=False`` does *not* mean the connection is shared
        across threads — each thread keeps its own via :attr:`_local` — it
        means :meth:`close` may close connections that other threads opened,
        which is exactly what a service shutdown needs.
        """
        conn = sqlite3.connect(self.path, timeout=30.0, check_same_thread=False)
        try:
            conn.execute("PRAGMA busy_timeout = 30000")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
        except BaseException:
            conn.close()
            raise
        return conn

    def _adopt(self, conn: sqlite3.Connection) -> None:
        """Register ``conn`` as the calling thread's connection."""
        self._local.conn = conn
        with self._lock:
            self._connections.append(conn)

    def close(self) -> None:
        """Close every connection the store opened, in any thread (idempotent).

        After close, any use of the store — from any thread — raises
        :class:`~repro.errors.StoreError`.
        """
        with self._lock:
            self._closed = True
            connections, self._connections = self._connections, []
        for conn in connections:
            conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The calling thread's live sqlite connection.

        Created on first use per thread (with the store's pragmas) so threads
        never share a connection object — sqlite transactions stay
        thread-local.  Raises :class:`StoreError` once the store is closed.
        """
        if self._closed:
            raise StoreError(f"result store {self.path!r} is closed")
        conn = getattr(self._local, "conn", None)
        if conn is None:
            try:
                conn = self._connect()
            except sqlite3.DatabaseError as error:
                raise _corrupt(self.path, str(error)) from None
            self._adopt(conn)
            # A close() racing this thread's connect may have missed the new
            # connection; re-check so no connection outlives the store.
            if self._closed:
                conn.close()
                raise StoreError(f"result store {self.path!r} is closed")
        return conn

    # -- schema ----------------------------------------------------------------
    def _create(self, conn: sqlite3.Connection) -> None:
        # One explicit transaction around the whole schema.  sqlite3 runs DDL
        # in autocommit mode, so without this the tables would land before the
        # meta rows and a concurrent opener could observe the gap ("schema
        # version unknown").  BEGIN IMMEDIATE also serialises racing creators:
        # the loser waits on the busy timeout, then finds everything IF NOT
        # EXISTS / OR IGNORE already in place.
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " digest TEXT PRIMARY KEY,"
                " scenario TEXT NOT NULL,"
                " params TEXT NOT NULL,"
                " formulas TEXT NOT NULL,"
                " backend TEXT NOT NULL,"
                " minimize INTEGER NOT NULL,"
                " semantics_version INTEGER NOT NULL,"
                " payload TEXT NOT NULL,"
                " created_at TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_results_scenario"
                " ON results (scenario, backend)"
            )
            meta = {
                "schema_version": str(SCHEMA_VERSION),
                "semantics_version": str(SEMANTICS_VERSION),
                "created_at": _utc_now(),
                "git_sha": current_git_sha() or "",
            }
            # OR IGNORE: if a concurrent creator committed meta first, its
            # rows (notably created_at) win and this insert is a no-op.
            conn.executemany(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                sorted(meta.items()),
            )
        except BaseException:
            conn.rollback()
            raise
        else:
            conn.commit()

    def _check_layout(self, conn: sqlite3.Connection, check_semantics: bool) -> None:
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "meta" not in tables or "results" not in tables:
            raise _corrupt(
                self.path, "missing the meta/results tables of a result store"
            )
        meta = self._read_meta(conn)
        schema = meta.get("schema_version")
        if schema != str(SCHEMA_VERSION):
            raise StoreError(
                f"result store {self.path!r} uses store schema version "
                f"{schema or 'unknown'}, but this build expects "
                f"{SCHEMA_VERSION}; delete the file and re-run to rebuild it"
            )
        if check_semantics:
            semantics = meta.get("semantics_version")
            if semantics != str(SEMANTICS_VERSION):
                raise StoreError(
                    f"result store {self.path!r} holds rows recorded under "
                    f"semantics version {semantics or 'unknown'}, but this "
                    f"build evaluates semantics version {SEMANTICS_VERSION}; "
                    f"run 'repro store gc --stale {self.path}' to prune them "
                    "(or delete the file, or pass --no-store)"
                )

    @staticmethod
    def _read_meta(conn: sqlite3.Connection) -> Dict[str, str]:
        return {key: value for key, value in conn.execute("SELECT key, value FROM meta")}

    @property
    def meta(self) -> Dict[str, str]:
        """The store's meta table (versions, creation time, git SHA)."""
        try:
            return self._read_meta(self.connection)
        except sqlite3.DatabaseError as error:
            raise _corrupt(self.path, str(error)) from None

    # -- the content-addressed map ---------------------------------------------
    def get(self, key: StoreKey) -> Optional[ExperimentReport]:
        """The stored report for ``key``, or ``None`` on a miss.

        Served reports are marked ``from_store=True``; every other field —
        including the recorded timing fields — is exactly what the original
        evaluation produced.
        """
        try:
            row = self.connection.execute(
                "SELECT payload FROM results WHERE digest = ?", (key.digest,)
            ).fetchone()
        except sqlite3.DatabaseError as error:
            raise _corrupt(self.path, str(error)) from None
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError as error:
            raise _corrupt(self.path, f"undecodable payload: {error}") from None
        report = ExperimentReport.from_dict(payload)
        report.from_store = True
        return report

    def __contains__(self, key: StoreKey) -> bool:
        try:
            row = self.connection.execute(
                "SELECT 1 FROM results WHERE digest = ?", (key.digest,)
            ).fetchone()
        except sqlite3.DatabaseError as error:
            raise _corrupt(self.path, str(error)) from None
        return row is not None

    def put(self, key: StoreKey, report: ExperimentReport) -> None:
        """Record ``report`` under ``key`` (idempotent; last write wins).

        Each put is its own committed transaction, so a sweep that dies
        mid-grid leaves every already-reported row durably recorded — that is
        what ``--resume`` resumes from.

        Quarantined reports (``report.error`` set) are refused outright: a
        failure must never satisfy a future resume lookup, or the store would
        convert one transient fault into a permanently wrong answer.  The
        supervised sweep paths already skip the put for them, so tripping this
        guard indicates a caller bug.
        """
        if report.error is not None:
            raise StoreError(
                f"refusing to record a quarantined report for scenario "
                f"{report.scenario!r} params {report.params!r} in {self.path}: "
                "failed grid points are re-attempted on resume, never cached"
            )
        payload = dict(report.to_dict())
        payload["from_store"] = False
        try:
            with self.connection as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO results"
                    " (digest, scenario, params, formulas, backend, minimize,"
                    "  semantics_version, payload, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        key.digest,
                        key.scenario,
                        json.dumps([[n, v] for n, v in key.params]),
                        json.dumps([[label, text] for label, text in key.formulas]),
                        key.backend,
                        int(key.minimize),
                        key.semantics_version,
                        json.dumps(payload),
                        _utc_now(),
                    ),
                )
        except sqlite3.DatabaseError as error:
            raise _corrupt(self.path, str(error)) from None

    # -- inspection and pruning ------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """A JSON-ready summary: row counts, per-(scenario, backend) slices, meta."""
        try:
            conn = self.connection
            total = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            by_slice = [
                {
                    "scenario": scenario,
                    "backend": backend,
                    "minimized": bool(minimize),
                    "rows": rows,
                }
                for scenario, backend, minimize, rows in conn.execute(
                    "SELECT scenario, backend, minimize, COUNT(*) FROM results"
                    " GROUP BY scenario, backend, minimize"
                    " ORDER BY scenario, backend, minimize"
                )
            ]
            stale = conn.execute(
                "SELECT COUNT(*) FROM results WHERE semantics_version != ?",
                (SEMANTICS_VERSION,),
            ).fetchone()[0]
        except sqlite3.DatabaseError as error:
            raise _corrupt(self.path, str(error)) from None
        return {
            "path": self.path,
            "file_bytes": os.path.getsize(self.path),
            "rows": total,
            "stale_rows": stale,
            "slices": by_slice,
            "meta": self.meta,
        }

    def gc(
        self,
        scenario: Optional[str] = None,
        backend: Optional[str] = None,
        stale: bool = False,
        all_rows: bool = False,
    ) -> int:
        """Delete rows and reclaim space; returns the number of rows removed.

        Filters compose: ``scenario``/``backend`` restrict to matching rows,
        ``stale`` selects rows recorded under a different semantics version
        (and afterwards stamps the meta table with the current one, so the
        store opens normally again), and ``all_rows=True`` empties the store.
        At least one selector is required — a bare ``gc`` deleting everything
        by accident would be a terrible default.
        """
        if not (stale or all_rows or scenario is not None or backend is not None):
            raise StoreError(
                "store gc needs a selector: --scenario, --backend, --stale or --all"
            )
        clauses: List[str] = []
        values: List[object] = []
        if not all_rows:
            if scenario is not None:
                clauses.append("scenario = ?")
                values.append(scenario)
            if backend is not None:
                clauses.append("backend = ?")
                values.append(backend)
            if stale:
                clauses.append("semantics_version != ?")
                values.append(SEMANTICS_VERSION)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        try:
            with self.connection as conn:
                removed = conn.execute(
                    f"DELETE FROM results{where}", tuple(values)
                ).rowcount
                if stale:
                    conn.execute(
                        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                        ("semantics_version", str(SEMANTICS_VERSION)),
                    )
            self.connection.execute("VACUUM")
        except sqlite3.DatabaseError as error:
            raise _corrupt(self.path, str(error)) from None
        return removed
