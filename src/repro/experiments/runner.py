"""Batch experiment execution over registered scenarios.

:class:`ExperimentRunner` is the bridge between the scenario registry and the
PR 1 evaluation engine: it instantiates a scenario for a parameter assignment
(caching the built model by parameter key, so sweeping formulas or backends over
the same grid point never rebuilds the model), wraps it in the right evaluator
(:class:`~repro.kripke.checker.ModelChecker` for Kripke structures,
:class:`~repro.systems.interpretation.ViewBasedInterpretation` for systems), and
evaluates whole formula batches through the engine's shared-memo
``extensions()`` API.

Typical use::

    runner = ExperimentRunner()
    report = runner.run("muddy_children", {"n": 4, "k": 2})
    for row in report.rows:
        print(row.label, row.count, row.holds_at_focus)

    reports = runner.sweep(
        "muddy_children",
        grid={"n": range(2, 8)},
        backends=("frozenset", "bitset"),
    )
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine import resolve_backend_name
from repro.analysis.diagnostics import render_diagnostics, summarize
from repro.errors import CheckError, ScenarioError
from repro.experiments.chaos import maybe_inject
from repro.experiments.registry import (
    KIND_KRIPKE,
    BuiltScenario,
    ScenarioSpec,
    get_scenario,
    params_to_key,
)
from repro.logic.check import check_formulas
from repro.kripke.bisimulation import quotient
from repro.kripke.checker import ModelChecker
from repro.logic.parser import parse
from repro.logic.syntax import Formula
from repro.systems.interpretation import ViewBasedInterpretation

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.experiments.store import ResultStore, StoreKey
    from repro.experiments.supervise import FaultPolicy

__all__ = [
    "ScenarioInstance",
    "FormulaOutcome",
    "ExperimentReport",
    "ExperimentRunner",
    "DEFAULT_MAX_CACHED_INSTANCES",
]

Evaluator = Union[ModelChecker, ViewBasedInterpretation]
FormulaLike = Union[str, Formula, Tuple[str, Union[str, Formula]]]

DEFAULT_MAX_CACHED_INSTANCES = 128
"""Default bound on the runner's built-instance cache.

Deliberately generous — every sweep the paper's scenarios motivate fits well
under it, so the common case keeps every grid point's model and evaluators
warm — while still guaranteeing that a huge cartesian grid (thousands of
points) cannot grow the process without bound: once the cache is full, the
least recently used instance (with its evaluators and their memos) is evicted.
"""


class ScenarioInstance:
    """A scenario built for one validated parameter assignment.

    Owns the built model and hands out evaluators per engine backend.  Evaluators
    are cached: asking twice for the ``bitset`` evaluator of the same instance
    returns the same object, so its engine memo keeps accumulating across queries.
    """

    def __init__(self, spec: ScenarioSpec, params: Dict[str, object], built: BuiltScenario, build_seconds: float):
        self.spec = spec
        self.params = params
        self.built = built
        self.build_seconds = build_seconds
        self.kind = ScenarioSpec.kind_of(built.model)
        self._evaluators: Dict[Tuple[str, bool], Evaluator] = {}
        self._minimized: Optional[Tuple[object, Dict[object, object]]] = None
        self._universe_size: Optional[int] = None
        # Guards the evaluator/quotient caches above; reentrant because
        # ``evaluator`` -> ``make_evaluator`` -> ``minimized`` nest.
        self._lock = threading.RLock()
        self.eval_lock = threading.Lock()
        """Serialises formula evaluation on this instance's model.

        Evaluators and the built model share mutable caches (engine memos,
        structure-level partition masks) that were written single-threaded;
        holding this lock around ``extensions()`` keeps concurrent
        :meth:`ExperimentRunner.run` calls on the *same* grid point safe while
        different grid points still evaluate in parallel.
        """

    @property
    def model(self):
        """The built model (Kripke structure or system of runs)."""
        return self.built.model

    @property
    def focus(self) -> Optional[object]:
        """The designated world/point, when the scenario singles one out."""
        return self.built.focus

    @property
    def universe_size(self) -> int:
        """How many worlds (Kripke) or points (system) the model has.

        Computed once and cached on the instance — ``run()`` reads it per row
        batch, and re-enumerating a large system's points on every access was
        pure waste.
        """
        if self._universe_size is None:
            if self.kind == KIND_KRIPKE:
                self._universe_size = len(self.model.worlds)
            else:
                self._universe_size = self.model.point_count()
        return self._universe_size

    def minimized(self) -> Tuple[object, Dict[object, object]]:
        """The bisimulation quotient of the built model plus the world -> class map.

        System scenarios are first exported to a Kripke structure over
        ``(run name, time)`` worlds (:meth:`ViewBasedInterpretation.to_kripke`),
        so the quotient supports the static fragment of the language only — the
        temporal operators need the run/time shape the quotient no longer
        carries, and the checker rejects them.  The quotient (and the mapping
        used to translate the focus world) is computed once per instance and
        cached, so sweeping formulas or backends over a minimised grid point
        pays for partition refinement exactly once.
        """
        with self._lock:
            if self._minimized is None:
                model = self.model
                if self.kind != KIND_KRIPKE:
                    model = ViewBasedInterpretation(model).to_kripke()
                self._minimized = quotient(model)
            return self._minimized

    def focus_class(self, focus: object) -> Optional[object]:
        """Translate a focus world/point into its bisimulation class.

        System focuses are :class:`~repro.systems.runs.Point` objects, while the
        exported structure's worlds are ``(run name, time)`` labels; this is the
        one place that mapping is applied.
        """
        if focus is None:
            return None
        _, class_of = self.minimized()
        if self.kind != KIND_KRIPKE:
            focus = (focus.run.name, focus.time)
        return class_of[focus]

    def make_evaluator(
        self, backend: Optional[str] = None, minimize: bool = False
    ) -> Evaluator:
        """Construct a fresh evaluator on ``backend`` (no instance-level caching).

        The sweep benchmarks use this to time evaluation from a cold formula
        memo; everything else should prefer :meth:`evaluator`.  With
        ``minimize=True`` the evaluator checks the bisimulation quotient of the
        model instead of the model itself (system scenarios quotient their
        Kripke export, see :meth:`minimized`).
        """
        if minimize:
            return ModelChecker(self.minimized()[0], backend=backend)
        if self.kind == KIND_KRIPKE:
            return ModelChecker(self.model, backend=backend)
        return ViewBasedInterpretation(self.model, backend=backend)

    def evaluator(
        self, backend: Optional[str] = None, minimize: bool = False
    ) -> Evaluator:
        """The cached evaluator for ``backend`` (resolved via the engine default)."""
        key = (resolve_backend_name(backend), bool(minimize))
        with self._lock:
            evaluator = self._evaluators.get(key)
            if evaluator is None:
                evaluator = self.make_evaluator(key[0], minimize=minimize)
                self._evaluators[key] = evaluator
            return evaluator

    def default_formulas(self) -> Dict[str, Formula]:
        """The scenario's default formula set for this parameter assignment."""
        return self.spec.default_formulas(self.params)


@dataclass(frozen=True)
class FormulaOutcome:
    """The evaluation result of one formula on one built scenario."""

    label: str
    formula: str
    count: int
    """How many worlds/points satisfy the formula."""
    universe: int
    """The total number of worlds/points in the model."""
    satisfiable: bool
    valid: bool
    holds_at_focus: Optional[bool]
    """Truth at the designated world/point; ``None`` when the scenario has no focus."""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering of the outcome."""
        return {
            "label": self.label,
            "formula": self.formula,
            "count": self.count,
            "universe": self.universe,
            "satisfiable": self.satisfiable,
            "valid": self.valid,
            "holds_at_focus": self.holds_at_focus,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FormulaOutcome":
        """Rebuild an outcome from its :meth:`to_dict` rendering."""
        return cls(
            label=data["label"],
            formula=data["formula"],
            count=data["count"],
            universe=data["universe"],
            satisfiable=data["satisfiable"],
            valid=data["valid"],
            holds_at_focus=data["holds_at_focus"],
        )


@dataclass
class ExperimentReport:
    """Everything one ``run`` produced: scenario, parameters, backend, outcomes."""

    scenario: str
    params: Dict[str, object]
    backend: str
    kind: str
    universe: int
    focus: Optional[str]
    build_seconds: float
    eval_seconds: float
    rows: List[FormulaOutcome] = field(default_factory=list)
    minimized: bool = False
    """Whether evaluation ran on the bisimulation quotient of the built model
    (``universe`` and the per-row counts then refer to the quotient's classes)."""
    from_store: bool = False
    """Whether this report was served from a persistent
    :class:`~repro.experiments.store.ResultStore` instead of being evaluated;
    served reports keep the *original* evaluation's timing fields."""
    error: Optional[Dict[str, object]] = None
    """``None`` for a healthy report.  A *quarantined* grid point (a supervised
    sweep under ``on_error="skip"`` gave up on it) instead carries
    ``{"kind", "message", "attempts"}`` — the final failure kind (``error`` /
    ``timeout`` / ``crash``), its message, and the full per-attempt history.
    Reports with an error are never persisted to a result store, so a resumed
    sweep re-attempts exactly these points."""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering of the report.

        The ``error`` field appears only on quarantined reports, so healthy
        renderings — including everything the result store persists — are
        byte-identical to what unsupervised sweeps always produced.
        """
        data = {
            "scenario": self.scenario,
            "params": dict(self.params),
            "backend": self.backend,
            "kind": self.kind,
            "universe": self.universe,
            "focus": self.focus,
            "build_seconds": self.build_seconds,
            "eval_seconds": self.eval_seconds,
            "minimized": self.minimized,
            "from_store": self.from_store,
            "rows": [row.to_dict() for row in self.rows],
        }
        if self.error is not None:
            data["error"] = dict(self.error)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentReport":
        """Rebuild a report from its :meth:`to_dict` rendering.

        The exact inverse of :meth:`to_dict` — this is how the persistent
        result store rehydrates recorded rows.
        """
        return cls(
            scenario=data["scenario"],
            params=dict(data["params"]),
            backend=data["backend"],
            kind=data["kind"],
            universe=data["universe"],
            focus=data["focus"],
            build_seconds=data["build_seconds"],
            eval_seconds=data["eval_seconds"],
            rows=[FormulaOutcome.from_dict(row) for row in data["rows"]],
            minimized=data.get("minimized", False),
            from_store=data.get("from_store", False),
            error=data.get("error"),
        )


class ExperimentRunner:
    """Run scenarios and formula batches by name, with model caching.

    Parameters
    ----------
    backend:
        Default engine backend for every evaluation (``None`` follows the
        process-wide default, see :func:`repro.engine.get_default_backend`).

    max_cached_instances:
        Upper bound on the built-instance cache (default
        :data:`DEFAULT_MAX_CACHED_INSTANCES`).  The cache is LRU: when a sweep
        visits more distinct grid points than the bound, the least recently
        used instances — models, evaluators and their formula memos — are
        dropped so arbitrarily large grids run in bounded memory.

    store:
        An optional persistent :class:`~repro.experiments.store.ResultStore`.
        When attached, every evaluated report is recorded under its canonical
        :class:`~repro.experiments.store.StoreKey`, and — with ``resume`` —
        requests whose key is already recorded are served from the store
        without building or evaluating anything.  Parallel sweeps stay
        single-writer: pool workers never touch the store; the parent records
        each worker row as it streams back.

    resume:
        Whether an attached store is also *read* (default ``True``).  With
        ``resume=False`` the store is write-only: everything evaluates fresh
        and overwrites the recorded rows, which is the CLI's plain ``--store``
        (no ``--resume``) behaviour.

    Built models are cached per ``(scenario, parameter-assignment)`` key: a sweep
    that revisits a grid point — or runs the same grid on a second backend —
    reuses the model (and, through
    :meth:`ScenarioInstance.evaluator`, the evaluator's accumulated formula
    memo) instead of rebuilding.

    The runner also counts its work: ``eval_count`` is the number of formula
    batches actually evaluated (in this process or a pool worker) and
    ``store_hits`` the number of reports served from the store instead — a
    fully resumed sweep is exactly ``eval_count == 0``.  Supervised sweeps add
    ``retries`` (re-attempts of failed grid points) and ``quarantined``
    (points given up on under ``on_error="skip"``); both stay 0 on the
    unsupervised paths.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        max_cached_instances: int = DEFAULT_MAX_CACHED_INSTANCES,
        store: Optional["ResultStore"] = None,
        resume: bool = True,
    ):
        if max_cached_instances < 1:
            raise ScenarioError(
                f"max_cached_instances must be >= 1, got {max_cached_instances!r}"
            )
        self.backend = backend
        self.max_cached_instances = max_cached_instances
        self.store = store
        self.resume = resume
        self.eval_count = 0
        self.store_hits = 0
        self.retries = 0
        self.quarantined = 0
        self._instances: "OrderedDict[Tuple[str, Tuple[Tuple[str, object], ...]], ScenarioInstance]" = (
            OrderedDict()
        )
        # Guards the instance LRU and the work counters.  The runner is
        # shared across threads by the ``repro serve`` evaluation service;
        # without the lock, concurrent ``run()`` calls corrupt the
        # OrderedDict (lost evictions, "mutated during iteration").
        self._lock = threading.RLock()

    # -- construction ----------------------------------------------------------
    def instance(
        self, scenario: str, params: Optional[Mapping[str, object]] = None
    ) -> ScenarioInstance:
        """The (cached) built instance of ``scenario`` for ``params``.

        Cache hits refresh the entry's recency; misses build the scenario and
        may evict the least recently used instance to stay under
        ``max_cached_instances``.  Thread-safe: cache bookkeeping happens
        under the runner's lock, while the (possibly slow) model build runs
        outside it so distinct grid points still build concurrently; two
        threads racing on the *same* key may both build, and the first insert
        wins so every caller shares one instance.
        """
        spec = get_scenario(scenario)
        validated = spec.validate_params(params)
        key = (spec.name, params_to_key(validated))
        with self._lock:
            cached = self._instances.get(key)
            if cached is not None:
                self._instances.move_to_end(key)
                return cached
        start = time.perf_counter()
        built = spec.build(validated)
        elapsed = time.perf_counter() - start
        instance = ScenarioInstance(spec, validated, built, elapsed)
        with self._lock:
            existing = self._instances.get(key)
            if existing is not None:
                # Lost the build race; adopt the winner (its evaluators may
                # already be warm) and drop our duplicate.
                self._instances.move_to_end(key)
                return existing
            self._instances[key] = instance
            while len(self._instances) > self.max_cached_instances:
                self._instances.popitem(last=False)
        return instance

    def clear_cache(self) -> None:
        """Drop every cached instance (and with them the cached evaluators)."""
        with self._lock:
            self._instances.clear()

    @property
    def cached_instances(self) -> int:
        """How many built scenario instances are currently cached."""
        with self._lock:
            return len(self._instances)

    # -- formula handling ------------------------------------------------------
    @staticmethod
    def _formula_batch(
        spec: ScenarioSpec,
        params: Mapping[str, object],
        formulas: Optional[Iterable[FormulaLike]],
    ) -> List[Tuple[str, Formula]]:
        """Normalise the caller's formula list into ``(label, Formula)`` pairs.

        Accepts formula strings (parsed with :func:`repro.logic.parser.parse`),
        built :class:`~repro.logic.syntax.Formula` objects, or ``(label, either)``
        pairs; ``None`` selects the scenario's default formula set for the
        validated ``params``.  Only the spec and the parameters are needed —
        never the built model — which is what lets the result store answer a
        request without building anything.
        """
        if formulas is None:
            defaults = spec.default_formulas(params)
            if not defaults:
                raise ScenarioError(
                    f"scenario {spec.name!r} has no default formulas; "
                    "pass an explicit formula list"
                )
            return list(defaults.items())
        return ExperimentRunner.normalise_formulas(formulas)

    @staticmethod
    def normalise_formulas(
        formulas: Iterable[FormulaLike],
    ) -> List[Tuple[str, Formula]]:
        """Normalise an explicit formula list into ``(label, Formula)`` pairs.

        This is the explicit-list half of :meth:`_formula_batch` — it needs no
        scenario at all, which is why the parallel sweep can normalise once in
        the parent process and ship the parsed batch to every worker.
        """
        batch: List[Tuple[str, Formula]] = []
        for entry in formulas:
            if isinstance(entry, tuple):
                label, body = entry
            else:
                label, body = (str(entry), entry)
            formula = parse(body) if isinstance(body, str) else body
            if not isinstance(formula, Formula):
                raise ScenarioError(
                    f"expected a formula or formula text, got {type(body).__name__}"
                )
            batch.append((str(label), formula))
        return batch

    # -- store plumbing --------------------------------------------------------
    def _store_key(
        self,
        scenario: str,
        validated: Mapping[str, object],
        batch: Sequence[Tuple[str, Formula]],
        backend: Optional[str],
        minimize: bool,
    ) -> Optional["StoreKey"]:
        """The canonical store key for one request, or ``None`` without a store.

        Also ``None`` when a formula in the batch has no canonical text form
        (the pretty-printer refuses names that would not round-trip) — such a
        request simply bypasses persistence rather than failing.
        """
        if self.store is None:
            return None
        from repro.errors import FormulaError
        from repro.experiments.store import StoreKey

        try:
            return StoreKey.for_request(
                scenario,
                params_to_key(validated),
                batch,
                resolve_backend_name(backend),
                minimize,
            )
        except FormulaError:
            return None

    # -- pre-flight ------------------------------------------------------------
    @staticmethod
    def preflight_batch(
        spec: ScenarioSpec,
        validated: Mapping[str, object],
        batch: Sequence[Tuple[str, Formula]],
        minimize: bool = False,
    ) -> None:
        """Statically check a normalised batch before any model is built.

        Runs :func:`repro.logic.check.check_formulas` against the scenario's
        registered :class:`~repro.logic.check.ScenarioSignature` (when one
        exists — the structural checks run regardless) and raises
        :class:`~repro.errors.CheckError` listing every error-severity
        diagnostic.  ``minimize=True`` evaluates on the bisimulation quotient,
        which only supports the static fragment, so the signature's capability
        is narrowed to Kripke for the check.  Warnings never block a run; the
        CLI's ``repro check --strict`` is the surface that promotes them.
        """
        signature = spec.signature_for(validated)
        if signature is not None and minimize and signature.kind != KIND_KRIPKE:
            from dataclasses import replace

            signature = replace(signature, kind=KIND_KRIPKE)
        diagnostics = check_formulas(batch, signature)
        errors = [d for d in diagnostics if d.is_error]
        if errors:
            rendered = "\n  ".join(render_diagnostics(errors))
            raise CheckError(
                f"scenario {spec.name!r}: formula batch rejected by pre-flight "
                f"check ({summarize(diagnostics)}):\n  {rendered}",
                diagnostics=diagnostics,
            )

    def _preflight_sweep(
        self,
        spec: ScenarioSpec,
        assignments: Sequence[Tuple[Optional[str], Dict[str, object]]],
        formulas: Optional[Iterable[FormulaLike]],
        minimize: bool,
    ) -> None:
        """Pre-flight every distinct grid point of a sweep before dispatch.

        Runs in the parent process *before* any worker pool spins up or any
        instance is built, so an invalid batch aborts the sweep with a usage
        error instead of a mid-sweep failure on grid point 40,000.  Distinct
        parameter assignments are checked once each (backends do not affect
        the static checks); default formula suites are resolved per point,
        since they may depend on the parameters.
        """
        explicit = (
            None if formulas is None else self.normalise_formulas(formulas)
        )
        seen = set()
        for _backend, params in assignments:
            validated = spec.validate_params(params)
            key = params_to_key(validated)
            if key in seen:
                continue
            seen.add(key)
            batch = (
                explicit
                if explicit is not None
                else self._formula_batch(spec, validated, None)
            )
            self.preflight_batch(spec, validated, batch, minimize)

    # -- execution -------------------------------------------------------------
    def run(
        self,
        scenario: str,
        params: Optional[Mapping[str, object]] = None,
        formulas: Optional[Iterable[FormulaLike]] = None,
        backend: Optional[str] = None,
        fresh_evaluator: bool = False,
        minimize: bool = False,
    ) -> ExperimentReport:
        """Evaluate a formula batch on one scenario instance.

        ``formulas`` defaults to the scenario's registered formula set.  The
        whole batch goes through the engine's ``extensions()`` API, so formulas
        sharing subterms (e.g. a ``E^k`` hierarchy) share one memo.  With
        ``fresh_evaluator`` the evaluation starts from a cold memo (used by the
        benchmarks); the built model is still reused from the cache.

        With ``minimize=True`` evaluation runs on the bisimulation quotient:
        truth at the focus world, satisfiability and validity are preserved by
        bisimulation invariance, while ``universe`` and the per-row counts refer
        to the quotient's classes.  System scenarios are exported to a Kripke
        structure over their points first (static-fragment formulas only — the
        temporal operators need run/time structure and are rejected by the
        checker on the quotient).

        With a :class:`~repro.experiments.store.ResultStore` attached (and
        ``resume`` on), a request whose canonical key is already recorded is
        served from the store without building or evaluating anything; fresh
        evaluations are recorded before the report is returned.
        """
        spec = get_scenario(scenario)
        validated = spec.validate_params(params)
        batch = self._formula_batch(spec, validated, formulas)
        # Fail fast on a semantically invalid batch: nothing is built, no
        # store row is touched and no evaluation starts.
        self.preflight_batch(spec, validated, batch, minimize)
        chosen_backend = backend if backend is not None else self.backend
        key = self._store_key(spec.name, validated, batch, chosen_backend, minimize)
        if key is not None and self.resume:
            cached = self.store.get(key)
            if cached is not None:
                with self._lock:
                    self.store_hits += 1
                return cached

        # The chaos hook sits between the store lookup and the model build:
        # store-served rows are never faulted (nothing is evaluated), every
        # actual evaluation attempt — parent or pool worker — is. No-op
        # unless REPRO_CHAOS is set.
        maybe_inject(
            spec.name, validated, resolve_backend_name(chosen_backend), minimize
        )

        instance = self.instance(scenario, validated)
        # Evaluation (and fresh-evaluator construction, which may compute the
        # shared bisimulation quotient) is serialised per instance: evaluators
        # and the built model carry mutable caches written single-threaded.
        with instance.eval_lock:
            evaluator = (
                instance.make_evaluator(chosen_backend, minimize=minimize)
                if fresh_evaluator
                else instance.evaluator(chosen_backend, minimize=minimize)
            )

            start = time.perf_counter()
            extensions = evaluator.extensions([formula for _, formula in batch])
            eval_seconds = time.perf_counter() - start
        with self._lock:
            self.eval_count += 1

        focus = instance.focus
        if minimize:
            reduced, _ = instance.minimized()
            universe = len(reduced.worlds)
            focus = instance.focus_class(focus)
        else:
            universe = instance.universe_size
        rows = [
            FormulaOutcome(
                label=label,
                formula=str(formula),
                count=len(extension),
                universe=universe,
                satisfiable=bool(extension),
                valid=len(extension) == universe,
                holds_at_focus=None if focus is None else focus in extension,
            )
            for (label, formula), extension in zip(batch, extensions)
        ]
        report = ExperimentReport(
            scenario=instance.spec.name,
            params=dict(instance.params),
            backend=evaluator.backend,
            kind=instance.kind,
            universe=universe,
            focus=None if focus is None else repr(focus),
            build_seconds=instance.build_seconds,
            eval_seconds=eval_seconds,
            rows=rows,
            minimized=bool(minimize),
        )
        if key is not None:
            self.store.put(key, report)
        return report

    def iter_sweep(
        self,
        scenario: str,
        grid: Mapping[str, Iterable[object]],
        formulas: Optional[Iterable[FormulaLike]] = None,
        backends: Optional[Sequence[Optional[str]]] = None,
        fresh_evaluators: bool = False,
        minimize: bool = False,
        jobs: Optional[int] = None,
        policy: Optional["FaultPolicy"] = None,
    ) -> Iterator[ExperimentReport]:
        """Stream a sweep's reports in deterministic grid order.

        Identical to :meth:`sweep` but yields each
        :class:`ExperimentReport` as soon as it (and every report before it in
        grid order) is finished, instead of accumulating the whole list — this
        is what lets ``repro sweep --json`` print rows while later grid points
        are still being evaluated.  With ``jobs > 1`` the grid is sharded
        across a process pool (see :mod:`repro.experiments.parallel`); the
        yielded order — and every report row — is the same either way.

        ``policy`` (a :class:`~repro.experiments.supervise.FaultPolicy`)
        selects supervised execution: failing grid points are retried with
        backoff, watchdogged, and — under ``on_error="skip"`` — quarantined as
        structured error rows instead of aborting the sweep (see
        :mod:`repro.experiments.supervise`).  ``None``, or a policy whose
        ``supervised`` property is false, keeps the historical fail-fast
        paths and their exact exception behaviour.
        """
        spec = get_scenario(scenario)
        names = list(grid)
        for name in names:
            spec.parameter(name)  # fail fast on unknown grid axes
        value_lists = [list(grid[name]) for name in names]
        for name, values in zip(names, value_lists):
            if not values:
                raise ScenarioError(f"grid axis {name!r} has no values")
        chosen_backends: Sequence[Optional[str]] = (
            backends if backends else (self.backend,)
        )
        assignments: List[Tuple[Optional[str], Dict[str, object]]] = [
            (backend, dict(zip(names, combination)))
            for backend in chosen_backends
            for combination in itertools.product(*value_lists)
        ]

        from repro.experiments.parallel import resolve_jobs

        worker_count = resolve_jobs(jobs)
        supervised = policy is not None and policy.supervised
        if not (supervised and policy.on_error == "skip"):
            # Whole-sweep pre-flight: an invalid batch aborts before any
            # instance build or pool spin-up.  Supervised skip-mode sweeps
            # keep their per-point quarantine semantics instead (a batch may
            # be invalid for only some grid points, e.g. an agent that exists
            # for n>=4 but not n=2), relying on the per-point pre-flight in
            # :meth:`run`.
            self._preflight_sweep(spec, assignments, formulas, minimize)
        if supervised:
            # A watchdog needs a killable worker even at jobs=1: escalate to a
            # one-worker pool so a hung point can actually be reclaimed.
            if worker_count > 1 or policy.timeout_per_point is not None:
                yield from self._iter_parallel_supervised(
                    spec,
                    assignments,
                    formulas=formulas,
                    fresh_evaluators=fresh_evaluators,
                    minimize=minimize,
                    jobs=worker_count,
                    policy=policy,
                )
            else:
                yield from self._iter_serial_supervised(
                    spec,
                    assignments,
                    formulas=formulas,
                    fresh_evaluators=fresh_evaluators,
                    minimize=minimize,
                    policy=policy,
                )
            return
        if worker_count > 1 and len(assignments) > 1:
            yield from self._iter_parallel(
                spec,
                assignments,
                formulas=formulas,
                fresh_evaluators=fresh_evaluators,
                minimize=minimize,
                jobs=worker_count,
            )
            return
        for backend, params in assignments:
            yield self.run(
                scenario,
                params,
                formulas=formulas,
                backend=backend,
                fresh_evaluator=fresh_evaluators,
                minimize=minimize,
            )

    def _iter_parallel(
        self,
        spec: ScenarioSpec,
        assignments: Sequence[Tuple[Optional[str], Dict[str, object]]],
        formulas: Optional[Iterable[FormulaLike]],
        fresh_evaluators: bool,
        minimize: bool,
        jobs: int,
    ) -> Iterator[ExperimentReport]:
        """Shard ``assignments`` over the process pool, preserving grid order.

        With a store attached (and ``resume`` on) the grid is partitioned
        *before* the pool spins up: recorded grid points are served from the
        store in the parent, only the missing points travel to workers, and
        each worker row is persisted by the parent the moment it streams back
        — workers never open the store, so ``--jobs N`` keeps a single
        writer.  A fully recorded grid never starts a pool at all.
        """
        from repro.experiments.parallel import RunSpec, iter_parallel_sweep

        batch = (
            None
            if formulas is None
            else tuple(self.normalise_formulas(formulas))
        )
        keyed_specs: List[Tuple[Optional["StoreKey"], RunSpec]] = []
        for backend, params in assignments:
            validated = spec.validate_params(params)
            # Resolve now so every worker evaluates on the exact backend the
            # serial path would have picked, whatever the workers' own
            # process-wide default is.
            resolved = resolve_backend_name(
                backend if backend is not None else self.backend
            )
            key = (
                None
                if self.store is None
                else self._store_key(
                    spec.name,
                    validated,
                    batch
                    if batch is not None
                    else self._formula_batch(spec, validated, None),
                    resolved,
                    minimize,
                )
            )
            keyed_specs.append(
                (
                    key,
                    RunSpec(
                        scenario=spec.name,
                        params_key=params_to_key(validated),
                        formulas=batch,
                        backend=resolved,
                        minimize=minimize,
                        fresh_evaluator=fresh_evaluators,
                    ),
                )
            )

        cached: Dict[int, ExperimentReport] = {}
        if self.store is not None and self.resume:
            for index, (key, _) in enumerate(keyed_specs):
                if key is None:
                    continue
                report = self.store.get(key)
                if report is not None:
                    cached[index] = report
                    with self._lock:
                        self.store_hits += 1
        missing = [
            (index, run_spec)
            for index, (_, run_spec) in enumerate(keyed_specs)
            if index not in cached
        ]
        if not missing:
            for index in range(len(keyed_specs)):
                yield cached[index]
            return

        stream = iter_parallel_sweep(
            [run_spec for _, run_spec in missing],
            jobs=jobs,
            max_cached_instances=self.max_cached_instances,
        )
        try:
            # ``missing`` indices are increasing and the stream yields in the
            # same order, so one linear merge restores full grid order.
            for index in range(len(keyed_specs)):
                if index in cached:
                    yield cached[index]
                    continue
                report = next(stream)
                with self._lock:
                    self.eval_count += 1
                key = keyed_specs[index][0]
                if key is not None:
                    self.store.put(key, report)
                yield report
        finally:
            stream.close()

    # -- supervised execution ----------------------------------------------------
    def _settle_failed_point(
        self,
        scenario: str,
        params: Mapping[str, object],
        backend: str,
        minimize: bool,
        attempts: Sequence[Dict[str, object]],
        policy: "FaultPolicy",
    ) -> ExperimentReport:
        """Quarantine a point that exhausted its budget, or abort the sweep."""
        from repro.experiments.supervise import quarantine_report, sweep_fault

        if policy.on_error == "skip":
            with self._lock:
                self.quarantined += 1
            return quarantine_report(scenario, params, backend, minimize, attempts)
        raise sweep_fault(scenario, params, backend, attempts)

    def _iter_serial_supervised(
        self,
        spec: ScenarioSpec,
        assignments: Sequence[Tuple[Optional[str], Dict[str, object]]],
        formulas: Optional[Iterable[FormulaLike]],
        fresh_evaluators: bool,
        minimize: bool,
        policy: "FaultPolicy",
    ) -> Iterator[ExperimentReport]:
        """The supervised in-process sweep: retry/backoff and quarantine only.

        No pool means no watchdog and no crash recovery — ``iter_sweep`` routes
        any policy with ``timeout_per_point`` to the pool path even at
        ``jobs=1`` — but transient failures still heal and poison points still
        quarantine instead of aborting the whole sweep.
        """
        from repro.experiments.supervise import attempt_record, describe_failure

        for backend, params in assignments:
            backend_name = resolve_backend_name(
                backend if backend is not None else self.backend
            )
            # Invalid parameters settle immediately — retrying a deterministic
            # validation error would just burn the budget (and the quarantine
            # row carries the validated shape when it exists, matching the
            # pool path).
            try:
                validated = spec.validate_params(params)
            except ScenarioError as error:
                yield self._settle_failed_point(
                    spec.name,
                    params,
                    backend_name,
                    minimize,
                    [attempt_record(1, "error", describe_failure(error))],
                    policy,
                )
                continue
            attempts: List[Dict[str, object]] = []
            while True:
                try:
                    report = self.run(
                        scenario=spec.name,
                        params=validated,
                        formulas=formulas,
                        backend=backend,
                        fresh_evaluator=fresh_evaluators,
                        minimize=minimize,
                    )
                except Exception as error:
                    attempts.append(
                        attempt_record(
                            len(attempts) + 1, "error", describe_failure(error)
                        )
                    )
                    if len(attempts) <= policy.retries:
                        with self._lock:
                            self.retries += 1
                        time.sleep(policy.backoff_seconds(len(attempts)))
                        continue
                    yield self._settle_failed_point(
                        spec.name, validated, backend_name, minimize, attempts, policy
                    )
                    break
                else:
                    yield report
                    break

    def _iter_parallel_supervised(
        self,
        spec: ScenarioSpec,
        assignments: Sequence[Tuple[Optional[str], Dict[str, object]]],
        formulas: Optional[Iterable[FormulaLike]],
        fresh_evaluators: bool,
        minimize: bool,
        jobs: int,
        policy: "FaultPolicy",
    ) -> Iterator[ExperimentReport]:
        """The supervised pool sweep (see :mod:`repro.experiments.supervise`).

        Store composition mirrors :meth:`_iter_parallel` — partition against
        the store first, single parent writer — with two fault-specific rules:
        grid points whose *parameters* fail validation settle immediately
        (quarantine or abort) without burning retries or a pool slot, and
        quarantined reports are never written to the store, so a later
        resumed sweep re-attempts exactly them.
        """
        from repro.experiments.parallel import RunSpec
        from repro.experiments.supervise import (
            SweepSupervisor,
            attempt_record,
            describe_failure,
        )

        batch = (
            None
            if formulas is None
            else tuple(self.normalise_formulas(formulas))
        )
        keyed_specs: List[Tuple[Optional["StoreKey"], Optional[RunSpec]]] = []
        settled: Dict[int, ExperimentReport] = {}
        for index, (backend, params) in enumerate(assignments):
            resolved = resolve_backend_name(
                backend if backend is not None else self.backend
            )
            try:
                validated = spec.validate_params(params)
            except ScenarioError as error:
                settled[index] = self._settle_failed_point(
                    spec.name,
                    params,
                    resolved,
                    minimize,
                    [attempt_record(1, "error", describe_failure(error))],
                    policy,
                )
                keyed_specs.append((None, None))
                continue
            key = (
                None
                if self.store is None
                else self._store_key(
                    spec.name,
                    validated,
                    batch
                    if batch is not None
                    else self._formula_batch(spec, validated, None),
                    resolved,
                    minimize,
                )
            )
            keyed_specs.append(
                (
                    key,
                    RunSpec(
                        scenario=spec.name,
                        params_key=params_to_key(validated),
                        formulas=batch,
                        backend=resolved,
                        minimize=minimize,
                        fresh_evaluator=fresh_evaluators,
                    ),
                )
            )

        if self.store is not None and self.resume:
            for index, (key, run_spec) in enumerate(keyed_specs):
                if key is None or run_spec is None or index in settled:
                    continue
                report = self.store.get(key)
                if report is not None:
                    settled[index] = report
                    with self._lock:
                        self.store_hits += 1
        missing = [
            (index, run_spec)
            for index, (_, run_spec) in enumerate(keyed_specs)
            if index not in settled and run_spec is not None
        ]
        if not missing:
            for index in range(len(keyed_specs)):
                yield settled[index]
            return

        supervisor = SweepSupervisor(
            [run_spec for _, run_spec in missing],
            jobs=jobs,
            policy=policy,
            max_cached_instances=self.max_cached_instances,
        )
        stream = supervisor.run()
        try:
            for index in range(len(keyed_specs)):
                if index in settled:
                    yield settled[index]
                    continue
                report = next(stream)
                if report.error is None:
                    with self._lock:
                        self.eval_count += 1
                    key = keyed_specs[index][0]
                    if key is not None:
                        self.store.put(key, report)
                yield report
        finally:
            stream.close()
            with self._lock:
                self.retries += supervisor.retries
                self.quarantined += supervisor.quarantined

    def sweep(
        self,
        scenario: str,
        grid: Mapping[str, Iterable[object]],
        formulas: Optional[Iterable[FormulaLike]] = None,
        backends: Optional[Sequence[Optional[str]]] = None,
        fresh_evaluators: bool = False,
        minimize: bool = False,
        jobs: Optional[int] = None,
        policy: Optional["FaultPolicy"] = None,
    ) -> List[ExperimentReport]:
        """Run every point of a parameter grid, on one or several backends.

        ``grid`` maps parameter names to iterables of values; the sweep runs the
        cartesian product (parameters absent from the grid keep their defaults).
        Grid points are visited per backend in a stable order, and the built
        models are shared across backends through the instance cache.  With
        ``minimize=True`` every grid point is evaluated on its bisimulation
        quotient (the quotient is computed once per point and shared across
        backends through the same cache).

        ``jobs`` selects parallel execution: ``None``/``1`` evaluates in this
        process, ``N > 1`` shards the grid across ``N`` worker processes, and
        ``0`` means one worker per CPU.  Workers rebuild their scenario
        instances from the registry by parameter key (nothing non-picklable
        crosses the pool boundary) and keep their own bounded instance caches;
        the merged report list is in the same deterministic grid order as a
        serial sweep, with identical rows — only the timing fields
        (``build_seconds``/``eval_seconds``) reflect where the work actually
        ran.  See :mod:`repro.experiments.parallel`.

        ``policy`` opts into supervised fault-tolerant execution exactly as in
        :meth:`iter_sweep`.
        """
        return list(
            self.iter_sweep(
                scenario,
                grid,
                formulas=formulas,
                backends=backends,
                fresh_evaluators=fresh_evaluators,
                minimize=minimize,
                jobs=jobs,
                policy=policy,
            )
        )
