"""Batch experiment execution over registered scenarios.

:class:`ExperimentRunner` is the bridge between the scenario registry and the
PR 1 evaluation engine: it instantiates a scenario for a parameter assignment
(caching the built model by parameter key, so sweeping formulas or backends over
the same grid point never rebuilds the model), wraps it in the right evaluator
(:class:`~repro.kripke.checker.ModelChecker` for Kripke structures,
:class:`~repro.systems.interpretation.ViewBasedInterpretation` for systems), and
evaluates whole formula batches through the engine's shared-memo
``extensions()`` API.

Typical use::

    runner = ExperimentRunner()
    report = runner.run("muddy_children", {"n": 4, "k": 2})
    for row in report.rows:
        print(row.label, row.count, row.holds_at_focus)

    reports = runner.sweep(
        "muddy_children",
        grid={"n": range(2, 8)},
        backends=("frozenset", "bitset"),
    )
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine import resolve_backend_name
from repro.errors import ScenarioError
from repro.experiments.registry import (
    KIND_KRIPKE,
    BuiltScenario,
    ScenarioSpec,
    get_scenario,
    params_to_key,
)
from repro.kripke.bisimulation import quotient
from repro.kripke.checker import ModelChecker
from repro.logic.parser import parse
from repro.logic.syntax import Formula
from repro.systems.interpretation import ViewBasedInterpretation

__all__ = [
    "ScenarioInstance",
    "FormulaOutcome",
    "ExperimentReport",
    "ExperimentRunner",
    "DEFAULT_MAX_CACHED_INSTANCES",
]

Evaluator = Union[ModelChecker, ViewBasedInterpretation]
FormulaLike = Union[str, Formula, Tuple[str, Union[str, Formula]]]

DEFAULT_MAX_CACHED_INSTANCES = 128
"""Default bound on the runner's built-instance cache.

Deliberately generous — every sweep the paper's scenarios motivate fits well
under it, so the common case keeps every grid point's model and evaluators
warm — while still guaranteeing that a huge cartesian grid (thousands of
points) cannot grow the process without bound: once the cache is full, the
least recently used instance (with its evaluators and their memos) is evicted.
"""


class ScenarioInstance:
    """A scenario built for one validated parameter assignment.

    Owns the built model and hands out evaluators per engine backend.  Evaluators
    are cached: asking twice for the ``bitset`` evaluator of the same instance
    returns the same object, so its engine memo keeps accumulating across queries.
    """

    def __init__(self, spec: ScenarioSpec, params: Dict[str, object], built: BuiltScenario, build_seconds: float):
        self.spec = spec
        self.params = params
        self.built = built
        self.build_seconds = build_seconds
        self.kind = ScenarioSpec.kind_of(built.model)
        self._evaluators: Dict[Tuple[str, bool], Evaluator] = {}
        self._minimized: Optional[Tuple[object, Dict[object, object]]] = None
        self._universe_size: Optional[int] = None

    @property
    def model(self):
        """The built model (Kripke structure or system of runs)."""
        return self.built.model

    @property
    def focus(self) -> Optional[object]:
        """The designated world/point, when the scenario singles one out."""
        return self.built.focus

    @property
    def universe_size(self) -> int:
        """How many worlds (Kripke) or points (system) the model has.

        Computed once and cached on the instance — ``run()`` reads it per row
        batch, and re-enumerating a large system's points on every access was
        pure waste.
        """
        if self._universe_size is None:
            if self.kind == KIND_KRIPKE:
                self._universe_size = len(self.model.worlds)
            else:
                self._universe_size = self.model.point_count()
        return self._universe_size

    def minimized(self) -> Tuple[object, Dict[object, object]]:
        """The bisimulation quotient of the built model plus the world -> class map.

        System scenarios are first exported to a Kripke structure over
        ``(run name, time)`` worlds (:meth:`ViewBasedInterpretation.to_kripke`),
        so the quotient supports the static fragment of the language only — the
        temporal operators need the run/time shape the quotient no longer
        carries, and the checker rejects them.  The quotient (and the mapping
        used to translate the focus world) is computed once per instance and
        cached, so sweeping formulas or backends over a minimised grid point
        pays for partition refinement exactly once.
        """
        if self._minimized is None:
            model = self.model
            if self.kind != KIND_KRIPKE:
                model = ViewBasedInterpretation(model).to_kripke()
            self._minimized = quotient(model)
        return self._minimized

    def focus_class(self, focus: object) -> Optional[object]:
        """Translate a focus world/point into its bisimulation class.

        System focuses are :class:`~repro.systems.runs.Point` objects, while the
        exported structure's worlds are ``(run name, time)`` labels; this is the
        one place that mapping is applied.
        """
        if focus is None:
            return None
        _, class_of = self.minimized()
        if self.kind != KIND_KRIPKE:
            focus = (focus.run.name, focus.time)
        return class_of[focus]

    def make_evaluator(
        self, backend: Optional[str] = None, minimize: bool = False
    ) -> Evaluator:
        """Construct a fresh evaluator on ``backend`` (no instance-level caching).

        The sweep benchmarks use this to time evaluation from a cold formula
        memo; everything else should prefer :meth:`evaluator`.  With
        ``minimize=True`` the evaluator checks the bisimulation quotient of the
        model instead of the model itself (system scenarios quotient their
        Kripke export, see :meth:`minimized`).
        """
        if minimize:
            return ModelChecker(self.minimized()[0], backend=backend)
        if self.kind == KIND_KRIPKE:
            return ModelChecker(self.model, backend=backend)
        return ViewBasedInterpretation(self.model, backend=backend)

    def evaluator(
        self, backend: Optional[str] = None, minimize: bool = False
    ) -> Evaluator:
        """The cached evaluator for ``backend`` (resolved via the engine default)."""
        key = (resolve_backend_name(backend), bool(minimize))
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = self.make_evaluator(key[0], minimize=minimize)
            self._evaluators[key] = evaluator
        return evaluator

    def default_formulas(self) -> Dict[str, Formula]:
        """The scenario's default formula set for this parameter assignment."""
        return self.spec.default_formulas(self.params)


@dataclass(frozen=True)
class FormulaOutcome:
    """The evaluation result of one formula on one built scenario."""

    label: str
    formula: str
    count: int
    """How many worlds/points satisfy the formula."""
    universe: int
    """The total number of worlds/points in the model."""
    satisfiable: bool
    valid: bool
    holds_at_focus: Optional[bool]
    """Truth at the designated world/point; ``None`` when the scenario has no focus."""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering of the outcome."""
        return {
            "label": self.label,
            "formula": self.formula,
            "count": self.count,
            "universe": self.universe,
            "satisfiable": self.satisfiable,
            "valid": self.valid,
            "holds_at_focus": self.holds_at_focus,
        }


@dataclass
class ExperimentReport:
    """Everything one ``run`` produced: scenario, parameters, backend, outcomes."""

    scenario: str
    params: Dict[str, object]
    backend: str
    kind: str
    universe: int
    focus: Optional[str]
    build_seconds: float
    eval_seconds: float
    rows: List[FormulaOutcome] = field(default_factory=list)
    minimized: bool = False
    """Whether evaluation ran on the bisimulation quotient of the built model
    (``universe`` and the per-row counts then refer to the quotient's classes)."""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering of the report."""
        return {
            "scenario": self.scenario,
            "params": dict(self.params),
            "backend": self.backend,
            "kind": self.kind,
            "universe": self.universe,
            "focus": self.focus,
            "build_seconds": self.build_seconds,
            "eval_seconds": self.eval_seconds,
            "minimized": self.minimized,
            "rows": [row.to_dict() for row in self.rows],
        }


class ExperimentRunner:
    """Run scenarios and formula batches by name, with model caching.

    Parameters
    ----------
    backend:
        Default engine backend for every evaluation (``None`` follows the
        process-wide default, see :func:`repro.engine.get_default_backend`).

    max_cached_instances:
        Upper bound on the built-instance cache (default
        :data:`DEFAULT_MAX_CACHED_INSTANCES`).  The cache is LRU: when a sweep
        visits more distinct grid points than the bound, the least recently
        used instances — models, evaluators and their formula memos — are
        dropped so arbitrarily large grids run in bounded memory.

    Built models are cached per ``(scenario, parameter-assignment)`` key: a sweep
    that revisits a grid point — or runs the same grid on a second backend —
    reuses the model (and, through
    :meth:`ScenarioInstance.evaluator`, the evaluator's accumulated formula
    memo) instead of rebuilding.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        max_cached_instances: int = DEFAULT_MAX_CACHED_INSTANCES,
    ):
        if max_cached_instances < 1:
            raise ScenarioError(
                f"max_cached_instances must be >= 1, got {max_cached_instances!r}"
            )
        self.backend = backend
        self.max_cached_instances = max_cached_instances
        self._instances: "OrderedDict[Tuple[str, Tuple[Tuple[str, object], ...]], ScenarioInstance]" = (
            OrderedDict()
        )

    # -- construction ----------------------------------------------------------
    def instance(
        self, scenario: str, params: Optional[Mapping[str, object]] = None
    ) -> ScenarioInstance:
        """The (cached) built instance of ``scenario`` for ``params``.

        Cache hits refresh the entry's recency; misses build the scenario and
        may evict the least recently used instance to stay under
        ``max_cached_instances``.
        """
        spec = get_scenario(scenario)
        validated = spec.validate_params(params)
        key = (spec.name, params_to_key(validated))
        cached = self._instances.get(key)
        if cached is not None:
            self._instances.move_to_end(key)
            return cached
        start = time.perf_counter()
        built = spec.build(validated)
        elapsed = time.perf_counter() - start
        instance = ScenarioInstance(spec, validated, built, elapsed)
        self._instances[key] = instance
        while len(self._instances) > self.max_cached_instances:
            self._instances.popitem(last=False)
        return instance

    def clear_cache(self) -> None:
        """Drop every cached instance (and with them the cached evaluators)."""
        self._instances.clear()

    @property
    def cached_instances(self) -> int:
        """How many built scenario instances are currently cached."""
        return len(self._instances)

    # -- formula handling ------------------------------------------------------
    @staticmethod
    def _as_formula_batch(
        instance: ScenarioInstance, formulas: Optional[Iterable[FormulaLike]]
    ) -> List[Tuple[str, Formula]]:
        """Normalise the caller's formula list into ``(label, Formula)`` pairs.

        Accepts formula strings (parsed with :func:`repro.logic.parser.parse`),
        built :class:`~repro.logic.syntax.Formula` objects, or ``(label, either)``
        pairs; ``None`` selects the scenario's default formula set.
        """
        if formulas is None:
            defaults = instance.default_formulas()
            if not defaults:
                raise ScenarioError(
                    f"scenario {instance.spec.name!r} has no default formulas; "
                    "pass an explicit formula list"
                )
            return list(defaults.items())
        return ExperimentRunner.normalise_formulas(formulas)

    @staticmethod
    def normalise_formulas(
        formulas: Iterable[FormulaLike],
    ) -> List[Tuple[str, Formula]]:
        """Normalise an explicit formula list into ``(label, Formula)`` pairs.

        This is the instance-independent half of :meth:`_as_formula_batch`
        (defaults need a built instance; explicit formulas do not), which is
        why the parallel sweep can normalise once in the parent process and
        ship the parsed batch to every worker.
        """
        batch: List[Tuple[str, Formula]] = []
        for entry in formulas:
            if isinstance(entry, tuple):
                label, body = entry
            else:
                label, body = (str(entry), entry)
            formula = parse(body) if isinstance(body, str) else body
            if not isinstance(formula, Formula):
                raise ScenarioError(
                    f"expected a formula or formula text, got {type(body).__name__}"
                )
            batch.append((str(label), formula))
        return batch

    # -- execution -------------------------------------------------------------
    def run(
        self,
        scenario: str,
        params: Optional[Mapping[str, object]] = None,
        formulas: Optional[Iterable[FormulaLike]] = None,
        backend: Optional[str] = None,
        fresh_evaluator: bool = False,
        minimize: bool = False,
    ) -> ExperimentReport:
        """Evaluate a formula batch on one scenario instance.

        ``formulas`` defaults to the scenario's registered formula set.  The
        whole batch goes through the engine's ``extensions()`` API, so formulas
        sharing subterms (e.g. a ``E^k`` hierarchy) share one memo.  With
        ``fresh_evaluator`` the evaluation starts from a cold memo (used by the
        benchmarks); the built model is still reused from the cache.

        With ``minimize=True`` evaluation runs on the bisimulation quotient:
        truth at the focus world, satisfiability and validity are preserved by
        bisimulation invariance, while ``universe`` and the per-row counts refer
        to the quotient's classes.  System scenarios are exported to a Kripke
        structure over their points first (static-fragment formulas only — the
        temporal operators need run/time structure and are rejected by the
        checker on the quotient).
        """
        instance = self.instance(scenario, params)
        chosen_backend = backend if backend is not None else self.backend
        evaluator = (
            instance.make_evaluator(chosen_backend, minimize=minimize)
            if fresh_evaluator
            else instance.evaluator(chosen_backend, minimize=minimize)
        )
        batch = self._as_formula_batch(instance, formulas)

        start = time.perf_counter()
        extensions = evaluator.extensions([formula for _, formula in batch])
        eval_seconds = time.perf_counter() - start

        focus = instance.focus
        if minimize:
            reduced, _ = instance.minimized()
            universe = len(reduced.worlds)
            focus = instance.focus_class(focus)
        else:
            universe = instance.universe_size
        rows = [
            FormulaOutcome(
                label=label,
                formula=str(formula),
                count=len(extension),
                universe=universe,
                satisfiable=bool(extension),
                valid=len(extension) == universe,
                holds_at_focus=None if focus is None else focus in extension,
            )
            for (label, formula), extension in zip(batch, extensions)
        ]
        return ExperimentReport(
            scenario=instance.spec.name,
            params=dict(instance.params),
            backend=evaluator.backend,
            kind=instance.kind,
            universe=universe,
            focus=None if focus is None else repr(focus),
            build_seconds=instance.build_seconds,
            eval_seconds=eval_seconds,
            rows=rows,
            minimized=bool(minimize),
        )

    def iter_sweep(
        self,
        scenario: str,
        grid: Mapping[str, Iterable[object]],
        formulas: Optional[Iterable[FormulaLike]] = None,
        backends: Optional[Sequence[Optional[str]]] = None,
        fresh_evaluators: bool = False,
        minimize: bool = False,
        jobs: Optional[int] = None,
    ) -> Iterator[ExperimentReport]:
        """Stream a sweep's reports in deterministic grid order.

        Identical to :meth:`sweep` but yields each
        :class:`ExperimentReport` as soon as it (and every report before it in
        grid order) is finished, instead of accumulating the whole list — this
        is what lets ``repro sweep --json`` print rows while later grid points
        are still being evaluated.  With ``jobs > 1`` the grid is sharded
        across a process pool (see :mod:`repro.experiments.parallel`); the
        yielded order — and every report row — is the same either way.
        """
        spec = get_scenario(scenario)
        names = list(grid)
        for name in names:
            spec.parameter(name)  # fail fast on unknown grid axes
        value_lists = [list(grid[name]) for name in names]
        for name, values in zip(names, value_lists):
            if not values:
                raise ScenarioError(f"grid axis {name!r} has no values")
        chosen_backends: Sequence[Optional[str]] = (
            backends if backends else (self.backend,)
        )
        assignments: List[Tuple[Optional[str], Dict[str, object]]] = [
            (backend, dict(zip(names, combination)))
            for backend in chosen_backends
            for combination in itertools.product(*value_lists)
        ]

        from repro.experiments.parallel import resolve_jobs

        worker_count = resolve_jobs(jobs)
        if worker_count > 1 and len(assignments) > 1:
            yield from self._iter_parallel(
                spec,
                assignments,
                formulas=formulas,
                fresh_evaluators=fresh_evaluators,
                minimize=minimize,
                jobs=worker_count,
            )
            return
        for backend, params in assignments:
            yield self.run(
                scenario,
                params,
                formulas=formulas,
                backend=backend,
                fresh_evaluator=fresh_evaluators,
                minimize=minimize,
            )

    def _iter_parallel(
        self,
        spec: ScenarioSpec,
        assignments: Sequence[Tuple[Optional[str], Dict[str, object]]],
        formulas: Optional[Iterable[FormulaLike]],
        fresh_evaluators: bool,
        minimize: bool,
        jobs: int,
    ) -> Iterator[ExperimentReport]:
        """Shard ``assignments`` over the process pool, preserving grid order."""
        from repro.experiments.parallel import RunSpec, iter_parallel_sweep

        batch = (
            None
            if formulas is None
            else tuple(self.normalise_formulas(formulas))
        )
        specs = [
            RunSpec(
                scenario=spec.name,
                params_key=params_to_key(spec.validate_params(params)),
                formulas=batch,
                # Resolve now so every worker evaluates on the exact backend the
                # serial path would have picked, whatever the workers' own
                # process-wide default is.
                backend=resolve_backend_name(
                    backend if backend is not None else self.backend
                ),
                minimize=minimize,
                fresh_evaluator=fresh_evaluators,
            )
            for backend, params in assignments
        ]
        yield from iter_parallel_sweep(
            specs, jobs=jobs, max_cached_instances=self.max_cached_instances
        )

    def sweep(
        self,
        scenario: str,
        grid: Mapping[str, Iterable[object]],
        formulas: Optional[Iterable[FormulaLike]] = None,
        backends: Optional[Sequence[Optional[str]]] = None,
        fresh_evaluators: bool = False,
        minimize: bool = False,
        jobs: Optional[int] = None,
    ) -> List[ExperimentReport]:
        """Run every point of a parameter grid, on one or several backends.

        ``grid`` maps parameter names to iterables of values; the sweep runs the
        cartesian product (parameters absent from the grid keep their defaults).
        Grid points are visited per backend in a stable order, and the built
        models are shared across backends through the instance cache.  With
        ``minimize=True`` every grid point is evaluated on its bisimulation
        quotient (the quotient is computed once per point and shared across
        backends through the same cache).

        ``jobs`` selects parallel execution: ``None``/``1`` evaluates in this
        process, ``N > 1`` shards the grid across ``N`` worker processes, and
        ``0`` means one worker per CPU.  Workers rebuild their scenario
        instances from the registry by parameter key (nothing non-picklable
        crosses the pool boundary) and keep their own bounded instance caches;
        the merged report list is in the same deterministic grid order as a
        serial sweep, with identical rows — only the timing fields
        (``build_seconds``/``eval_seconds``) reflect where the work actually
        ran.  See :mod:`repro.experiments.parallel`.
        """
        return list(
            self.iter_sweep(
                scenario,
                grid,
                formulas=formulas,
                backends=backends,
                fresh_evaluators=fresh_evaluators,
                minimize=minimize,
                jobs=jobs,
            )
        )
