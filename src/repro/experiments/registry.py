"""The scenario registry: the paper's worked examples as declarative data.

Every scenario of :mod:`repro.scenarios` registers itself here with a name, the
paper section it reproduces, a typed parameter schema, a builder, and a default
formula set.  The registry is the shared on-ramp for everything that wants to
enumerate or instantiate scenarios uniformly: the batch
:class:`~repro.experiments.runner.ExperimentRunner`, the ``python -m repro`` CLI,
the sweep benchmarks, and the generated ``docs/scenarios.md`` page.

A registration looks like::

    @register_scenario(
        name="muddy_children",
        summary="n children, k muddy foreheads, the father speaks",
        section="Sections 2 and 10",
        parameters=(
            Parameter("n", int, default=3, minimum=1),
            Parameter("k", int, default=2, minimum=0),
        ),
        formulas=_default_formulas,   # params dict -> {label: Formula}
    )
    def build(n, k):
        return BuiltScenario(model=..., focus=...)

The builder receives validated keyword parameters and returns either a bare model
(a :class:`~repro.kripke.structure.KripkeStructure` or a
:class:`~repro.systems.system.System`) or a :class:`BuiltScenario` when it also
wants to designate a focus world/point.  Model *construction* stays in the
scenario modules; the registry only holds the schema and the callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ScenarioError
from repro.kripke.structure import KripkeStructure
from repro.logic.check import ScenarioSignature
from repro.logic.syntax import Formula
from repro.systems.system import System

__all__ = [
    "Parameter",
    "BuiltScenario",
    "ScenarioSignature",
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "load_builtin_scenarios",
    "params_to_key",
    "params_from_key",
    "KIND_KRIPKE",
    "KIND_SYSTEM",
]

ParamKey = Tuple[Tuple[str, object], ...]
"""A validated parameter assignment as a canonical, hashable, picklable tuple."""


def params_to_key(params: Mapping[str, object]) -> ParamKey:
    """Flatten a parameter assignment into its canonical key.

    The key is sorted by parameter name, so two assignments spelled in
    different orders map to the same key — this is what the runner's instance
    cache indexes on, and the shape parameter assignments travel in across the
    parallel sweep's process-pool boundary (values are the already-coerced
    scalars of the schema, all picklable).  :func:`params_from_key` is the
    exact inverse.
    """
    return tuple(sorted(params.items()))


def params_from_key(key: ParamKey) -> Dict[str, object]:
    """Rebuild the parameter dict a :func:`params_to_key` key came from."""
    return dict(key)

KIND_KRIPKE = "kripke"
"""Scenario kind: the builder produced a finite Kripke structure."""

KIND_SYSTEM = "system"
"""Scenario kind: the builder produced a runs-and-systems model."""

_TRUE_STRINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class Parameter:
    """One typed parameter of a scenario.

    Parameters
    ----------
    name:
        The keyword the builder receives.
    type:
        One of ``int``, ``float``, ``str``, ``bool``.  String inputs (from the
        CLI) are coerced through this type; already-typed inputs are checked
        against it.
    default:
        The value used when the caller omits the parameter.  ``None`` marks the
        parameter as required.
    description:
        One line for ``describe`` output and the generated docs.
    minimum / maximum:
        Optional inclusive bounds for numeric parameters.
    choices:
        Optional closed set of allowed values (checked after coercion).
    """

    name: str
    type: type = int
    default: Optional[object] = None
    description: str = ""
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[object, ...]] = None

    @property
    def required(self) -> bool:
        """Whether the caller must supply this parameter explicitly."""
        return self.default is None

    def coerce(self, value: object) -> object:
        """Coerce and validate ``value``, raising :class:`ScenarioError` on misuse.

        Strings are parsed according to :attr:`type` (so CLI ``-p n=5`` works);
        non-string inputs must already have a compatible Python type.
        """
        coerced = self._coerce_type(value)
        if self.minimum is not None and coerced < self.minimum:
            raise ScenarioError(
                f"parameter {self.name!r} must be >= {self.minimum}, got {coerced!r}"
            )
        if self.maximum is not None and coerced > self.maximum:
            raise ScenarioError(
                f"parameter {self.name!r} must be <= {self.maximum}, got {coerced!r}"
            )
        if self.choices is not None and coerced not in self.choices:
            raise ScenarioError(
                f"parameter {self.name!r} must be one of {self.choices}, got {coerced!r}"
            )
        return coerced

    def _coerce_type(self, value: object) -> object:
        if self.type is bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in _TRUE_STRINGS:
                    return True
                if lowered in _FALSE_STRINGS:
                    return False
            raise ScenarioError(
                f"parameter {self.name!r} expects a boolean "
                f"(true/false/1/0), got {value!r}"
            )
        if isinstance(value, str) and self.type is not str:
            try:
                return self.type(value)
            except ValueError:
                raise ScenarioError(
                    f"parameter {self.name!r} expects {self.type.__name__}, "
                    f"got {value!r}"
                ) from None
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self.type is int and isinstance(value, float):
            # JSON has one number type, so an integer parameter routinely
            # arrives as 4.0 from HTTP clients (and from CLI step grids).
            # Integral floats coerce exactly; anything fractional is a real
            # type error.  Every entry point shares this path, so the same
            # logical request always canonicalises to the same value — and
            # therefore the same store key.
            if value.is_integer():
                return int(value)
            raise ScenarioError(
                f"parameter {self.name!r} expects int, got {value!r} "
                "(a fractional value cannot be coerced)"
            )
        if not isinstance(value, self.type) or isinstance(value, bool) != (self.type is bool):
            raise ScenarioError(
                f"parameter {self.name!r} expects {self.type.__name__}, got {value!r}"
            )
        return value

    def describe(self) -> str:
        """A one-line human-readable rendering of the schema entry."""
        parts = [f"{self.name}: {self.type.__name__}"]
        parts.append("required" if self.required else f"default {self.default!r}")
        if self.minimum is not None or self.maximum is not None:
            low = "-inf" if self.minimum is None else self.minimum
            high = "inf" if self.maximum is None else self.maximum
            parts.append(f"range [{low}, {high}]")
        if self.choices is not None:
            parts.append("choices " + "/".join(str(c) for c in self.choices))
        return ", ".join(str(p) for p in parts)


@dataclass(frozen=True)
class BuiltScenario:
    """What a scenario builder returns: a model plus optional metadata.

    ``model`` is a :class:`~repro.kripke.structure.KripkeStructure` or a
    :class:`~repro.systems.system.System`; ``focus`` optionally designates the
    "actual" world (Kripke) or point (system) that reports single out.
    """

    model: Union[KripkeStructure, System]
    focus: Optional[object] = None
    note: str = ""
    """Free-form remark shown by ``describe`` (e.g. what the focus world is)."""


FormulaFactory = Callable[[Mapping[str, object]], "Mapping[str, Formula]"]

SignatureFactory = Callable[[Mapping[str, object]], ScenarioSignature]
"""``validated params -> ScenarioSignature`` — static shape, no model build."""


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: schema + builder + default formulas.

    Instances are created by :func:`register_scenario`; user code normally only
    reads them (``spec.parameters``, ``spec.build(...)``,
    ``spec.default_formulas(...)``).
    """

    name: str
    summary: str
    section: str
    parameters: Tuple[Parameter, ...]
    builder: Callable[..., Union[BuiltScenario, KripkeStructure, System]]
    formulas: Optional[FormulaFactory] = None
    details: str = field(default="", compare=False)
    signature: Optional[SignatureFactory] = field(default=None, compare=False)

    def parameter(self, name: str) -> Parameter:
        """The schema entry called ``name`` (:class:`ScenarioError` if absent)."""
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise ScenarioError(
            f"scenario {self.name!r} has no parameter {name!r}; "
            f"known parameters: {[p.name for p in self.parameters]}"
        )

    def validate_params(self, params: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Merge ``params`` with defaults, coercing and validating every value.

        Unknown names, missing required parameters, type mismatches and
        range/choice violations all raise :class:`ScenarioError`.
        """
        supplied = dict(params or {})
        known = {parameter.name for parameter in self.parameters}
        unknown = sorted(set(supplied) - known)
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} got unknown parameter(s) {unknown}; "
                f"known parameters: {sorted(known)}"
            )
        validated: Dict[str, object] = {}
        for parameter in self.parameters:
            if parameter.name in supplied:
                validated[parameter.name] = parameter.coerce(supplied[parameter.name])
            elif parameter.required:
                raise ScenarioError(
                    f"scenario {self.name!r} requires parameter {parameter.name!r}"
                )
            else:
                validated[parameter.name] = parameter.default
        return validated

    def build(self, params: Optional[Mapping[str, object]] = None) -> BuiltScenario:
        """Validate ``params`` and run the builder, normalising the result.

        Builders may return a bare model; it is wrapped into a
        :class:`BuiltScenario` so callers always see one shape.
        """
        validated = self.validate_params(params)
        built = self.builder(**validated)
        if isinstance(built, (KripkeStructure, System)):
            built = BuiltScenario(model=built)
        if not isinstance(built, BuiltScenario):
            raise ScenarioError(
                f"builder for scenario {self.name!r} returned {type(built).__name__}; "
                "expected a KripkeStructure, a System, or a BuiltScenario"
            )
        return built

    def default_formulas(
        self, params: Optional[Mapping[str, object]] = None
    ) -> Dict[str, Formula]:
        """The scenario's default formula set for validated ``params``.

        Returns an ordered ``label -> Formula`` mapping; empty when the scenario
        registered no formula factory.
        """
        if self.formulas is None:
            return {}
        return dict(self.formulas(self.validate_params(params)))

    def signature_for(
        self, params: Optional[Mapping[str, object]] = None
    ) -> Optional[ScenarioSignature]:
        """The scenario's static signature for validated ``params``.

        Returns ``None`` when the scenario registered no signature factory —
        callers (the static checker, the runner pre-flight) then skip the
        signature-dependent checks.  Like :meth:`default_formulas`, this never
        builds the model: the signature is derived from the parameter schema
        alone, which is what makes pre-flight cheap enough to run on every
        grid point of a sweep.
        """
        if self.signature is None:
            return None
        derived = self.signature(self.validate_params(params))
        if derived.name:
            return derived
        # Stamp the registry name so diagnostics always name the scenario.
        from dataclasses import replace

        return replace(derived, name=self.name)

    @staticmethod
    def kind_of(model: Union[KripkeStructure, System]) -> str:
        """Classify a built model as :data:`KIND_KRIPKE` or :data:`KIND_SYSTEM`."""
        if isinstance(model, KripkeStructure):
            return KIND_KRIPKE
        if isinstance(model, System):
            return KIND_SYSTEM
        raise ScenarioError(f"unsupported model type {type(model).__name__}")


_REGISTRY: Dict[str, ScenarioSpec] = {}
_BUILTINS_LOADED = False


def register_scenario(
    name: str,
    summary: str,
    section: str,
    parameters: Sequence[Parameter] = (),
    formulas: Optional[FormulaFactory] = None,
    details: str = "",
    signature: Optional[SignatureFactory] = None,
) -> Callable[[Callable], Callable]:
    """Decorator factory registering a builder function as a scenario.

    Raises :class:`ScenarioError` when ``name`` is already taken or the schema
    repeats a parameter name.  Returns the builder unchanged, with the created
    :class:`ScenarioSpec` attached as ``builder.scenario_spec``.

    ``signature`` optionally maps validated parameters to a
    :class:`~repro.logic.check.ScenarioSignature` (agents, horizon,
    Kripke-vs-system capability) *without* building the model; when present,
    ``repro check`` and the runner pre-flight validate formula batches against
    it before any instance is built.
    """
    seen = set()
    for parameter in parameters:
        if parameter.name in seen:
            raise ScenarioError(
                f"scenario {name!r} declares parameter {parameter.name!r} twice"
            )
        seen.add(parameter.name)

    def decorator(builder: Callable) -> Callable:
        if name in _REGISTRY:
            raise ScenarioError(
                f"scenario {name!r} is already registered "
                f"(by {_REGISTRY[name].builder.__module__})"
            )
        spec = ScenarioSpec(
            name=name,
            summary=summary,
            section=section,
            parameters=tuple(parameters),
            builder=builder,
            formulas=formulas,
            details=details,
            signature=signature,
        )
        _REGISTRY[name] = spec
        builder.scenario_spec = spec
        return builder

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registration (used by tests and by plugin teardown)."""
    _REGISTRY.pop(name, None)


def load_builtin_scenarios() -> None:
    """Import :mod:`repro.scenarios`, which registers the paper's scenarios.

    Importing the scenario package is what executes the ``@register_scenario``
    decorations; this helper makes that dependency explicit and idempotent so
    registry lookups work no matter which module the process imported first.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.scenarios  # noqa: F401  (import side effect: registration)

        _BUILTINS_LOADED = True


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name, raising :class:`ScenarioError` when unknown."""
    load_builtin_scenarios()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered scenarios: {scenario_names()}"
        )
    return spec


def scenario_names() -> Tuple[str, ...]:
    """Every registered scenario name, sorted."""
    load_builtin_scenarios()
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> Tuple[ScenarioSpec, ...]:
    """Every registered spec, sorted by name."""
    load_builtin_scenarios()
    return tuple(_REGISTRY[name] for name in scenario_names())
