"""Machine-checked benchmark regression gating.

``tools/bench_report.py`` distils one run of the benchmark suite into
``BENCH_results.json``; this module diffs two such reports — a committed
*baseline* and a freshly generated *current* — and decides, with per-benchmark
tolerances, whether performance regressed.  It backs both faces of the gate:

* ``repro bench compare`` (and the thin ``tools/bench_compare.py`` wrapper)
  for humans and CI, exiting nonzero on regression;
* :func:`compare_reports` for anything that wants the verdict as data.

Comparison modes
----------------

**Full** (the default) matches benchmarks by ``(file, name)`` and flags a
regression when the current mean exceeds the baseline mean by more than the
tolerance: ``current_mean > baseline_mean * (1 + tolerance)``.  Benchmarks
present in the baseline but absent from the current run are failures too
(unless explicitly allowed) — a silently dropped benchmark is how regressions
hide.  **Quick** compares coverage only: every module the baseline tracked
must still be present in the current report.  That is the cheap CI shape —
pair it with ``tools/bench_report.py --quick``, whose report carries outcomes
but no timings.

The default tolerance is deliberately generous (50%): benchmark means on
shared CI hardware are noisy, and the gate exists to catch *structural*
slowdowns (an accidental O(n^2), a dropped cache), not scheduler jitter.
Tighten per benchmark with ``--tolerance-for 'NAME=0.2'`` where the history
shows a stable mean.
"""

from __future__ import annotations

import fnmatch
import json
import pathlib
import subprocess
import sys
import tempfile
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "DEFAULT_TOLERANCE",
    "default_baseline_path",
    "load_report",
    "generate_current",
    "compare_reports",
    "render_comparison",
]

DEFAULT_TOLERANCE = 0.5
"""Default allowed slowdown factor (0.5 = the mean may grow by 50%)."""


def load_report(path) -> Dict:
    """Parse one ``BENCH_results.json``-shaped report, with named failures."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ReproError(f"cannot read benchmark report {str(path)!r}: {error}") from None
    try:
        report = json.loads(text)
    except ValueError as error:
        raise ReproError(
            f"benchmark report {str(path)!r} is not valid JSON: {error}"
        ) from None
    if not isinstance(report, dict) or "benchmarks" not in report:
        raise ReproError(
            f"benchmark report {str(path)!r} has no 'benchmarks' section; "
            "was it written by tools/bench_report.py?"
        )
    return report


def default_baseline_path() -> pathlib.Path:
    """The committed baseline: the source checkout's ``BENCH_results.json``.

    Falls back to a cwd-relative path when this module is not running from a
    checkout, so the eventual :func:`load_report` error names something
    actionable.
    """
    candidate = pathlib.Path(__file__).resolve().parents[2] / "BENCH_results.json"
    return candidate if candidate.exists() else pathlib.Path("BENCH_results.json")


def _tools_script(name: str) -> pathlib.Path:
    root = pathlib.Path(__file__).resolve().parents[2]
    script = root / "tools" / name
    if not script.exists():
        raise ReproError(
            f"cannot locate tools/{name} (looked in {str(script.parent)!r}); "
            "run from a source checkout, or pass --current with a report "
            "generated elsewhere"
        )
    return script


def generate_current(quick: bool = False) -> Dict:
    """Run the benchmark suite now and return its fresh report.

    Shells out to ``tools/bench_report.py`` (located relative to this source
    checkout) with a temporary ``--output``; ``quick`` selects smoke mode —
    every benchmark body runs once, assertions on, no timing loops.
    """
    script = _tools_script("bench_report.py")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        output = pathlib.Path(handle.name)
    try:
        command = [sys.executable, str(script), "--output", str(output)]
        if quick:
            command.append("--quick")
        completed = subprocess.run(command)
        if completed.returncode != 0:
            raise ReproError(
                f"benchmark run failed (exit {completed.returncode}); "
                "fix the suite before comparing"
            )
        return load_report(output)
    finally:
        output.unlink(missing_ok=True)


def _bench_id(entry: Mapping) -> Tuple[str, str]:
    return (entry.get("file") or "", entry.get("name") or "")


def _tolerance_for(
    entry_id: Tuple[str, str],
    default: float,
    overrides: Sequence[Tuple[str, float]],
) -> float:
    """The tolerance for one benchmark: the last matching override wins.

    Override patterns are :mod:`fnmatch` globs matched against the bare
    benchmark name and against ``file::name``, so both
    ``--tolerance-for 'test_fast_chain*=0.2'`` and
    ``--tolerance-for 'benchmarks/bench_bisimulation.py::*=0.3'`` work.
    """
    file, name = entry_id
    qualified = f"{file}::{name}"
    chosen = default
    for pattern, value in overrides:
        if fnmatch.fnmatchcase(name, pattern) or fnmatch.fnmatchcase(
            qualified, pattern
        ):
            chosen = value
    return chosen


def compare_reports(
    baseline: Mapping,
    current: Mapping,
    tolerance: float = DEFAULT_TOLERANCE,
    overrides: Optional[Sequence[Tuple[str, float]]] = None,
    quick: bool = False,
    allow_missing: bool = False,
) -> Dict:
    """Diff ``current`` against ``baseline``; returns a JSON-ready verdict.

    The result dict carries ``ok`` (the gate verdict), ``regressions`` /
    ``improvements`` / ``missing`` / ``new`` listings, and enough metadata
    (generated-at stamps, git SHAs when recorded) to make a CI failure
    self-explanatory.  ``quick=True`` switches to coverage-only comparison
    (see the module docstring); it is also *required* when ``current`` holds a
    quick-mode report, which has no timings to compare.
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance!r}")
    overrides = list(overrides or [])
    for _, value in overrides:
        if value < 0:
            raise ReproError(f"per-benchmark tolerance must be >= 0, got {value!r}")

    result: Dict[str, object] = {
        "mode": "quick" if quick else "full",
        "baseline_generated_at": baseline.get("generated_at"),
        "current_generated_at": current.get("generated_at"),
        "baseline_git_sha": baseline.get("git_sha"),
        "current_git_sha": current.get("git_sha"),
        "regressions": [],
        "improvements": [],
        "missing": [],
        "new": [],
        "checked": 0,
    }

    if quick:
        baseline_modules = set(baseline.get("modules") or [])
        current_modules = set(current.get("modules") or [])
        missing = sorted(baseline_modules - current_modules)
        result["missing"] = missing
        result["new"] = sorted(current_modules - baseline_modules)
        result["checked"] = len(baseline_modules & current_modules)
        result["ok"] = not missing or allow_missing
        return result

    if current.get("mode") == "quick":
        raise ReproError(
            "the current report is a --quick smoke report with no timings; "
            "pass --quick to compare module coverage, or regenerate the "
            "current report in full mode"
        )
    if baseline.get("mode") == "quick":
        raise ReproError(
            "the baseline report is a --quick smoke report with no timings; "
            "full comparison needs a full-mode baseline"
        )

    baseline_entries = {_bench_id(e): e for e in baseline.get("benchmarks") or []}
    current_entries = {_bench_id(e): e for e in current.get("benchmarks") or []}

    regressions: List[Dict] = []
    improvements: List[Dict] = []
    for entry_id in sorted(baseline_entries):
        if entry_id not in current_entries:
            result["missing"].append("::".join(entry_id))
            continue
        base_mean = baseline_entries[entry_id].get("mean_s")
        cur_mean = current_entries[entry_id].get("mean_s")
        if base_mean is None or cur_mean is None:
            result["missing"].append("::".join(entry_id))
            continue
        allowed = _tolerance_for(entry_id, tolerance, overrides)
        ratio = cur_mean / base_mean if base_mean > 0 else float("inf")
        row = {
            "file": entry_id[0],
            "name": entry_id[1],
            "baseline_mean_s": base_mean,
            "current_mean_s": cur_mean,
            "ratio": round(ratio, 4),
            "tolerance": allowed,
        }
        result["checked"] += 1
        if cur_mean > base_mean * (1.0 + allowed):
            regressions.append(row)
        elif cur_mean < base_mean / (1.0 + allowed):
            improvements.append(row)
    result["new"] = sorted(
        "::".join(entry_id)
        for entry_id in current_entries
        if entry_id not in baseline_entries
    )
    result["regressions"] = regressions
    result["improvements"] = improvements
    result["ok"] = not regressions and (allow_missing or not result["missing"])
    return result


def render_comparison(result: Mapping) -> str:
    """A human-readable rendering of a :func:`compare_reports` verdict."""
    lines: List[str] = []
    mode = result.get("mode")
    lines.append(
        f"bench compare ({mode}): baseline {result.get('baseline_generated_at') or '?'}"
        f" vs current {result.get('current_generated_at') or '?'}"
    )
    if mode == "quick":
        lines.append(f"  modules covered: {result.get('checked', 0)}")
    else:
        lines.append(f"  benchmarks compared: {result.get('checked', 0)}")
    for row in result.get("regressions") or []:
        lines.append(
            f"  REGRESSION {row['file']}::{row['name']}: "
            f"{row['baseline_mean_s'] * 1000:.2f} ms -> "
            f"{row['current_mean_s'] * 1000:.2f} ms "
            f"({row['ratio']:.2f}x, tolerance {1 + row['tolerance']:.2f}x)"
        )
    for row in result.get("improvements") or []:
        lines.append(
            f"  improved   {row['file']}::{row['name']}: "
            f"{row['baseline_mean_s'] * 1000:.2f} ms -> "
            f"{row['current_mean_s'] * 1000:.2f} ms ({row['ratio']:.2f}x)"
        )
    for name in result.get("missing") or []:
        lines.append(f"  MISSING    {name} (in baseline, not in current)")
    for name in result.get("new") or []:
        lines.append(f"  new        {name} (no baseline yet)")
    lines.append("verdict: OK" if result.get("ok") else "verdict: REGRESSION")
    return "\n".join(lines)
