"""The ``repro`` command line interface (also ``python -m repro``).

Eight subcommands expose the scenario registry, the static checker, the
experiment runner, the persistent result store, the benchmark regression
gate and the long-lived evaluation service from the shell::

    repro list                                  # every registered scenario
    repro describe muddy_children               # schema, defaults, formula set
    repro check muddy_children                  # lint the default formula suite
    repro check muddy_children -f "K_z p"       # REP101: unknown agent, exit 1
    repro check --all --strict                  # every scenario's suite (CI gate)
    repro run muddy_children -p n=4 -p k=2      # evaluate the default formulas
    repro run muddy_children -f "C_{child_0,child_1} at_least_one"
    repro sweep muddy_children -g n=2..6 --backends both
    repro sweep coordinated_attack -g horizon=3..6 --jobs 4
    repro sweep gossip -g n=3..6 --store results.sqlite --resume
    repro store stats results.sqlite            # rows, slices, provenance
    repro store gc results.sqlite --stale       # prune orphaned rows
    repro bench compare --current /tmp/bench.json
    repro serve --port 8750 --store results.sqlite   # long-lived HTTP service

Every subcommand takes ``--json`` for machine-readable output; ``run`` and
``sweep`` take ``--backend`` / ``--backends`` to pick the engine's set
representation (``frozenset`` reference or ``bitset`` fast path), and ``sweep``
takes ``--jobs N`` to shard the grid across ``N`` worker processes (``--jobs
0`` = one per CPU) with the same deterministic output order as a serial sweep;
its ``--json`` output streams one report at a time as grid points finish.

``run`` and ``sweep`` also take ``--store PATH`` (default: the
``REPRO_STORE`` environment variable) to record every evaluated report in a
persistent content-addressed store, ``--resume`` to serve already recorded
rows from it without re-evaluating, and ``--no-store`` to bypass persistence
entirely.  Stored rows are keyed by the canonical request identity — see
:mod:`repro.experiments.store`.

``serve`` boots the evaluation service (:mod:`repro.serve`): a long-lived
asyncio HTTP server that keeps the runner's instance/evaluator caches — and
optionally an open result store (``--store`` or ``REPRO_STORE``) — resident
across requests, coalescing concurrent identical ``POST /run`` requests into
a single evaluation and streaming ``POST /sweep`` grids as NDJSON rows
byte-compatible with ``repro sweep --json`` elements.

``sweep`` additionally takes a fault policy — ``--on-error {abort,skip}``,
``--retries N``, ``--retry-backoff SECONDS``, ``--timeout-per-point SECONDS``
— that turns grid-point failures from sweep-aborting events into supervised
ones: failed points are retried with exponential backoff, hung points are
reclaimed by a watchdog, and under ``--on-error skip`` exhausted points are
*quarantined* as structured error rows (reported in a failure summary) while
every healthy point still completes.  See
:mod:`repro.experiments.supervise`.

Exit codes (``repro check``)::

    0    every checked formula is clean (warnings allowed unless --strict)
    1    diagnostics were reported — any error, or any finding at all under
         --strict; each line carries a stable REP code (repro.analysis)
    2    usage error (unknown scenario, missing required parameter, no
         scenario and no -f formula text)

Exit codes (``repro sweep``)::

    0    every grid point completed cleanly
    1    the sweep aborted mid-run (a grid point failed under --on-error
         abort, or the supervisor gave up on the worker pool)
    2    usage/configuration error before any evaluation (unknown scenario,
         malformed grid, bad flag values, unreadable store)
    3    the sweep completed, but one or more grid points were quarantined
         under --on-error skip (details in the failure summary)
    130  interrupted (Ctrl-C); already-completed rows are committed to the
         store and a --json stream is closed well-formed

Formulas passed with ``-f`` are parsed by :func:`repro.logic.parser.parse`,
which covers the whole language including the temporal-epistemic operators
(``Eeps^0.5_{a,b} p``, ``C<>_{a,b} p``, ``K@3_a p``, ``<> p``, ``nu X. ...``);
note the Kripke-backed scenarios still reject the temporal fragment at
evaluation time.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError, SweepFaultError
from repro.experiments.parallel import resolve_jobs
from repro.experiments.registry import ScenarioSpec, all_scenarios, get_scenario
from repro.experiments.runner import ExperimentReport, ExperimentRunner
from repro.experiments.supervise import ON_ERROR_MODES, FaultPolicy

__all__ = ["main", "build_parser"]

_BACKEND_CHOICES = ("frozenset", "bitset")


# -- table rendering -----------------------------------------------------------

def _render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table (no external dependencies)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)).rstrip(),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def _yes_no(value: Optional[bool]) -> str:
    if value is None:
        return "-"
    return "yes" if value else "no"


def _format_params(params: Mapping[str, object]) -> str:
    return " ".join(f"{name}={value}" for name, value in sorted(params.items()))


# -- argument parsing ----------------------------------------------------------

def _parse_assignment(text: str) -> Tuple[str, str]:
    """Split one ``name=value`` CLI argument."""
    name, separator, value = text.partition("=")
    if not separator or not name:
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}"
        )
    return name, value


def _decimal_places(text: str) -> int:
    """How many digits ``text`` carries after its decimal point."""
    _, separator, fraction = text.strip().partition(".")
    return len(fraction) if separator else 0


def _parse_grid_values(spec: ScenarioSpec, name: str, text: str) -> List[object]:
    """Expand one grid axis.

    Three spellings are accepted: ``2..6`` (inclusive integer range, step 1),
    ``0..1..0.25`` (inclusive numeric range with an explicit step — the only way
    to sweep float parameters with ``..``), and ``a,b,c`` (explicit value list,
    any parameter type).
    """
    parameter = spec.parameter(name)
    if ".." not in text:
        return [parameter.coerce(part) for part in text.split(",") if part != ""]
    parts = text.split("..")
    if len(parts) == 2:
        low_text, high_text = parts
        try:
            low, high = int(low_text), int(high_text)
        except ValueError:
            raise ReproError(
                f"grid axis {name!r}: {text!r} has non-integer endpoints; use "
                f"{name}=lo..hi..step for a float range (e.g. {name}=0..1..0.25) "
                f"or list the values with commas (e.g. {name}=0.0,0.5,1.0)"
            ) from None
        if high < low:
            raise ReproError(f"grid axis {name!r}: empty range {text!r}")
        return [parameter.coerce(value) for value in range(low, high + 1)]
    if len(parts) == 3:
        try:
            low, high, step = (float(part) for part in parts)
        except ValueError:
            raise ReproError(
                f"grid axis {name!r}: expected numeric lo..hi..step, got {text!r}"
            ) from None
        if step <= 0:
            raise ReproError(f"grid axis {name!r}: step must be positive in {text!r}")
        if high < low:
            raise ReproError(f"grid axis {name!r}: empty range {text!r}")
        # Values are low + i*step (no accumulated drift), rounded back to the
        # decimal precision the user typed so 0..1..0.1 yields 0.3, not
        # 0.30000000000000004; the endpoint is kept when it lands within float
        # tolerance of the grid.
        decimals = max(_decimal_places(part) for part in parts)
        tolerance = 1e-9 * max(1.0, abs(high))
        values: List[object] = []
        index = 0
        value = low
        while value <= high + tolerance:
            value = round(value, decimals)
            # Integral grid values are handed over as ints so integer-typed
            # parameters accept e.g. eps=0..2..1 (coerce rejects true floats).
            values.append(int(value) if float(value).is_integer() else value)
            index += 1
            value = low + index * step
        return [parameter.coerce(v) for v in values]
    raise ReproError(
        f"grid axis {name!r}: expected NAME=lo..hi or NAME=lo..hi..step, got {text!r}"
    )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--store/--resume/--no-store`` trio of run and sweep."""
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "persistent result store (sqlite file, created on first use); "
            "evaluated reports are recorded in it. Defaults to the "
            "REPRO_STORE environment variable when set."
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "serve requests already recorded in the store instead of "
            "re-evaluating them (needs --store or REPRO_STORE)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="bypass --store/REPRO_STORE entirely and run everything fresh",
    )


def _open_store(args: argparse.Namespace):
    """The :class:`ResultStore` the flags select, or ``None`` for no store.

    ``--no-store`` wins over everything (including ``--resume``): the bypass
    must always be able to run fresh, whatever the environment says.
    """
    if args.no_store:
        return None
    path = args.store or os.environ.get("REPRO_STORE")
    if path is None:
        if args.resume:
            raise ReproError(
                "--resume needs a result store; pass --store PATH or set "
                "the REPRO_STORE environment variable"
            )
        return None
    from repro.experiments.store import ResultStore

    return ResultStore(path)


def build_parser() -> argparse.ArgumentParser:
    """The :mod:`argparse` command tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run the Halpern-Moses scenarios: list and describe registered "
            "scenarios, evaluate formula batches, sweep parameter grids."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--json", action="store_true", help="emit JSON")

    describe = subparsers.add_parser(
        "describe", help="show a scenario's parameters and default formulas"
    )
    describe.add_argument("scenario", help="registered scenario name")
    describe.add_argument("--json", action="store_true", help="emit JSON")

    check = subparsers.add_parser(
        "check",
        help=(
            "statically check formulas against a scenario's signature "
            "(nothing is built or evaluated)"
        ),
    )
    check.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help=(
            "registered scenario name; omit to check bare -f formulas "
            "(structural checks only) or with --all"
        ),
    )
    check.add_argument(
        "-p",
        "--param",
        metavar="NAME=VALUE",
        action="append",
        default=[],
        type=_parse_assignment,
        help="set a scenario parameter (repeatable; shapes the signature)",
    )
    check.add_argument(
        "-f",
        "--formula",
        metavar="TEXT",
        action="append",
        default=[],
        help=(
            "check this formula text instead of the scenario's default "
            "suite (repeatable)"
        ),
    )
    check.add_argument(
        "--all",
        dest="all_scenarios",
        action="store_true",
        help="check every registered scenario's default formula suite",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="promote warnings to errors: any diagnostic at all exits 1",
    )
    check.add_argument("--json", action="store_true", help="emit JSON")

    run = subparsers.add_parser(
        "run", help="build one scenario instance and evaluate formulas on it"
    )
    run.add_argument("scenario", help="registered scenario name")
    run.add_argument(
        "-p",
        "--param",
        metavar="NAME=VALUE",
        action="append",
        default=[],
        type=_parse_assignment,
        help="set a scenario parameter (repeatable)",
    )
    run.add_argument(
        "-f",
        "--formula",
        metavar="TEXT",
        action="append",
        default=[],
        help="evaluate this formula instead of the scenario defaults (repeatable)",
    )
    run.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default=None,
        help="engine backend (default: the process-wide default, frozenset)",
    )
    run.add_argument(
        "--minimize",
        action="store_true",
        help=(
            "evaluate on the bisimulation quotient of the model (system "
            "scenarios are exported to a Kripke structure over their points "
            "first; static-fragment formulas only)"
        ),
    )
    _add_store_arguments(run)
    run.add_argument("--json", action="store_true", help="emit JSON")

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario over a parameter grid, optionally per backend"
    )
    sweep.add_argument("scenario", help="registered scenario name")
    sweep.add_argument(
        "-g",
        "--grid",
        metavar="NAME=SPEC",
        action="append",
        default=[],
        type=_parse_assignment,
        help=(
            "grid axis: NAME=lo..hi (inclusive int range), NAME=lo..hi..step "
            "(numeric range with step, for float parameters) or NAME=v1,v2 "
            "(repeatable)"
        ),
    )
    sweep.add_argument(
        "-p",
        "--param",
        metavar="NAME=VALUE",
        action="append",
        default=[],
        type=_parse_assignment,
        help="fix a non-swept parameter (repeatable)",
    )
    sweep.add_argument(
        "-f",
        "--formula",
        metavar="TEXT",
        action="append",
        default=[],
        help="evaluate this formula instead of the scenario defaults (repeatable)",
    )
    sweep.add_argument(
        "--backends",
        default="frozenset",
        help="comma-separated backends, or 'both' (default: frozenset)",
    )
    sweep.add_argument(
        "--minimize",
        action="store_true",
        help=(
            "evaluate every grid point on its bisimulation quotient (system "
            "scenarios are exported to Kripke first; static-fragment formulas "
            "only)"
        ),
    )
    sweep.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shard the grid across N worker processes (0 = one per CPU; "
            "default: run in-process). Reports keep the serial sweep's "
            "deterministic grid order either way."
        ),
    )
    sweep.add_argument(
        "--on-error",
        choices=ON_ERROR_MODES,
        default="abort",
        help=(
            "what to do with a grid point that exhausts its retries: 'abort' "
            "the sweep (default, exit code 1) or 'skip' it — the point is "
            "quarantined as a structured error row, every other point still "
            "completes, and the sweep exits 3"
        ),
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "re-attempt a failed grid point up to N times before giving up "
            "(default: 0, fail on first error)"
        ),
    )
    sweep.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help=(
            "base delay between re-attempts of the same point, doubled per "
            "failure (default: 0.05s)"
        ),
    )
    sweep.add_argument(
        "--timeout-per-point",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "watchdog budget per grid point: a chunk still running past "
            "points x budget has its worker killed and the points re-enter "
            "supervision as timeouts (default: no watchdog)"
        ),
    )
    _add_store_arguments(sweep)
    sweep.add_argument("--json", action="store_true", help="emit JSON")

    store = subparsers.add_parser(
        "store", help="inspect or prune a persistent result store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    stats = store_commands.add_parser(
        "stats", help="row counts, per-scenario slices and provenance of a store"
    )
    stats.add_argument("path", help="the store's sqlite file")
    stats.add_argument("--json", action="store_true", help="emit JSON")
    gc = store_commands.add_parser(
        "gc", help="delete rows from a store and reclaim the space"
    )
    gc.add_argument("path", help="the store's sqlite file")
    gc.add_argument(
        "--scenario", default=None, help="only rows of this scenario"
    )
    gc.add_argument(
        "--backend", default=None, choices=_BACKEND_CHOICES, help="only rows of this backend"
    )
    gc.add_argument(
        "--stale",
        action="store_true",
        help=(
            "rows recorded under a different semantics version (afterwards "
            "the store opens normally under the current one)"
        ),
    )
    gc.add_argument(
        "--all", dest="all_rows", action="store_true", help="every row"
    )
    gc.add_argument("--json", action="store_true", help="emit JSON")

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run the long-lived evaluation service (scenario registry, "
            "runner caches and store stay resident across HTTP requests)"
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8750,
        help="port to bind; 0 picks an ephemeral port (default: 8750)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "persistent result store backing the service (default: the "
            "REPRO_STORE environment variable; no store if unset)"
        ),
    )
    serve.add_argument(
        "--no-store",
        action="store_true",
        help="serve without persistence even if REPRO_STORE is set",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "model-check executor threads (default: the executor's own "
            "cpu-based default)"
        ),
    )

    bench = subparsers.add_parser(
        "bench", help="benchmark regression tracking (BENCH_results.json)"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    compare = bench_commands.add_parser(
        "compare",
        help=(
            "diff a benchmark report against the committed baseline; exits 1 "
            "on regression"
        ),
    )
    compare.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline report (default: the repo's committed BENCH_results.json)",
    )
    compare.add_argument(
        "--current",
        default=None,
        metavar="PATH",
        help=(
            "report to compare against the baseline; omitted = run the "
            "benchmark suite now via tools/bench_report.py"
        ),
    )
    compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "allowed mean slowdown as a fraction (default 0.5 = 50%%; means "
            "are noisy, keep this generous)"
        ),
    )
    compare.add_argument(
        "--tolerance-for",
        action="append",
        default=[],
        metavar="GLOB=FRACTION",
        type=_parse_assignment,
        help=(
            "per-benchmark tolerance override; GLOB matches the benchmark "
            "name or file::name (repeatable, last match wins)"
        ),
    )
    compare.add_argument(
        "--quick",
        action="store_true",
        help=(
            "coverage-only comparison (for --quick smoke reports, which "
            "carry no timings): every baseline module must still be present"
        ),
    )
    compare.add_argument(
        "--allow-missing",
        action="store_true",
        help="benchmarks missing from the current report are not failures",
    )
    compare.add_argument("--json", action="store_true", help="emit JSON")
    return parser


# -- subcommand implementations ------------------------------------------------

def _cmd_list(args: argparse.Namespace) -> int:
    specs = all_scenarios()
    if args.json:
        payload = [
            {
                "name": spec.name,
                "section": spec.section,
                "summary": spec.summary,
                "parameters": [parameter.name for parameter in spec.parameters],
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        (
            spec.name,
            spec.section,
            ", ".join(parameter.name for parameter in spec.parameters),
            spec.summary,
        )
        for spec in specs
    ]
    print(_render_table(("scenario", "paper section", "parameters", "summary"), rows))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    defaults = spec.validate_params({}) if not any(p.required for p in spec.parameters) else None
    formulas = spec.default_formulas() if defaults is not None else {}
    if args.json:
        payload = {
            "name": spec.name,
            "section": spec.section,
            "summary": spec.summary,
            "details": spec.details,
            "parameters": [
                {
                    "name": parameter.name,
                    "type": parameter.type.__name__,
                    "required": parameter.required,
                    "default": parameter.default,
                    "minimum": parameter.minimum,
                    "maximum": parameter.maximum,
                    "choices": list(parameter.choices) if parameter.choices else None,
                    "description": parameter.description,
                }
                for parameter in spec.parameters
            ],
            "default_formulas": {label: str(f) for label, f in formulas.items()},
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{spec.name} — {spec.summary}")
    print(f"reproduces: {spec.section}")
    if spec.details:
        print(f"\n{spec.details}")
    print("\nparameters:")
    for parameter in spec.parameters:
        line = f"  {parameter.describe()}"
        if parameter.description:
            line += f" — {parameter.description}"
        print(line)
    if formulas:
        print("\ndefault formulas (at default parameters):")
        for label, formula in formulas.items():
            print(f"  {label:24s} {formula}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import (
        Diagnostic,
        has_errors,
        render_diagnostics,
        summarize,
    )
    from repro.logic.check import check_formulas, check_text

    if args.all_scenarios:
        if args.scenario is not None or args.formula or args.param:
            raise ReproError(
                "--all checks every registered scenario's default suite; "
                "it takes no scenario, -p or -f"
            )
        targets = [spec for spec in all_scenarios()]
    elif args.scenario is not None:
        targets = [get_scenario(args.scenario)]
    else:
        if not args.formula:
            raise ReproError(
                "check needs a scenario, -f FORMULA text, or --all"
            )
        if args.param:
            raise ReproError("-p needs a scenario to validate against")
        targets = [None]

    results: List[Tuple[str, List[Diagnostic], int]] = []
    for spec in targets:
        if spec is None:
            name, signature, validated = "", None, None
        else:
            name = spec.name
            if args.all_scenarios and any(p.required for p in spec.parameters):
                # No complete default assignment, so no default suite to lint.
                results.append((name, [], 0))
                continue
            validated = spec.validate_params(dict(args.param))
            signature = spec.signature_for(validated)
        if args.formula:
            checked = len(args.formula)
            diagnostics: List[Diagnostic] = []
            for text in args.formula:
                _formula, found = check_text(text, signature, label=text)
                diagnostics.extend(found)
        else:
            suite = spec.default_formulas(validated)
            checked = len(suite)
            diagnostics = check_formulas(suite, signature)
        results.append((name, diagnostics, checked))

    every: List[Diagnostic] = [d for _, diags, _ in results for d in diags]
    failed = has_errors(every, strict=args.strict)
    if args.json:
        payload = {
            "ok": not failed,
            "strict": args.strict,
            "checked": sum(checked for _, _, checked in results),
            "results": [
                {
                    "scenario": name or None,
                    "checked": checked,
                    "diagnostics": [d.to_dict() for d in diags],
                }
                for name, diags, checked in results
            ],
        }
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0
    for name, diagnostics, checked in results:
        prefix = f"{name}: " if name else ""
        if not diagnostics:
            print(f"{prefix}{checked} formula(s) clean")
            continue
        print(f"{prefix}{checked} formula(s), {summarize(diagnostics)}")
        for line in render_diagnostics(diagnostics):
            print(f"  {line}")
    if failed:
        print(
            "check failed: "
            + summarize(every)
            + (" (warnings promoted by --strict)" if args.strict else "")
        )
    return 1 if failed else 0


def _failure_summary(quarantined: Sequence[ExperimentReport]) -> Dict[str, object]:
    """The machine-readable failure block of a completed-with-quarantine sweep."""
    return {
        "quarantined": len(quarantined),
        "points": [
            {
                "scenario": report.scenario,
                "params": dict(report.params),
                "backend": report.backend,
                "kind": report.error["kind"],
                "message": report.error["message"],
                "attempts": list(report.error["attempts"]),
            }
            for report in quarantined
        ],
    }


@contextmanager
def _interrupt_deferred():
    """Hold SIGINT while one JSON array element is written out.

    A Ctrl-C landing *inside* an element write would leave a truncated
    element that no amount of closing-bracket care can make well-formed
    again — stdout flushes in blocks, so partial elements really do reach the
    reader.  Blocking the signal for the (microseconds-long) write makes each
    element atomic with respect to interruption: a pending Ctrl-C is
    delivered right after the write, between elements, where the stream can
    be closed cleanly.  No-op off the main thread or where signal masks
    don't exist (Windows).
    """
    if (
        not hasattr(signal, "pthread_sigmask")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    previous = signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGINT})
    try:
        yield
    finally:
        signal.pthread_sigmask(signal.SIG_SETMASK, previous)


def _stream_json_reports(
    reports: "Iterable[ExperimentReport]",
) -> List[ExperimentReport]:
    """Print a JSON array of reports incrementally, one element per report.

    Byte-identical to ``json.dumps([r.to_dict() for r in reports], indent=2)``
    but each element is written (and flushed) as soon as its report is ready,
    so a long — possibly sharded — sweep shows progress instead of buffering
    everything until the end.  If a later grid point fails mid-stream — or the
    sweep is interrupted with Ctrl-C — the array is closed before the
    error propagates, so stdout always carries well-formed JSON (holding the
    grid-order prefix of completed reports) while the failure goes to stderr
    with the documented exit code (1 abort, 130 interrupt).

    A sweep that *completes* with quarantined points gets one trailing
    ``{"failure_summary": ...}`` array element naming every quarantined point
    and its attempt history; clean sweeps emit no trailer, keeping their
    output byte-identical to the unsupervised renderer.  Returns the
    quarantined reports so the caller can pick exit code 3.
    """
    quarantined: List[ExperimentReport] = []
    first = True
    completed = False
    try:
        for report in reports:
            element = json.dumps(report.to_dict(), indent=2)
            with _interrupt_deferred():
                sys.stdout.write("[\n" if first else ",\n")
                first = False
                sys.stdout.write("  " + element.replace("\n", "\n  "))
                sys.stdout.flush()
            if report.error is not None:
                quarantined.append(report)
        completed = True
    finally:
        with _interrupt_deferred():
            if completed and quarantined:
                summary = json.dumps(
                    {"failure_summary": _failure_summary(quarantined)}, indent=2
                )
                sys.stdout.write("[\n" if first else ",\n")
                first = False
                sys.stdout.write("  " + summary.replace("\n", "\n  "))
            # A sweep always yields at least one report when it completes, but
            # keep the empty rendering well-formed too (json.dumps([]) == "[]").
            print("[]" if first else "\n]")
            sys.stdout.flush()
    return quarantined


def _report_rows(report: ExperimentReport) -> List[Tuple[object, ...]]:
    return [
        (
            row.label,
            row.formula,
            f"{row.count}/{row.universe}",
            _yes_no(row.valid),
            _yes_no(row.satisfiable),
            _yes_no(row.holds_at_focus),
        )
        for row in report.rows
    ]


def _cmd_run(args: argparse.Namespace) -> int:
    store = _open_store(args)
    try:
        runner = ExperimentRunner(store=store, resume=args.resume)
        params = dict(args.param)
        formulas = args.formula or None
        report = runner.run(
            args.scenario,
            params,
            formulas=formulas,
            backend=args.backend,
            minimize=args.minimize,
        )
    finally:
        if store is not None:
            store.close()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(
        f"scenario: {report.scenario}  params: {_format_params(report.params) or '(defaults)'}"
        f"  backend: {report.backend}"
    )
    print(
        f"model: {report.kind}, {report.universe} "
        f"{'bisimulation classes' if report.minimized else ('worlds' if report.kind == 'kripke' else 'points')}"
        f" (built in {report.build_seconds * 1000:.1f} ms,"
        f" evaluated in {report.eval_seconds * 1000:.1f} ms"
        f"{', served from store' if report.from_store else ''})"
    )
    if report.focus is not None:
        print(f"focus: {report.focus}")
    print()
    print(
        _render_table(
            ("label", "formula", "count", "valid", "sat", "holds@focus"),
            _report_rows(report),
        )
    )
    return 0


def _print_failure_summary(
    quarantined: Sequence[ExperimentReport], total: int
) -> None:
    """The human-readable failure block under a sweep table (exit code 3)."""
    print()
    print(
        f"failure summary: {len(quarantined)} of {total} grid point(s) quarantined"
    )
    for report in quarantined:
        error = report.error
        print(
            f"  {report.scenario} {_format_params(report.params)} "
            f"[{report.backend}]: {error['kind']}: {error['message']} "
            f"({len(error['attempts'])} attempt(s))"
        )


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    if not args.grid:
        raise ReproError("sweep needs at least one -g/--grid axis")
    grid: Dict[str, List[object]] = {}
    for name, text in args.grid:
        values = _parse_grid_values(spec, name, text)
        if not values:
            # Caught here (not at stream time) so an empty axis stays a usage
            # error with exit code 2.
            raise ReproError(f"grid axis {name!r} has no values")
        grid[name] = values
    # Fault-policy flags are validated up front too: a bad --retries is a
    # usage error (exit 2), not a failed sweep.
    policy = FaultPolicy(
        on_error=args.on_error,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        timeout_per_point=args.timeout_per_point,
    )
    resolve_jobs(args.jobs)  # fail fast: a bad --jobs is a usage error, exit 2
    fixed = dict(args.param)
    for name in fixed:
        if name in grid:
            raise ReproError(f"parameter {name!r} is both fixed (-p) and swept (-g)")

    backends_text = args.backends.strip().lower()
    if backends_text == "both":
        backends: Sequence[str] = _BACKEND_CHOICES
    else:
        backends = tuple(part.strip() for part in backends_text.split(",") if part.strip())
    for backend in backends:
        if backend not in _BACKEND_CHOICES:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {_BACKEND_CHOICES} or 'both'"
            )

    store = _open_store(args)
    runner = ExperimentRunner(store=store, resume=args.resume)
    formulas = args.formula or None
    # The runner's grid covers only the swept axes; fixed parameters ride along
    # as single-value axes so every grid point sees them.
    full_grid: Dict[str, List[object]] = dict(grid)
    for name, value in fixed.items():
        full_grid[name] = [spec.parameter(name).coerce(value)]
    try:
        report_stream = runner.iter_sweep(
            args.scenario,
            full_grid,
            formulas=formulas,
            backends=backends,
            minimize=args.minimize,
            jobs=args.jobs,
            policy=policy,
        )
        try:
            if args.json:
                quarantined = _stream_json_reports(report_stream)
                return 3 if quarantined else 0
            reports = list(report_stream)
        except SweepFaultError:
            raise
        except ReproError as error:
            # Execution has started: a mid-sweep failure is an aborted sweep
            # (exit 1), not a usage error.
            raise SweepFaultError(f"sweep aborted: {error}") from error
        finally:
            report_stream.close()
    finally:
        if store is not None:
            store.close()
    labels: List[str] = []
    for report in reports:
        for row in report.rows:
            if row.label not in labels:
                labels.append(row.label)
    swept = list(grid)
    headers = tuple(swept) + ("backend", "size", "eval ms") + tuple(labels)
    table_rows = []
    quarantined = [report for report in reports if report.error is not None]
    for report in reports:
        by_label = {row.label: row for row in report.rows}
        cells: List[object] = [report.params.get(name, "") for name in swept]
        if report.error is not None:
            cells += [report.backend, "-", "-"] + ["ERR"] * len(labels)
            table_rows.append(tuple(cells))
            continue
        cells += [report.backend, report.universe, f"{report.eval_seconds * 1000:.2f}"]
        for label in labels:
            row = by_label.get(label)
            if row is None:
                cells.append("")
            elif row.holds_at_focus is not None:
                cells.append("T" if row.holds_at_focus else "F")
            else:
                cells.append(f"{row.count}/{row.universe}")
        table_rows.append(tuple(cells))
    print(_render_table(headers, table_rows))
    if quarantined:
        _print_failure_summary(quarantined, len(reports))
        return 3
    return 0


def _open_existing_store(path: str):
    """Open an existing store for inspection (no silent creation, any semantics).

    ``stats``/``gc`` must work on stores a newer build would refuse to serve
    from — pruning stale rows is how such a store becomes servable again — so
    the semantics-version check is skipped here.  Schema and corruption checks
    still apply: there is nothing useful to inspect in an unreadable file.
    """
    from repro.experiments.store import ResultStore

    if not os.path.exists(path):
        raise ReproError(
            f"no result store at {path!r} (stores are created by "
            "'repro run/sweep --store PATH')"
        )
    return ResultStore(path, check_semantics=False)


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command == "stats":
        with _open_existing_store(args.path) as store:
            stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
            return 0
        meta = stats["meta"]
        print(f"store: {stats['path']} ({stats['file_bytes']} bytes)")
        print(
            f"schema v{meta.get('schema_version', '?')}, semantics "
            f"v{meta.get('semantics_version', '?')}, created "
            f"{meta.get('created_at', '?')}"
            + (f", git {meta['git_sha'][:12]}" if meta.get("git_sha") else "")
        )
        print(f"rows: {stats['rows']} ({stats['stale_rows']} stale)")
        if stats["slices"]:
            print()
            print(
                _render_table(
                    ("scenario", "backend", "minimized", "rows"),
                    [
                        (
                            s["scenario"],
                            s["backend"],
                            _yes_no(s["minimized"]),
                            s["rows"],
                        )
                        for s in stats["slices"]
                    ],
                )
            )
        return 0
    if args.store_command == "gc":
        with _open_existing_store(args.path) as store:
            removed = store.gc(
                scenario=args.scenario,
                backend=args.backend,
                stale=args.stale,
                all_rows=args.all_rows,
            )
            remaining = store.stats()["rows"]
        if args.json:
            print(json.dumps({"removed": removed, "remaining": remaining}))
        else:
            print(f"removed {removed} row(s); {remaining} remaining")
        return 0
    raise ReproError(f"unknown store command {args.store_command!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import benchcompare

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = benchcompare.default_baseline_path()
    baseline = benchcompare.load_report(baseline_path)
    if args.current is not None:
        current = benchcompare.load_report(args.current)
    else:
        current = benchcompare.generate_current(quick=args.quick)
    overrides = []
    for name, value in args.tolerance_for:
        try:
            overrides.append((name, float(value)))
        except ValueError:
            raise ReproError(
                f"--tolerance-for {name}={value!r}: expected a number"
            ) from None
    result = benchcompare.compare_reports(
        baseline,
        current,
        tolerance=(
            benchcompare.DEFAULT_TOLERANCE
            if args.tolerance is None
            else args.tolerance
        ),
        overrides=overrides,
        quick=args.quick,
        allow_missing=args.allow_missing,
    )
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(benchcompare.render_comparison(result))
    return 0 if result["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_server

    if args.workers is not None and args.workers < 1:
        raise ReproError(f"--workers must be at least 1, got {args.workers}")
    store_path = None if args.no_store else (args.store or os.environ.get("REPRO_STORE"))
    # run_server prints the bound address once listening, blocks until
    # Ctrl-C, shuts down gracefully, and re-raises KeyboardInterrupt so the
    # standard 130 path below applies.
    run_server(
        host=args.host,
        port=args.port,
        store_path=store_path,
        max_workers=args.workers,
    )
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "describe": _cmd_describe,
    "check": _cmd_check,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.errors.ReproError`) are reported on stderr
    with exit code 2 instead of a traceback — except a sweep that failed
    *mid-run* (:class:`~repro.errors.SweepFaultError`), which exits 1, and a
    Ctrl-C, which exits 130 after committing completed rows; a sweep that
    completed with quarantined points exits 3.  The full contract is in the
    module docstring.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except SweepFaultError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Generator/`finally` unwinding has already closed any --json stream,
        # cancelled queued work and committed completed rows by the time the
        # interrupt reaches here; exit like a signal-terminated Unix process.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Piping into e.g. `head` closes stdout early; exit quietly like
        # standard Unix tools (and keep the interpreter's shutdown flush from
        # raising a second time).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
