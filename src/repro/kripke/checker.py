"""Model checking the epistemic language over finite Kripke structures.

The checker computes, for each formula, the *extension* — the set of worlds at which
the formula holds — by structural recursion, following the clauses (a)–(g) of
Section 6 of the paper:

* ``K_i phi`` holds at ``w`` iff ``phi`` holds at every world in ``i``'s
  equivalence class of ``w``.
* ``D_G phi`` holds at ``w`` iff ``phi`` holds at every world in the *intersection*
  of the members' classes (the group's joint view).
* ``E_G phi`` is the conjunction of ``K_i phi`` over the group.
* ``C_G phi`` holds at ``w`` iff ``phi`` holds at every world G-reachable from ``w``;
  equivalently it is the greatest fixed point of ``X == E_G(phi & X)`` (Appendix A).
  Both evaluation strategies are implemented; they agree on finite structures and the
  benchmark ``bench_fixpoint`` compares their cost.

Temporal-epistemic operators (``C^eps``, ``C^<>``, ``C^T``, ``<>``) have no meaning on
a bare Kripke structure — they need runs and time — so the checker raises
:class:`~repro.errors.EvaluationError` for them.  Use
:class:`repro.systems.interpretation.ViewBasedInterpretation` for those.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import EvaluationError
from repro.logic.fixpoint import greatest_fixpoint, least_fixpoint
from repro.logic.syntax import (
    And,
    Always,
    Common,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Distributed,
    Everyone,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Eventually,
    FalseFormula,
    Formula,
    GreatestFixpoint,
    Iff,
    Implies,
    Knows,
    KnowsAt,
    LeastFixpoint,
    Not,
    Or,
    Prop,
    Someone,
    TrueFormula,
    Var,
)
from repro.kripke.structure import KripkeStructure, World

__all__ = ["ModelChecker", "CommonKnowledgeStrategy"]


class CommonKnowledgeStrategy:
    """Evaluation strategies for ``C_G phi`` (an ablation knob, see DESIGN.md §5)."""

    REACHABILITY = "reachability"
    """Evaluate via G-reachability (Section 6's graph characterisation)."""

    FIXPOINT = "fixpoint"
    """Evaluate via the greatest-fixed-point iteration of Appendix A."""

    ALL = (REACHABILITY, FIXPOINT)


class ModelChecker:
    """Evaluate formulas over a :class:`~repro.kripke.structure.KripkeStructure`.

    Results are memoised per formula (the cache key includes the fixpoint-variable
    environment), so repeatedly querying the same structure is cheap.

    Examples
    --------
    >>> from repro.kripke.builders import observed_variable_model
    >>> from repro.logic import K, C, prop
    >>> model = observed_variable_model(["a", "b"], ["p"])  # doctest: +SKIP
    """

    def __init__(
        self,
        structure: KripkeStructure,
        common_strategy: str = CommonKnowledgeStrategy.REACHABILITY,
    ):
        if common_strategy not in CommonKnowledgeStrategy.ALL:
            raise EvaluationError(
                f"unknown common-knowledge strategy {common_strategy!r}; "
                f"expected one of {CommonKnowledgeStrategy.ALL}"
            )
        self._structure = structure
        self._strategy = common_strategy
        self._cache: Dict[
            Tuple[Formula, Tuple[Tuple[str, FrozenSet[World]], ...]], FrozenSet[World]
        ] = {}

    @property
    def structure(self) -> KripkeStructure:
        """The structure being checked."""
        return self._structure

    # -- public API ------------------------------------------------------------
    def extension(
        self,
        formula: Formula,
        environment: Optional[Mapping[str, FrozenSet[World]]] = None,
    ) -> FrozenSet[World]:
        """The set of worlds at which ``formula`` holds.

        ``environment`` assigns extensions to free fixpoint variables; formulas
        without free variables never need it.
        """
        env: Dict[str, FrozenSet[World]] = dict(environment or {})
        return self._evaluate(formula, env)

    def holds(
        self,
        formula: Formula,
        world: World,
        environment: Optional[Mapping[str, FrozenSet[World]]] = None,
    ) -> bool:
        """Whether ``formula`` holds at ``world``."""
        return world in self.extension(formula, environment)

    def is_valid(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at every world of the structure.

        This is the notion "valid in the system" used for the necessitation rule R1
        and the induction rule C2.
        """
        return self.extension(formula) == self._structure.worlds

    def is_satisfiable(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at some world of the structure."""
        return bool(self.extension(formula))

    def clear_cache(self) -> None:
        """Drop all memoised extensions (useful in benchmarks)."""
        self._cache.clear()

    # -- evaluation -------------------------------------------------------------
    def _evaluate(
        self, formula: Formula, env: Dict[str, FrozenSet[World]]
    ) -> FrozenSet[World]:
        key = (formula, tuple(sorted(env.items())))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._evaluate_uncached(formula, env)
        self._cache[key] = result
        return result

    def _evaluate_uncached(
        self, formula: Formula, env: Dict[str, FrozenSet[World]]
    ) -> FrozenSet[World]:
        structure = self._structure
        worlds = structure.worlds

        if isinstance(formula, TrueFormula):
            return worlds
        if isinstance(formula, FalseFormula):
            return frozenset()
        if isinstance(formula, Prop):
            return frozenset(w for w in worlds if structure.holds_at(formula.name, w))
        if isinstance(formula, Var):
            if formula.name not in env:
                raise EvaluationError(
                    f"fixpoint variable {formula.name!r} is free and unbound"
                )
            return env[formula.name]
        if isinstance(formula, Not):
            return worlds - self._evaluate(formula.operand, env)
        if isinstance(formula, And):
            result = worlds
            for operand in formula.operands:
                result = result & self._evaluate(operand, env)
                if not result:
                    break
            return result
        if isinstance(formula, Or):
            result: FrozenSet[World] = frozenset()
            for operand in formula.operands:
                result = result | self._evaluate(operand, env)
            return result
        if isinstance(formula, Implies):
            antecedent = self._evaluate(formula.antecedent, env)
            consequent = self._evaluate(formula.consequent, env)
            return (worlds - antecedent) | consequent
        if isinstance(formula, Iff):
            left = self._evaluate(formula.left, env)
            right = self._evaluate(formula.right, env)
            return frozenset(w for w in worlds if (w in left) == (w in right))

        if isinstance(formula, Knows):
            body = self._evaluate(formula.operand, env)
            return frozenset(
                w
                for w in worlds
                if structure.equivalence_class(formula.agent, w) <= body
            )
        if isinstance(formula, Someone):
            body = self._evaluate(formula.operand, env)
            return frozenset(
                w
                for w in worlds
                if any(
                    structure.equivalence_class(agent, w) <= body
                    for agent in formula.group
                )
            )
        if isinstance(formula, Everyone):
            body = self._evaluate(formula.operand, env)
            return frozenset(
                w
                for w in worlds
                if all(
                    structure.equivalence_class(agent, w) <= body
                    for agent in formula.group
                )
            )
        if isinstance(formula, Distributed):
            body = self._evaluate(formula.operand, env)
            return frozenset(
                w for w in worlds if structure.joint_class(formula.group, w) <= body
            )
        if isinstance(formula, Common):
            return self._evaluate_common(formula, env)

        if isinstance(formula, GreatestFixpoint):
            return self._evaluate_fixpoint(formula, env, greatest=True)
        if isinstance(formula, LeastFixpoint):
            return self._evaluate_fixpoint(formula, env, greatest=False)

        if isinstance(
            formula,
            (
                EveryoneEps,
                CommonEps,
                EveryoneDiamond,
                CommonDiamond,
                KnowsAt,
                EveryoneAt,
                CommonAt,
                Eventually,
                Always,
            ),
        ):
            raise EvaluationError(
                f"{type(formula).__name__} requires a runs-and-systems model; "
                "use repro.systems.ViewBasedInterpretation instead of a bare Kripke "
                "structure"
            )
        raise EvaluationError(f"unsupported formula node {type(formula).__name__}")

    def _evaluate_common(
        self, formula: Common, env: Dict[str, FrozenSet[World]]
    ) -> FrozenSet[World]:
        structure = self._structure
        body = self._evaluate(formula.operand, env)
        if self._strategy == CommonKnowledgeStrategy.REACHABILITY:
            result = set()
            component_cache: Dict[World, FrozenSet[World]] = {}
            for world in structure.worlds:
                component = component_cache.get(world)
                if component is None:
                    component = structure.reachable(formula.group, world)
                    for member in component:
                        component_cache[member] = component
                if component <= body:
                    result.add(world)
            return frozenset(result)

        # Fixpoint strategy: C_G phi = nu X. E_G(phi & X)  (Appendix A).
        def transformer(current: FrozenSet[World]) -> FrozenSet[World]:
            target = body & current
            return frozenset(
                w
                for w in structure.worlds
                if all(
                    structure.equivalence_class(agent, w) <= target
                    for agent in formula.group
                )
            )

        return greatest_fixpoint(transformer, structure.worlds).result

    def _evaluate_fixpoint(
        self,
        formula,
        env: Dict[str, FrozenSet[World]],
        greatest: bool,
    ) -> FrozenSet[World]:
        structure = self._structure

        def transformer(current: FrozenSet[World]) -> FrozenSet[World]:
            inner_env = dict(env)
            inner_env[formula.variable] = current
            return self._evaluate(formula.body, inner_env)

        if greatest:
            return greatest_fixpoint(transformer, structure.worlds).result
        return least_fixpoint(transformer, structure.worlds).result
