"""Model checking the epistemic language over finite Kripke structures.

The checker computes, for each formula, the *extension* — the set of worlds at which
the formula holds — by structural recursion, following the clauses (a)–(g) of
Section 6 of the paper:

* ``K_i phi`` holds at ``w`` iff ``phi`` holds at every world in ``i``'s
  equivalence class of ``w``.
* ``D_G phi`` holds at ``w`` iff ``phi`` holds at every world in the *intersection*
  of the members' classes (the group's joint view).
* ``E_G phi`` is the conjunction of ``K_i phi`` over the group.
* ``C_G phi`` holds at ``w`` iff ``phi`` holds at every world G-reachable from ``w``;
  equivalently it is the greatest fixed point of ``X == E_G(phi & X)`` (Appendix A).
  Both evaluation strategies are implemented; they agree on finite structures and the
  benchmark ``bench_fixpoint`` compares their cost.

Backend architecture
--------------------
Since the bitset-engine refactor, :class:`ModelChecker` no longer evaluates formulas
itself: it instantiates a shared :class:`repro.engine.EvaluationEngine` over the
structure's worlds and delegates every query to it.  The engine is generic over a
set-representation backend (the ``backend`` constructor argument):

* ``"frozenset"`` (default) — the reference semantics, a literal transcription of the
  paper's clauses over ``frozenset`` extensions;
* ``"bitset"`` — extensions as integer bitmasks over
  :meth:`KripkeStructure.indexed_universe`, with per-agent partition masks and
  per-group reachability closures precomputed, which is substantially faster on the
  fixpoint-heavy common-knowledge queries (see ``benchmarks/bench_model_checking.py``).

The two backends are kept observably identical by the differential harness in
``tests/test_engine_equivalence.py``.  Results are memoised per formula structure
(the cache key includes the fixpoint-variable environment), so repeatedly querying
the same structure is cheap; :meth:`ModelChecker.extensions` evaluates a batch of
formulas against one shared memo.

Temporal-epistemic operators (``C^eps``, ``C^<>``, ``C^T``, ``<>``) have no meaning on
a bare Kripke structure — they need runs and time — so the checker raises
:class:`~repro.errors.EvaluationError` for them.  Use
:class:`repro.systems.interpretation.ViewBasedInterpretation` for those.
"""

from __future__ import annotations

from typing import (
    Callable,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
)

from repro.engine import (
    COMMON_FIXPOINT,
    COMMON_REACHABILITY,
    BitsetBackend,
    EvaluationEngine,
    resolve_backend_name,
)
from repro.errors import EvaluationError
from repro.logic.syntax import (
    Always,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Eventually,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Formula,
    KnowsAt,
)
from repro.kripke.structure import KripkeStructure, World

__all__ = ["ModelChecker", "CommonKnowledgeStrategy"]

_TEMPORAL_NODES = (
    EveryoneEps,
    CommonEps,
    EveryoneDiamond,
    CommonDiamond,
    KnowsAt,
    EveryoneAt,
    CommonAt,
    Eventually,
    Always,
)


class CommonKnowledgeStrategy:
    """Evaluation strategies for ``C_G phi`` (an ablation knob, see DESIGN.md §5).

    The names alias the engine's own constants so the two modules cannot drift.
    """

    REACHABILITY = COMMON_REACHABILITY
    """Evaluate via G-reachability (Section 6's graph characterisation)."""

    FIXPOINT = COMMON_FIXPOINT
    """Evaluate via the greatest-fixed-point iteration of Appendix A."""

    ALL = (REACHABILITY, FIXPOINT)


class ModelChecker:
    """Evaluate formulas over a :class:`~repro.kripke.structure.KripkeStructure`.

    Results are memoised per formula (the cache key includes the fixpoint-variable
    environment), so repeatedly querying the same structure is cheap.

    Parameters
    ----------
    structure:
        The Kripke structure to check.
    common_strategy:
        How ``C_G`` is evaluated (:class:`CommonKnowledgeStrategy`).
    backend:
        Which engine backend represents extensions: ``"frozenset"`` (the reference
        semantics) or ``"bitset"`` (fast bitmask evaluation).  ``None`` picks the
        process-wide default (:func:`repro.engine.get_default_backend`).

    Examples
    --------
    >>> from repro.kripke.builders import observed_variable_model
    >>> from repro.logic import K, C, prop
    >>> model = observed_variable_model(["a", "b"], ["p"])  # doctest: +SKIP
    """

    def __init__(
        self,
        structure: KripkeStructure,
        common_strategy: str = CommonKnowledgeStrategy.REACHABILITY,
        backend: Optional[str] = None,
    ):
        # Fail fast, before any mask precomputation; the vocabulary is shared with
        # the engine via the CommonKnowledgeStrategy aliases above, so this check
        # cannot drift from the engine's own validation.
        if common_strategy not in CommonKnowledgeStrategy.ALL:
            raise EvaluationError(
                f"unknown common-knowledge strategy {common_strategy!r}; "
                f"expected one of {CommonKnowledgeStrategy.ALL}"
            )
        self._structure = structure
        engine_backend = backend
        if resolve_backend_name(backend) == BitsetBackend.name:
            # Share the structure's cached masks: the world <-> bit numbering, the
            # per-agent partition masks and the per-group reachability closures are
            # computed once per structure, so a second checker over the same
            # structure constructs in O(agents) and reuses the closures.
            engine_backend = BitsetBackend.from_precomputed(
                structure.indexed_universe(),
                {a: structure.partition_masks(a) for a in structure.agents},
                {a: structure.class_masks_in_order(a) for a in structure.agents},
                component_source=structure.component_masks,
            )
        # A prebuilt backend ignores the class maps, so only materialise them for
        # the from-scratch (frozenset) construction path.
        class_maps = (
            {}
            if isinstance(engine_backend, BitsetBackend)
            else {a: structure.partition_map(a) for a in structure.agents}
        )
        self._engine = EvaluationEngine(
            structure.world_order(),
            class_maps,
            self._prop_extension,
            require_agent=self._require_agent,
            require_group=structure.group_members,
            special=self._reject_temporal,
            backend=engine_backend,
            common_strategy=common_strategy,
        )

    @property
    def structure(self) -> KripkeStructure:
        """The structure being checked."""
        return self._structure

    @property
    def engine(self) -> EvaluationEngine:
        """The shared evaluation engine this checker delegates to."""
        return self._engine

    @property
    def backend(self) -> str:
        """The name of the active set-representation backend."""
        return self._engine.backend_name

    @property
    def common_strategy(self) -> str:
        """The active ``C_G`` evaluation strategy."""
        return self._engine.common_strategy

    @common_strategy.setter
    def common_strategy(self, strategy: str) -> None:
        """Switch strategies mid-session; stale memo entries are dropped."""
        self._engine.common_strategy = strategy

    # -- public API ------------------------------------------------------------
    def extension(
        self,
        formula: Formula,
        environment: Optional[Mapping[str, FrozenSet[World]]] = None,
    ) -> FrozenSet[World]:
        """The set of worlds at which ``formula`` holds.

        ``environment`` assigns extensions to free fixpoint variables; formulas
        without free variables never need it.
        """
        return self._engine.extension(formula, environment)

    def extensions(
        self,
        formulas: Iterable[Formula],
        environment: Optional[Mapping[str, FrozenSet[World]]] = None,
    ) -> List[FrozenSet[World]]:
        """Batch evaluation: the extensions of ``formulas`` in order.

        The queries share one subformula memo, so checking a family of related
        formulas (e.g. every level of the knowledge hierarchy) costs little more
        than the deepest one.
        """
        return self._engine.extensions(formulas, environment)

    def holds(
        self,
        formula: Formula,
        world: World,
        environment: Optional[Mapping[str, FrozenSet[World]]] = None,
    ) -> bool:
        """Whether ``formula`` holds at ``world``."""
        return world in self.extension(formula, environment)

    def is_valid(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at every world of the structure.

        This is the notion "valid in the system" used for the necessitation rule R1
        and the induction rule C2.
        """
        return self.extension(formula) == self._structure.worlds

    def is_satisfiable(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at some world of the structure."""
        return bool(self.extension(formula))

    def clear_cache(self) -> None:
        """Drop all memoised extensions (useful in benchmarks).

        This clears the engine's memo as well — the checker keeps no cache of its
        own, so there is no second cache that could fall out of step with it.
        """
        self._engine.clear_cache()

    # -- engine adapters ---------------------------------------------------------
    def _prop_extension(self, name: str) -> FrozenSet[World]:
        # The structure caches proposition extensions as bitmasks; derived
        # structures (announcement restrictions / refinements) inherit them from
        # their parent by remapping, so a checker over an update chain starts
        # with its atomic extensions warm instead of rescanning the valuation.
        return self._structure.prop_worlds(name)

    def _require_agent(self, agent) -> None:
        # Re-raise through the structure so the error message matches direct
        # structure queries ("unknown agent ...").
        self._structure.partition(agent)

    def _reject_temporal(
        self, formula: Formula, evaluate: Callable[[Formula], FrozenSet[World]]
    ) -> Optional[FrozenSet[World]]:
        if isinstance(formula, _TEMPORAL_NODES):
            raise EvaluationError(
                f"{type(formula).__name__} requires a runs-and-systems model; "
                "use repro.systems.ViewBasedInterpretation instead of a bare Kripke "
                "structure"
            )
        return None
