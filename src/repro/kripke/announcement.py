"""Public and private announcements (fact publication).

Section 2 of the paper explains the role of the father's statement in the muddy
children puzzle: publicly announcing a fact that everyone already knows can still
change the group's state of knowledge, because it makes the fact *common knowledge*.
Section 3 calls this "fact publication".  Clark & Marshall's "copresence" is modelled
semantically by restricting the structure to the worlds where the announced fact
holds — after a truthful public announcement the announcement itself (and the fact)
is common knowledge among all agents.

The paper also notes the contrast: "if, instead, the father had taken each child aside
(without the other children noticing) and told her or him about it privately, this
information would have been of no help at all."  :func:`private_announce` models that:
only the addressee's partition is refined by the truth value of the announced fact, so
no new common knowledge arises.

Chained updates
---------------
The reproductions are driven by *chains* of updates — the father's announcement
followed by ``k`` rounds of simultaneous public answers.  :class:`UpdateChain`
drives such a chain through the derived-structure fast path of
:class:`~repro.kripke.structure.KripkeStructure`, reusing one evaluator per
intermediate model and handing each round's ``Knows`` extensions back to the
caller so answers never have to be recomputed.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.logic.agents import Agent
from repro.logic.syntax import Formula, Knows
from repro.kripke.checker import ModelChecker
from repro.kripke.structure import KripkeStructure, World

__all__ = [
    "public_announce",
    "announce_sequence",
    "private_announce",
    "simultaneous_answers",
    "UpdateChain",
]


def _checker_for(
    structure: KripkeStructure, checker: Optional[ModelChecker]
) -> ModelChecker:
    """Validate a caller-supplied evaluator (or build a fresh one).

    A checker caches extensions of the structure it was built over; silently
    accepting one bound to a *different* structure would compute the update
    from stale truths, so that is a loud error instead.
    """
    if checker is None:
        return ModelChecker(structure)
    if checker.structure is not structure:
        raise ModelError(
            "the supplied checker evaluates a different structure; announcements "
            "must be computed by an evaluator over the structure being updated"
        )
    return checker


def public_announce(
    structure: KripkeStructure,
    fact: Formula,
    checker: Optional[ModelChecker] = None,
) -> KripkeStructure:
    """The structure after a truthful public announcement of ``fact``.

    Worlds where ``fact`` fails are removed; the agents' indistinguishability
    relations are restricted to the surviving worlds.  If ``fact`` holds nowhere the
    announcement could not have been truthful and a
    :class:`~repro.errors.ModelError` is raised.

    ``checker`` optionally reuses an existing evaluator *over the same structure*
    (and with it, its accumulated formula memo) instead of constructing a fresh
    one; a checker bound to any other structure is rejected.
    """
    checker = _checker_for(structure, checker)
    surviving = checker.extension(fact)
    if not surviving:
        raise ModelError("cannot announce a fact that holds at no world")
    return structure.restrict(surviving)


def announce_sequence(
    structure: KripkeStructure, facts: Iterable[Formula]
) -> List[KripkeStructure]:
    """Apply a sequence of public announcements, returning every intermediate model.

    The returned list starts with the structure after the first announcement; element
    ``i`` is the model after announcements ``0..i``.  This is how the muddy-children
    rounds are driven: the father's announcement of ``m``, then the children's
    simultaneous "no" answers round after round.  The whole sequence runs through
    one :class:`UpdateChain`, so every step takes the derived-structure fast path.
    """
    chain = UpdateChain(structure)
    return [chain.announce(fact) for fact in facts]


def private_announce(
    structure: KripkeStructure, agent: Agent, fact: Formula
) -> KripkeStructure:
    """Privately tell ``agent`` whether ``fact`` holds — without the others noticing.

    The update is the product construction for a truly private announcement: every
    world is duplicated into a "told" copy and an "untold" copy.  The addressee knows
    the announcement happened and learns the truth value of ``fact`` (its partition on
    the told copies is refined by the fact, and it distinguishes told from untold);
    every other agent cannot tell the copies apart, so it learns nothing — not even
    that the announcement took place.  Consequently no new *common* knowledge arises,
    which is exactly the paper's point about the father taking each child aside.

    The returned structure's worlds are pairs ``(world, tag)`` with tag ``"told"`` or
    ``"untold"``; the actual world after the announcement is ``(w, "told")``.
    """
    checker = ModelChecker(structure)
    extension = checker.extension(fact)

    told = [(world, "told") for world in structure.worlds]
    untold = [(world, "untold") for world in structure.worlds]
    worlds = told + untold
    valuation = {(world, tag): structure.facts_at(world) for world, tag in worlds}

    partitions = {}
    for other in structure.agents:
        blocks = []
        for block in structure.partition(other):
            if other == agent:
                # The addressee knows whether it was told, and if told, learns the
                # truth value of the fact.
                true_part = {(w, "told") for w in block if w in extension}
                false_part = {(w, "told") for w in block if w not in extension}
                blocks.extend(part for part in (true_part, false_part) if part)
                blocks.append({(w, "untold") for w in block})
            else:
                # Everyone else cannot distinguish the told copy from the untold one.
                blocks.append({(w, tag) for w in block for tag in ("told", "untold")})
        partitions[other] = blocks
    return KripkeStructure(worlds, structure.agents, valuation, partitions)


def simultaneous_answers(
    structure: KripkeStructure,
    answers: Sequence[Tuple[Agent, Formula]],
    checker: Optional[ModelChecker] = None,
) -> KripkeStructure:
    """The effect of several agents *simultaneously and publicly* answering questions.

    Each element of ``answers`` is ``(agent, claim)``: the agent publicly reveals
    whether it knows ``claim`` (a "yes"/"no" answer to the father's question "can you
    prove ``claim``?").  The answer vector realised at a world is publicly observable,
    so after the round every agent can distinguish worlds with different answer
    vectors.  The update therefore refines *every* agent's partition by the vector of
    answers; no worlds are removed, because which vector is "the true one" depends on
    the actual world.  This is exactly the update the muddy children perform each
    round: restricting any single block of the refined model to one answer vector
    recovers the familiar world-elimination picture.

    The per-agent ``Knows`` extensions are evaluated as one batch through the
    engine's shared-memo ``extensions()`` API (optionally on a caller-supplied
    ``checker`` over the same structure), and all agents are refined in a single
    :meth:`~repro.kripke.structure.KripkeStructure.refine_agents` pass.
    """
    if not answers:
        return structure
    checker = _checker_for(structure, checker)
    extensions = checker.extensions(
        [Knows(agent, claim) for agent, claim in answers]
    )

    def answer_vector(world: World) -> Tuple[bool, ...]:
        return tuple(world in extension for extension in extensions)

    return structure.refine_agents(structure.agents, answer_vector)


class UpdateChain:
    """Drive a chain of public model updates, reusing one evaluator per model.

    The muddy-children and cheating-husbands reproductions apply the father's
    announcement followed by ``k`` rounds of simultaneous public answers.  Built
    naively, every round constructs a fresh structure *and* a fresh evaluator
    and recomputes every mask cold.  An ``UpdateChain`` instead:

    * keeps exactly one :class:`~repro.kripke.checker.ModelChecker` per
      intermediate model (queries between updates share its formula memo);
    * applies updates through the structure's derived fast path
      (:meth:`~repro.kripke.structure.KripkeStructure.restrict` /
      :meth:`~repro.kripke.structure.KripkeStructure.refine_agents`), so
      partition masks, world numberings and proposition extensions are remapped
      from the parent rather than recomputed;
    * returns each round's ``Knows`` extensions from :meth:`answer_round`, so
      callers read the answers off the very extensions that drove the update.

    ``benchmarks/bench_announcement_chain.py`` measures this path against the
    rebuild-everything loop it replaced.
    """

    def __init__(self, structure: KripkeStructure, *, backend: Optional[str] = None):
        self._model = structure
        self._backend = backend
        self._checker: Optional[ModelChecker] = None

    @property
    def model(self) -> KripkeStructure:
        """The current (most recently updated) structure."""
        return self._model

    @property
    def checker(self) -> ModelChecker:
        """The cached evaluator over the current structure."""
        if self._checker is None:
            self._checker = ModelChecker(self._model, backend=self._backend)
        return self._checker

    def holds(self, formula: Formula, world: World) -> bool:
        """Whether ``formula`` holds at ``world`` in the current structure."""
        return self.checker.holds(formula, world)

    def extension(self, formula: Formula) -> FrozenSet[World]:
        """The extension of ``formula`` in the current structure."""
        return self.checker.extension(formula)

    def extensions(self, formulas: Iterable[Formula]) -> List[FrozenSet[World]]:
        """Batch evaluation over the current structure (one shared memo)."""
        return self.checker.extensions(formulas)

    def announce(self, fact: Formula) -> KripkeStructure:
        """Publicly announce ``fact``; returns (and switches to) the updated model."""
        self._advance(public_announce(self._model, fact, checker=self.checker))
        return self._model

    def answer_round(
        self, answers: Sequence[Tuple[Agent, Formula]]
    ) -> List[FrozenSet[World]]:
        """One round of simultaneous public answers.

        Evaluates every ``Knows(agent, claim)`` in one batch on the *current*
        model, applies the single-pass all-agents refinement, and returns the
        extensions — ``world in extensions[i]`` is exactly "agent ``i`` answered
        yes at ``world``", so callers can read the round's answers without
        re-evaluating anything.
        """
        answers = list(answers)
        if not answers:
            return []
        extensions = self.checker.extensions(
            [Knows(agent, claim) for agent, claim in answers]
        )

        def answer_vector(world: World) -> Tuple[bool, ...]:
            return tuple(world in extension for extension in extensions)

        self._advance(self._model.refine_agents(self._model.agents, answer_vector))
        return extensions

    def _advance(self, updated: KripkeStructure) -> None:
        if updated is not self._model:
            self._model = updated
            self._checker = None
