"""Public and private announcements (fact publication).

Section 2 of the paper explains the role of the father's statement in the muddy
children puzzle: publicly announcing a fact that everyone already knows can still
change the group's state of knowledge, because it makes the fact *common knowledge*.
Section 3 calls this "fact publication".  Clark & Marshall's "copresence" is modelled
semantically by restricting the structure to the worlds where the announced fact
holds — after a truthful public announcement the announcement itself (and the fact)
is common knowledge among all agents.

The paper also notes the contrast: "if, instead, the father had taken each child aside
(without the other children noticing) and told her or him about it privately, this
information would have been of no help at all."  :func:`private_announce` models that:
only the addressee's partition is refined by the truth value of the announced fact, so
no new common knowledge arises.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import ModelError
from repro.logic.agents import Agent
from repro.logic.syntax import Formula
from repro.kripke.checker import ModelChecker
from repro.kripke.structure import KripkeStructure, World

__all__ = [
    "public_announce",
    "announce_sequence",
    "private_announce",
    "simultaneous_answers",
]


def public_announce(structure: KripkeStructure, fact: Formula) -> KripkeStructure:
    """The structure after a truthful public announcement of ``fact``.

    Worlds where ``fact`` fails are removed; the agents' indistinguishability
    relations are restricted to the surviving worlds.  If ``fact`` holds nowhere the
    announcement could not have been truthful and a
    :class:`~repro.errors.ModelError` is raised.
    """
    checker = ModelChecker(structure)
    surviving = checker.extension(fact)
    if not surviving:
        raise ModelError("cannot announce a fact that holds at no world")
    return structure.restrict(surviving)


def announce_sequence(
    structure: KripkeStructure, facts: Iterable[Formula]
) -> List[KripkeStructure]:
    """Apply a sequence of public announcements, returning every intermediate model.

    The returned list starts with the structure after the first announcement; element
    ``i`` is the model after announcements ``0..i``.  This is how the muddy-children
    rounds are driven: the father's announcement of ``m``, then the children's
    simultaneous "no" answers round after round.
    """
    models: List[KripkeStructure] = []
    current = structure
    for fact in facts:
        current = public_announce(current, fact)
        models.append(current)
    return models


def private_announce(
    structure: KripkeStructure, agent: Agent, fact: Formula
) -> KripkeStructure:
    """Privately tell ``agent`` whether ``fact`` holds — without the others noticing.

    The update is the product construction for a truly private announcement: every
    world is duplicated into a "told" copy and an "untold" copy.  The addressee knows
    the announcement happened and learns the truth value of ``fact`` (its partition on
    the told copies is refined by the fact, and it distinguishes told from untold);
    every other agent cannot tell the copies apart, so it learns nothing — not even
    that the announcement took place.  Consequently no new *common* knowledge arises,
    which is exactly the paper's point about the father taking each child aside.

    The returned structure's worlds are pairs ``(world, tag)`` with tag ``"told"`` or
    ``"untold"``; the actual world after the announcement is ``(w, "told")``.
    """
    checker = ModelChecker(structure)
    extension = checker.extension(fact)

    told = [(world, "told") for world in structure.worlds]
    untold = [(world, "untold") for world in structure.worlds]
    worlds = told + untold
    valuation = {(world, tag): structure.facts_at(world) for world, tag in worlds}

    partitions = {}
    for other in structure.agents:
        blocks = []
        for block in structure.partition(other):
            if other == agent:
                # The addressee knows whether it was told, and if told, learns the
                # truth value of the fact.
                true_part = {(w, "told") for w in block if w in extension}
                false_part = {(w, "told") for w in block if w not in extension}
                blocks.extend(part for part in (true_part, false_part) if part)
                blocks.append({(w, "untold") for w in block})
            else:
                # Everyone else cannot distinguish the told copy from the untold one.
                blocks.append({(w, tag) for w in block for tag in ("told", "untold")})
        partitions[other] = blocks
    return KripkeStructure(worlds, structure.agents, valuation, partitions)


def simultaneous_answers(
    structure: KripkeStructure,
    answers: Sequence[Tuple[Agent, Formula]],
) -> KripkeStructure:
    """The effect of several agents *simultaneously and publicly* answering questions.

    Each element of ``answers`` is ``(agent, claim)``: the agent publicly reveals
    whether it knows ``claim`` (a "yes"/"no" answer to the father's question "can you
    prove ``claim``?").  The answer vector realised at a world is publicly observable,
    so after the round every agent can distinguish worlds with different answer
    vectors.  The update therefore refines *every* agent's partition by the vector of
    answers; no worlds are removed, because which vector is "the true one" depends on
    the actual world.  This is exactly the update the muddy children perform each
    round: restricting any single block of the refined model to one answer vector
    recovers the familiar world-elimination picture.
    """
    from repro.logic.syntax import Knows

    if not answers:
        return structure
    checker = ModelChecker(structure)
    extensions = [checker.extension(Knows(agent, claim)) for agent, claim in answers]

    def answer_vector(world: World) -> Tuple[bool, ...]:
        return tuple(world in extension for extension in extensions)

    refined = structure
    for agent in structure.agents:
        refined = refined.refine_agent(agent, answer_vector)
    return refined
