"""Constructing Kripke structures from higher-level descriptions.

Most of the structures used in the paper's examples have the same shape: each agent
holds some local attribute, each world is an assignment of attributes to agents, and
an agent considers two worlds indistinguishable when everything it *observes* agrees.
The builders here capture that pattern once so the scenario modules stay small:

* :func:`from_worlds` — the fully general builder: give an indistinguishability
  predicate per agent and the partitions are computed for you.
* :func:`observed_variable_model` — worlds are assignments of values to variables;
  each agent observes a stated subset of the variables.
* :func:`others_attribute_model` — the "muddy children" shape: every agent has a
  boolean attribute and sees everyone's attribute *except its own*.
* :func:`shared_memory_model` — all agents observe the entire world; the knowledge
  hierarchy collapses (Section 3's common-memory example).
* :func:`blind_model` — no agent observes anything; every fact valid in the model is
  common knowledge (the single-view interpretation discussed in Section 6).
"""

from __future__ import annotations

import itertools
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ModelError
from repro.logic.agents import Agent
from repro.kripke.structure import KripkeStructure, World

__all__ = [
    "from_worlds",
    "observed_variable_model",
    "others_attribute_model",
    "shared_memory_model",
    "blind_model",
    "muddy_children_worlds",
]


def from_worlds(
    worlds: Iterable[World],
    agents: Iterable[Agent],
    valuation: Callable[[World], AbstractSet[str]],
    observation: Callable[[Agent, World], Hashable],
) -> KripkeStructure:
    """Build a structure from an observation function.

    ``observation(agent, world)`` returns whatever the agent observes at the world;
    two worlds are indistinguishable to the agent exactly when the observations are
    equal.  This mirrors the paper's view functions: "a processor is said to know a
    fact at a given point exactly if the fact holds at all of the points that the
    processor cannot distinguish from the given one".
    """
    world_list = list(worlds)
    agent_list = list(agents)
    if not world_list:
        raise ModelError("from_worlds requires at least one world")
    partitions: Dict[Agent, List[AbstractSet[World]]] = {}
    for agent in agent_list:
        blocks: Dict[Hashable, set] = {}
        for world in world_list:
            blocks.setdefault(observation(agent, world), set()).add(world)
        partitions[agent] = list(blocks.values())
    valuation_map = {world: frozenset(valuation(world)) for world in world_list}
    return KripkeStructure(world_list, agent_list, valuation_map, partitions)


def observed_variable_model(
    agents: Sequence[Agent],
    variables: Mapping[str, Sequence[Hashable]],
    observes: Mapping[Agent, AbstractSet[str]],
    valuation: Optional[Callable[[Mapping[str, Hashable]], AbstractSet[str]]] = None,
) -> KripkeStructure:
    """Worlds are assignments of values to named variables.

    Parameters
    ----------
    variables:
        Maps each variable name to its domain of possible values.
    observes:
        Maps each agent to the set of variable names it can see.
    valuation:
        Maps an assignment to the set of proposition names true in it.  By default,
        the proposition ``"{var}={value}"`` holds for every variable.

    The worlds are tuples of ``(variable, value)`` pairs sorted by variable name, so
    they are hashable and deterministic.
    """
    names = sorted(variables)
    domains = [list(variables[name]) for name in names]
    assignments = [
        tuple(zip(names, combo)) for combo in itertools.product(*domains)
    ]

    def default_valuation(assignment: Mapping[str, Hashable]) -> AbstractSet[str]:
        return {f"{var}={value}" for var, value in assignment.items()}

    value_fn = valuation or default_valuation

    def world_valuation(world: Tuple[Tuple[str, Hashable], ...]) -> AbstractSet[str]:
        return value_fn(dict(world))

    def observation(agent: Agent, world: Tuple[Tuple[str, Hashable], ...]) -> Hashable:
        visible = observes.get(agent, frozenset())
        return tuple((var, value) for var, value in world if var in visible)

    return from_worlds(assignments, agents, world_valuation, observation)


def muddy_children_worlds(n: int) -> List[Tuple[bool, ...]]:
    """All 2^n assignments of muddy/clean foreheads to ``n`` children."""
    if n < 1:
        raise ModelError("the muddy children puzzle needs at least one child")
    return [tuple(bits) for bits in itertools.product([False, True], repeat=n)]


def others_attribute_model(
    agents: Sequence[Agent],
    attribute_name: str = "muddy",
    include_at_least_one_prop: bool = True,
) -> KripkeStructure:
    """The muddy-children-shaped model: each agent has a boolean attribute, observes
    everyone else's attribute, but not its own (Section 2).

    Worlds are tuples of booleans, one per agent in the order given.  Propositions:

    * ``"{attribute_name}_{agent}"`` — agent's attribute is set,
    * ``"at_least_one"`` — some agent's attribute is set (the father's announcement m),
      included when ``include_at_least_one_prop`` is true.
    """
    agent_list = list(agents)
    n = len(agent_list)
    worlds = muddy_children_worlds(n)

    def valuation(world: Tuple[bool, ...]) -> AbstractSet[str]:
        facts = {
            f"{attribute_name}_{agent_list[i]}" for i in range(n) if world[i]
        }
        if include_at_least_one_prop and any(world):
            facts.add("at_least_one")
        return facts

    def observation(agent: Agent, world: Tuple[bool, ...]) -> Hashable:
        index = agent_list.index(agent)
        return tuple(world[i] for i in range(n) if i != index)

    return from_worlds(worlds, agent_list, valuation, observation)


def shared_memory_model(
    agents: Sequence[Agent],
    worlds: Iterable[World],
    valuation: Callable[[World], AbstractSet[str]],
) -> KripkeStructure:
    """Every agent observes the entire world.

    In this model the hierarchy of Section 3 collapses:
    ``C phi == E^k phi == E phi == S phi == D phi`` for every ``phi``, because each
    agent's equivalence classes are singletons.
    """
    return from_worlds(worlds, agents, valuation, lambda agent, world: world)


def blind_model(
    agents: Sequence[Agent],
    worlds: Iterable[World],
    valuation: Callable[[World], AbstractSet[str]],
) -> KripkeStructure:
    """No agent observes anything (the single-view interpretation of Section 6).

    Every agent considers every world possible, so an agent knows exactly the facts
    that are valid in the model — and all of those are common knowledge.
    """
    return from_worlds(worlds, agents, valuation, lambda agent, world: None)
