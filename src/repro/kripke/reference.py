"""Naive reference implementations of the model-update operations.

These are transcriptions of the pre-fast-path ("seed") code: from-scratch
``KripkeStructure`` rebuilds through the validating public constructor, and the
fixed-point bisimulation refinement that preceded the worklist algorithm.  They
are deliberately slow and obviously correct, and exist for exactly two
consumers — the differential tests (``tests/test_derived_structures.py``),
which pin the derived-structure fast path to be observably identical to these
rebuilds, and the benchmarks (``benchmarks/bench_announcement_chain.py``),
which use them as the measured baseline.  Keeping the single copy here keeps
the test oracle and the benchmark baseline the same code.

Do not "optimise" these: their value is that they do not share machinery with
the fast path they check.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Dict, FrozenSet, Hashable, Set

from repro.kripke.structure import KripkeStructure, World

__all__ = [
    "restrict_rebuild",
    "refine_agent_rebuild",
    "bisimulation_classes_fixpoint",
]


def restrict_rebuild(
    structure: KripkeStructure, worlds: AbstractSet[World]
) -> KripkeStructure:
    """``KripkeStructure.restrict`` as a from-scratch rebuild (the seed code)."""
    kept = frozenset(worlds) & structure.worlds
    valuation = {w: structure.facts_at(w) for w in kept}
    partitions = {
        agent: [block & kept for block in structure.partition(agent) if block & kept]
        for agent in structure.agents
    }
    return KripkeStructure(kept, structure.agents, valuation, partitions)


def refine_agent_rebuild(
    structure: KripkeStructure,
    agent: Hashable,
    discriminator: Callable[[World], Hashable],
) -> KripkeStructure:
    """``KripkeStructure.refine_agent`` as a from-scratch rebuild (the seed code)."""
    new_classes = []
    for block in structure.partition(agent):
        by_value: Dict[Hashable, Set[World]] = {}
        for world in block:
            by_value.setdefault(discriminator(world), set()).add(world)
        new_classes.extend(frozenset(part) for part in by_value.values())
    partitions = {
        other: list(structure.partition(other))
        for other in structure.agents
        if other != agent
    }
    partitions[agent] = new_classes
    return KripkeStructure(
        structure.worlds,
        structure.agents,
        {w: structure.facts_at(w) for w in structure.worlds},
        partitions,
    )


def bisimulation_classes_fixpoint(
    structure: KripkeStructure,
) -> Set[FrozenSet[World]]:
    """The seed's fixed-point bisimulation refinement (global re-signature passes).

    The oracle for :func:`repro.kripke.bisimulation.bisimulation_classes`: each
    pass recomputes every world's signature — its current block plus, per
    agent, the set of blocks its equivalence class meets — until the block
    count stops growing.
    """
    block_of: Dict[World, int] = {}
    signature_to_block: Dict[Hashable, int] = {}
    for world in structure.worlds:
        signature = structure.facts_at(world)
        block_of[world] = signature_to_block.setdefault(
            signature, len(signature_to_block)
        )
    agents = sorted(structure.agents, key=repr)
    changed = True
    while changed:
        signature_to_block = {}
        new_block_of: Dict[World, int] = {}
        for world in structure.worlds:
            neighbour_blocks = tuple(
                frozenset(
                    block_of[neighbour]
                    for neighbour in structure.equivalence_class(agent, world)
                )
                for agent in agents
            )
            signature = (block_of[world], neighbour_blocks)
            new_block_of[world] = signature_to_block.setdefault(
                signature, len(signature_to_block)
            )
        changed = len(set(new_block_of.values())) != len(set(block_of.values()))
        block_of = new_block_of
    blocks: Dict[int, Set[World]] = {}
    for world, block in block_of.items():
        blocks.setdefault(block, set()).add(world)
    return {frozenset(members) for members in blocks.values()}
