"""Finite S5 Kripke structures.

Section 6 of the paper observes that the graph whose nodes are the points of a system,
with an edge labelled ``p_i`` between two points whenever processor ``p_i`` has the
same view at both, is "very closely related to Kripke structures".  This module
provides that abstraction directly: a finite set of worlds, a valuation of primitive
propositions at each world, and one *equivalence relation* per agent (S5 semantics —
the relations arise from "has the same view", which is reflexive, symmetric and
transitive).

Relations are stored as partitions (lists of equivalence classes), which keeps the
S5 property true by construction and makes the common-knowledge reachability
computation a cheap union-find style pass.

Derived structures
------------------
Model *updates* — a public announcement restricting the worlds, an agent privately
learning an observable — produce structures that differ from their parent in a
controlled way.  :meth:`KripkeStructure.restrict` and
:meth:`KripkeStructure.refine_agents` therefore construct *derived* structures in
bitmask space: a restriction is an AND of every parent partition block against the
survivor mask (remapped through a :class:`~repro.engine.universe.MaskCompressor`),
a refinement splits blocks in place under the unchanged world numbering, and
proposition extensions are remapped rather than rescanned.  Derived structures skip
the constructor's validation (their invariants hold by construction) and only
materialise the frozenset view of their partitions when a frozenset-level accessor
is actually used, so a chain of updates evaluated on the bitset engine backend
never leaves bitmask space.  The differential tests in
``tests/test_derived_structures.py`` pin derived structures to be observably
identical to from-scratch rebuilds.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.engine.universe import IndexedUniverse
from repro.errors import ModelError, UnknownAgentError, UnknownWorldError
from repro.logic.agents import Agent, Group, GroupLike, as_group

__all__ = ["World", "KripkeStructure"]

World = Hashable
"""Worlds may be any hashable value (strings, tuples, frozensets...)."""


class KripkeStructure:
    """A finite Kripke structure with an equivalence relation per agent.

    Parameters
    ----------
    worlds:
        The (non-empty) set of possible worlds.
    agents:
        The agents of the structure.
    valuation:
        Maps each world to the set of primitive-proposition *names* true at it.
        Worlds missing from the mapping are treated as satisfying no propositions.
    partitions:
        For each agent, a partition of the worlds into indistinguishability classes.
        Worlds not mentioned in an agent's partition are treated as singleton classes
        (the agent can distinguish them from everything else).

    Two worlds are indistinguishable to an agent exactly when they lie in the same
    class of that agent's partition.

    Examples
    --------
    A two-world structure where agent ``a`` cannot tell whether ``p`` holds::

        >>> m = KripkeStructure(
        ...     worlds={"w0", "w1"},
        ...     agents={"a"},
        ...     valuation={"w1": {"p"}},
        ...     partitions={"a": [{"w0", "w1"}]},
        ... )
        >>> m.indistinguishable("a", "w0", "w1")
        True
    """

    def __init__(
        self,
        worlds: Iterable[World],
        agents: Iterable[Agent],
        valuation: Mapping[World, AbstractSet[str]],
        partitions: Mapping[Agent, Iterable[AbstractSet[World]]],
    ):
        self._worlds: FrozenSet[World] = frozenset(worlds)
        if not self._worlds:
            raise ModelError("a Kripke structure needs at least one world")
        self._agents: FrozenSet[Agent] = frozenset(agents)
        if not self._agents:
            raise ModelError("a Kripke structure needs at least one agent")

        self._valuation: Dict[World, FrozenSet[str]] = {}
        for world, facts in valuation.items():
            if world not in self._worlds:
                raise UnknownWorldError(f"valuation mentions unknown world {world!r}")
            self._valuation[world] = frozenset(facts)

        self._class_of: Optional[Dict[Agent, Dict[World, FrozenSet[World]]]] = {}
        self._classes: Optional[Dict[Agent, Tuple[FrozenSet[World], ...]]] = {}
        for agent in self._agents:
            classes = [frozenset(block) for block in partitions.get(agent, [])]
            self._install_partition(agent, classes)
        unknown_agents = set(partitions) - set(self._agents)
        if unknown_agents:
            raise UnknownAgentError(
                f"partitions mention unknown agents: {sorted(map(repr, unknown_agents))}"
            )

        # Lazily built bitmask view of the structure (see the indexing section
        # below).  Structures are immutable, so the caches never go stale.
        self._indexed: Optional[IndexedUniverse] = None
        self._partition_mask_cache: Dict[Agent, Tuple[int, ...]] = {}
        self._class_mask_order_cache: Dict[Agent, Tuple[int, ...]] = {}
        self._component_mask_cache: Dict[Tuple[Agent, ...], Tuple[int, ...]] = {}
        self._prop_mask_cache: Dict[str, int] = {}

    @classmethod
    def _derived(
        cls,
        worlds: FrozenSet[World],
        agents: FrozenSet[Agent],
        valuation: Dict[World, FrozenSet[str]],
        indexed: IndexedUniverse,
        partition_masks: Mapping[Agent, Tuple[int, ...]],
        *,
        classes: Optional[Dict[Agent, Tuple[FrozenSet[World], ...]]] = None,
        class_of: Optional[Dict[Agent, Dict[World, FrozenSet[World]]]] = None,
        class_mask_orders: Optional[Dict[Agent, Tuple[int, ...]]] = None,
        component_masks: Optional[Dict[Tuple[Agent, ...], Tuple[int, ...]]] = None,
        prop_masks: Optional[Dict[str, int]] = None,
    ) -> "KripkeStructure":
        """Trusted constructor for structures derived from an existing one.

        Skips the public constructor's validation — the caller guarantees the
        invariants (disjoint covering partitions, valuation over the worlds) hold
        by construction.  The frozenset view of the partitions is *not* built
        here; it materialises lazily from the masks on first use
        (:meth:`_ensure_partitions`).

        ``prop_masks`` is stored *by reference*: same-universe derivations (e.g.
        refinements) deliberately share one proposition-mask cache with their
        parent, because proposition extensions depend only on the universe and
        the valuation, both unchanged.  No reference to the parent structure
        itself is kept, so an update chain does not pin its intermediate models
        in memory.
        """
        self = cls.__new__(cls)
        self._worlds = worlds
        self._agents = agents
        self._valuation = valuation
        self._class_of = class_of
        self._classes = classes
        self._indexed = indexed
        self._partition_mask_cache = dict(partition_masks)
        self._class_mask_order_cache = dict(class_mask_orders) if class_mask_orders else {}
        self._component_mask_cache = dict(component_masks) if component_masks else {}
        self._prop_mask_cache = prop_masks if prop_masks is not None else {}
        return self

    def _install_partition(
        self, agent: Agent, classes: Sequence[FrozenSet[World]]
    ) -> None:
        seen: Set[World] = set()
        class_map: Dict[World, FrozenSet[World]] = {}
        all_classes: List[FrozenSet[World]] = []
        for block in classes:
            if not block:
                continue
            stray = block - self._worlds
            if stray:
                raise UnknownWorldError(
                    f"partition for agent {agent!r} mentions unknown worlds {sorted(map(repr, stray))}"
                )
            overlap = block & seen
            if overlap:
                raise ModelError(
                    f"partition for agent {agent!r} is not disjoint: "
                    f"worlds {sorted(map(repr, overlap))} appear twice"
                )
            seen.update(block)
            all_classes.append(block)
            for world in block:
                class_map[world] = block
        # Unmentioned worlds become singleton classes: the agent distinguishes them.
        for world in self._worlds - seen:
            singleton = frozenset({world})
            all_classes.append(singleton)
            class_map[world] = singleton
        self._class_of[agent] = class_map
        self._classes[agent] = tuple(all_classes)

    def _ensure_partitions(self) -> None:
        """Materialise the frozenset view of the partitions from the masks.

        Derived structures carry only bitmasks until a frozenset-level accessor
        (``partition``, ``equivalence_class``, ``partition_map``, ``__eq__``...)
        is used; evaluation chains that stay on the bitset backend never pay for
        this conversion.
        """
        if self._classes is not None:
            return
        universe = self.indexed_universe()
        classes: Dict[Agent, Tuple[FrozenSet[World], ...]] = {}
        class_of: Dict[Agent, Dict[World, FrozenSet[World]]] = {}
        for agent in self._agents:
            blocks = tuple(
                universe.to_frozenset(mask)
                for mask in self._partition_mask_cache[agent]
            )
            classes[agent] = blocks
            class_map: Dict[World, FrozenSet[World]] = {}
            for block in blocks:
                for world in block:
                    class_map[world] = block
            class_of[agent] = class_map
        self._classes = classes
        self._class_of = class_of

    # -- basic accessors -------------------------------------------------------
    @property
    def worlds(self) -> FrozenSet[World]:
        """The worlds of the structure."""
        return self._worlds

    @property
    def agents(self) -> FrozenSet[Agent]:
        """The agents of the structure."""
        return self._agents

    def facts_at(self, world: World) -> FrozenSet[str]:
        """The primitive propositions true at ``world``."""
        self._require_world(world)
        return self._valuation.get(world, frozenset())

    def holds_at(self, proposition: str, world: World) -> bool:
        """Whether the primitive proposition named ``proposition`` is true at ``world``."""
        return proposition in self.facts_at(world)

    def propositions(self) -> FrozenSet[str]:
        """Every proposition name appearing in the valuation."""
        names: Set[str] = set()
        for facts in self._valuation.values():
            names.update(facts)
        return frozenset(names)

    def partition(self, agent: Agent) -> Tuple[FrozenSet[World], ...]:
        """The indistinguishability classes of ``agent``."""
        self._require_agent(agent)
        self._ensure_partitions()
        return self._classes[agent]

    def equivalence_class(self, agent: Agent, world: World) -> FrozenSet[World]:
        """The worlds ``agent`` cannot distinguish from ``world`` (including it)."""
        self._require_agent(agent)
        self._require_world(world)
        self._ensure_partitions()
        return self._class_of[agent][world]

    def indistinguishable(self, agent: Agent, world_a: World, world_b: World) -> bool:
        """Whether ``agent`` has the same view at ``world_a`` and ``world_b``."""
        return world_b in self.equivalence_class(agent, world_a)

    # -- group relations -------------------------------------------------------
    def joint_class(self, group: GroupLike, world: World) -> FrozenSet[World]:
        """Worlds indistinguishable from ``world`` by *every* member of ``group``.

        This is the intersection used to define distributed knowledge ``D_G``
        (Section 6, clause (g)).
        """
        members = self._require_group(group)
        self._require_world(world)
        position = self.indexed_universe().index_of(world)
        result: Optional[int] = None
        for agent in members:
            mask = self.class_masks_in_order(agent)[position]
            result = mask if result is None else result & mask
        assert result is not None  # groups are non-empty
        return self.indexed_universe().to_frozenset(result)

    def reachable(self, group: GroupLike, world: World) -> FrozenSet[World]:
        """Worlds G-reachable from ``world`` in any finite number of steps.

        A world is G-reachable when it can be reached by a path each of whose edges is
        an indistinguishability link of *some* member of ``group`` (Section 6).  Common
        knowledge of ``phi`` holds at ``world`` exactly if ``phi`` holds at every
        G-reachable world.
        """
        members = self._require_group(group)
        self._require_world(world)
        bit = self.indexed_universe().bit(world)
        for component in self.component_masks(Group(members)):
            if component & bit:
                return self.indexed_universe().to_frozenset(component)
        raise AssertionError("every world lies in some component")  # pragma: no cover

    def reachable_within(
        self, group: GroupLike, world: World, steps: int
    ) -> FrozenSet[World]:
        """Worlds G-reachable from ``world`` in at most ``steps`` steps.

        ``E^k_G phi`` holds at ``world`` iff ``phi`` holds at every world G-reachable
        in at most ``k`` steps (Section 6).
        """
        if steps < 0:
            raise ModelError("steps must be non-negative")
        members = self._require_group(group)
        self._require_world(world)
        universe = self.indexed_universe()
        class_orders = [self.class_masks_in_order(agent) for agent in members]
        current = universe.bit(world)
        for _ in range(steps):
            nxt = current
            remaining = current
            while remaining:
                low = remaining & -remaining
                position = low.bit_length() - 1
                remaining ^= low
                for order in class_orders:
                    nxt |= order[position]
            if nxt == current:
                break
            current = nxt
        return universe.to_frozenset(current)

    def connected_components(self, group: GroupLike) -> Tuple[FrozenSet[World], ...]:
        """The partition of the worlds into G-reachability components."""
        universe = self.indexed_universe()
        return tuple(
            universe.to_frozenset(mask) for mask in self.component_masks(group)
        )

    # -- indexing and bitmask views ----------------------------------------------
    # These accessors expose the structure to the bitset evaluation backend of
    # :mod:`repro.engine`: worlds get stable bit positions, and partitions / group
    # reachability closures become integer masks.  Everything is computed lazily
    # and cached, which is sound because structures are immutable.  Derived
    # structures (restrictions / refinements) arrive with these caches already
    # populated by remapping from their parent.

    def indexed_universe(self) -> IndexedUniverse:
        """The world <-> bit-position numbering (worlds ordered by ``repr``)."""
        if self._indexed is None:
            self._indexed = IndexedUniverse(sorted(self._worlds, key=repr))
        return self._indexed

    def world_order(self) -> Tuple[World, ...]:
        """The worlds in their deterministic bit-position order."""
        return self.indexed_universe().elements

    def world_index(self, world: World) -> int:
        """The bit position assigned to ``world``."""
        self._require_world(world)
        return self.indexed_universe().index_of(world)

    def world_mask(self, worlds: Iterable[World]) -> int:
        """The bitmask whose set bits are exactly ``worlds``."""
        universe = self.indexed_universe()
        mask = 0
        for world in worlds:
            self._require_world(world)
            mask |= universe.bit(world)
        return mask

    def worlds_from_mask(self, mask: int) -> FrozenSet[World]:
        """The set of worlds encoded by ``mask``."""
        return self.indexed_universe().to_frozenset(mask)

    def partition_masks(self, agent: Agent) -> Tuple[int, ...]:
        """``agent``'s indistinguishability classes as bitmasks (a disjoint cover)."""
        self._require_agent(agent)
        cached = self._partition_mask_cache.get(agent)
        if cached is None:
            universe = self.indexed_universe()
            cached = tuple(universe.mask_of(block) for block in self._classes[agent])
            self._partition_mask_cache[agent] = cached
        return cached

    def class_mask(self, agent: Agent, world: World) -> int:
        """The bitmask of ``agent``'s equivalence class of ``world``."""
        self._require_agent(agent)
        self._require_world(world)
        position = self.indexed_universe().index_of(world)
        return self.class_masks_in_order(agent)[position]

    def class_masks_in_order(self, agent: Agent) -> Tuple[int, ...]:
        """``agent``'s class masks, one per world, in bit-position order.

        ``class_masks_in_order(a)[i]`` is the mask of ``a``'s equivalence class of
        ``world_order()[i]`` — the layout the bitset evaluation backend consumes.
        """
        self._require_agent(agent)
        cached = self._class_mask_order_cache.get(agent)
        if cached is None:
            order = [0] * len(self.indexed_universe())
            for block in self.partition_masks(agent):
                remaining = block
                while remaining:
                    low = remaining & -remaining
                    order[low.bit_length() - 1] = block
                    remaining ^= low
            cached = tuple(order)
            self._class_mask_order_cache[agent] = cached
        return cached

    def component_masks(self, group: GroupLike) -> Tuple[int, ...]:
        """The G-reachability components of ``group`` as bitmasks.

        ``C_G phi`` holds on exactly the union of the components contained in the
        extension of ``phi`` (Section 6).  Components are the connected components
        of the union of the members' partitions, computed by merging overlapping
        partition blocks entirely in bitmask space.
        """
        members = self._require_group(group)
        cached = self._component_mask_cache.get(members)
        if cached is None:
            components: List[int] = []
            for agent in members:
                for block in self.partition_masks(agent):
                    merged = block
                    kept: List[int] = []
                    for component in components:
                        if component & merged:
                            merged |= component
                        else:
                            kept.append(component)
                    kept.append(merged)
                    components = kept
            cached = tuple(components)
            self._component_mask_cache[members] = cached
        return cached

    def prop_mask(self, name: str) -> int:
        """The extension of the primitive proposition ``name`` as a bitmask.

        Masks are cached.  Derived structures arrive with their parent's
        already-computed masks remapped into the cache (an AND against the
        survivor mask plus compression — see :meth:`restrict`) or share the
        parent's cache outright (refinements), so evaluators over an update
        chain get their atomic extensions for the price of a few bitwise
        operations; only propositions never touched before the update are
        scanned from the valuation.
        """
        cached = self._prop_mask_cache.get(name)
        if cached is None:
            valuation = self._valuation
            cached = 0
            bit = 1
            for world in self.indexed_universe().elements:
                facts = valuation.get(world)
                if facts and name in facts:
                    cached |= bit
                bit <<= 1
            self._prop_mask_cache[name] = cached
        return cached

    def prop_worlds(self, name: str) -> FrozenSet[World]:
        """The set of worlds at which the primitive proposition ``name`` holds."""
        return self.indexed_universe().to_frozenset(self.prop_mask(name))

    def partition_map(self, agent: Agent) -> Mapping[World, FrozenSet[World]]:
        """The ``world -> equivalence class`` map of ``agent`` (a read-only view).

        The view is backed by the structure's own storage — no copy is made, so
        consumers that need ownership (e.g. the engine's frozenset backend) copy
        exactly once on their side.
        """
        self._require_agent(agent)
        self._ensure_partitions()
        return MappingProxyType(self._class_of[agent])

    def group_members(self, group: GroupLike) -> Tuple[Agent, ...]:
        """Validate ``group`` against this structure and return its sorted members."""
        return self._require_group(group)

    # -- derived structures ------------------------------------------------------
    def restrict(self, worlds: AbstractSet[World]) -> "KripkeStructure":
        """The substructure induced by ``worlds``.

        This is the semantic effect of a truthful public announcement: all worlds
        where the announced fact fails are discarded, and the agents' relations are
        restricted accordingly (Section 2 / Section 10; see
        :mod:`repro.kripke.announcement`).

        The result is a *derived* structure built in bitmask space: every parent
        partition block is ANDed against the survivor mask and remapped onto the
        restricted world numbering, and proposition extensions are inherited from
        the parent via the same remapping.  Restricting to the full world set
        returns the structure itself (structures are immutable).
        """
        kept = frozenset(worlds) & self._worlds
        if not kept:
            raise ModelError("cannot restrict a structure to an empty set of worlds")
        if kept == self._worlds:
            return self
        parent_universe = self.indexed_universe()
        survivor = parent_universe.mask_of(kept)
        child_universe, compressor = parent_universe.subuniverse(survivor)
        partition_masks: Dict[Agent, Tuple[int, ...]] = {}
        for agent in self._agents:
            blocks: List[int] = []
            for block in self.partition_masks(agent):
                alive = block & survivor
                if alive:
                    blocks.append(compressor.compress(alive))
            partition_masks[agent] = tuple(blocks)
        valuation = {
            world: facts for world, facts in self._valuation.items() if world in kept
        }
        # Inherit the parent's already-computed proposition masks by remapping;
        # props first queried after the restriction fall back to a valuation
        # scan, so no reference to the parent needs to be retained.
        prop_masks = {
            name: compressor.compress(mask)
            for name, mask in self._prop_mask_cache.items()
        }
        return KripkeStructure._derived(
            kept,
            self._agents,
            valuation,
            child_universe,
            partition_masks,
            prop_masks=prop_masks,
        )

    def refine_agent(
        self, agent: Agent, discriminator: Callable[[World], Hashable]
    ) -> "KripkeStructure":
        """Refine ``agent``'s partition so worlds with different ``discriminator``
        values become distinguishable.

        This models an agent privately learning the value of an observable (for
        example, a child being told privately whether its own forehead is muddy).
        Other agents' relations are unchanged.
        """
        self._require_agent(agent)
        return self.refine_agents((agent,), discriminator)

    def refine_agents(
        self,
        agents: Iterable[Agent],
        discriminator: Callable[[World], Hashable],
    ) -> "KripkeStructure":
        """Refine several agents' partitions by ``discriminator`` in one pass.

        This is the update of a *public* observable (e.g. the muddy children's
        simultaneous answer vector): every listed agent becomes able to
        distinguish worlds with different discriminator values.  The refinement
        happens in bitmask space under the unchanged world numbering — each
        target block is split by the discriminator's value masks — and the
        untargeted agents' masks (plus the proposition-mask cache, which depends
        only on the unchanged universe and valuation) are shared with the parent.

        Refining every agent at once is equivalent to, and much cheaper than,
        chaining :meth:`refine_agent` per agent.
        """
        targets: Set[Agent] = set()
        for agent in agents:
            self._require_agent(agent)
            targets.add(agent)
        universe = self.indexed_universe()
        # Group worlds by discriminator value once; blocks split along these ids.
        value_ids: List[int] = []
        ids: Dict[Hashable, int] = {}
        for world in universe.elements:
            value_ids.append(ids.setdefault(discriminator(world), len(ids)))
        partition_masks: Dict[Agent, Tuple[int, ...]] = {}
        changed = False
        for agent in self._agents:
            blocks = self.partition_masks(agent)
            if agent not in targets or len(ids) == 1:
                partition_masks[agent] = blocks
                continue
            new_blocks: List[int] = []
            for block in blocks:
                if block & (block - 1) == 0:  # singletons cannot split
                    new_blocks.append(block)
                    continue
                parts: Dict[int, int] = {}
                remaining = block
                while remaining:
                    low = remaining & -remaining
                    value = value_ids[low.bit_length() - 1]
                    parts[value] = parts.get(value, 0) | low
                    remaining ^= low
                if len(parts) == 1:
                    new_blocks.append(block)
                else:
                    new_blocks.extend(parts.values())
                    changed = True
            partition_masks[agent] = tuple(new_blocks)
        if not changed:
            return self
        shared_orders = {
            agent: order
            for agent, order in self._class_mask_order_cache.items()
            if agent not in targets
        }
        return KripkeStructure._derived(
            self._worlds,
            self._agents,
            self._valuation,
            universe,
            partition_masks,
            class_mask_orders=shared_orders,
            prop_masks=self._prop_mask_cache,
        )

    def with_valuation(
        self, valuation: Mapping[World, AbstractSet[str]]
    ) -> "KripkeStructure":
        """A copy of the structure with a different valuation."""
        new_valuation: Dict[World, FrozenSet[str]] = {}
        for world, facts in valuation.items():
            if world not in self._worlds:
                raise UnknownWorldError(f"valuation mentions unknown world {world!r}")
            new_valuation[world] = frozenset(facts)
        return KripkeStructure._derived(
            self._worlds,
            self._agents,
            new_valuation,
            self.indexed_universe(),
            {agent: self.partition_masks(agent) for agent in self._agents},
            classes=self._classes,
            class_of=self._class_of,
            class_mask_orders=dict(self._class_mask_order_cache),
            component_masks=dict(self._component_mask_cache),
        )

    # -- dunder helpers ----------------------------------------------------------
    def __contains__(self, world: World) -> bool:
        return world in self._worlds

    def __len__(self) -> int:
        return len(self._worlds)

    def __iter__(self) -> Iterator[World]:
        return iter(self._worlds)

    def __repr__(self) -> str:
        return (
            f"KripkeStructure(worlds={len(self._worlds)}, agents={len(self._agents)}, "
            f"propositions={len(self.propositions())})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KripkeStructure):
            return NotImplemented
        if self._worlds != other._worlds or self._agents != other._agents:
            return False
        if any(self.facts_at(w) != other.facts_at(w) for w in self._worlds):
            return False
        for agent in self._agents:
            mine = {frozenset(block) for block in self.partition(agent)}
            theirs = {frozenset(block) for block in other.partition(agent)}
            if mine != theirs:
                return False
        return True

    def __hash__(self) -> int:  # pragma: no cover - structures are rarely hashed
        return hash((self._worlds, self._agents))

    # -- validation ----------------------------------------------------------------
    def _require_world(self, world: World) -> None:
        if world not in self._worlds:
            raise UnknownWorldError(f"unknown world {world!r}")

    def _require_agent(self, agent: Agent) -> None:
        if agent not in self._agents:
            raise UnknownAgentError(f"unknown agent {agent!r}")

    def _require_group(self, group: GroupLike) -> Tuple[Agent, ...]:
        normalised = as_group(group)
        unknown = normalised.members - self._agents
        if unknown:
            raise UnknownAgentError(
                f"group mentions unknown agents: {sorted(map(repr, unknown))}"
            )
        return normalised.sorted_members()
