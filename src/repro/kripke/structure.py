"""Finite S5 Kripke structures.

Section 6 of the paper observes that the graph whose nodes are the points of a system,
with an edge labelled ``p_i`` between two points whenever processor ``p_i`` has the
same view at both, is "very closely related to Kripke structures".  This module
provides that abstraction directly: a finite set of worlds, a valuation of primitive
propositions at each world, and one *equivalence relation* per agent (S5 semantics —
the relations arise from "has the same view", which is reflexive, symmetric and
transitive).

Relations are stored as partitions (lists of equivalence classes), which keeps the
S5 property true by construction and makes the common-knowledge reachability
computation a cheap union-find style pass.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.engine.universe import IndexedUniverse
from repro.errors import ModelError, UnknownAgentError, UnknownWorldError
from repro.logic.agents import Agent, Group, GroupLike, as_group

__all__ = ["World", "KripkeStructure"]

World = Hashable
"""Worlds may be any hashable value (strings, tuples, frozensets...)."""


class KripkeStructure:
    """A finite Kripke structure with an equivalence relation per agent.

    Parameters
    ----------
    worlds:
        The (non-empty) set of possible worlds.
    agents:
        The agents of the structure.
    valuation:
        Maps each world to the set of primitive-proposition *names* true at it.
        Worlds missing from the mapping are treated as satisfying no propositions.
    partitions:
        For each agent, a partition of the worlds into indistinguishability classes.
        Worlds not mentioned in an agent's partition are treated as singleton classes
        (the agent can distinguish them from everything else).

    Two worlds are indistinguishable to an agent exactly when they lie in the same
    class of that agent's partition.

    Examples
    --------
    A two-world structure where agent ``a`` cannot tell whether ``p`` holds::

        >>> m = KripkeStructure(
        ...     worlds={"w0", "w1"},
        ...     agents={"a"},
        ...     valuation={"w1": {"p"}},
        ...     partitions={"a": [{"w0", "w1"}]},
        ... )
        >>> m.indistinguishable("a", "w0", "w1")
        True
    """

    def __init__(
        self,
        worlds: Iterable[World],
        agents: Iterable[Agent],
        valuation: Mapping[World, AbstractSet[str]],
        partitions: Mapping[Agent, Iterable[AbstractSet[World]]],
    ):
        self._worlds: FrozenSet[World] = frozenset(worlds)
        if not self._worlds:
            raise ModelError("a Kripke structure needs at least one world")
        self._agents: FrozenSet[Agent] = frozenset(agents)
        if not self._agents:
            raise ModelError("a Kripke structure needs at least one agent")

        self._valuation: Dict[World, FrozenSet[str]] = {}
        for world, facts in valuation.items():
            if world not in self._worlds:
                raise UnknownWorldError(f"valuation mentions unknown world {world!r}")
            self._valuation[world] = frozenset(facts)

        self._class_of: Dict[Agent, Dict[World, FrozenSet[World]]] = {}
        self._classes: Dict[Agent, Tuple[FrozenSet[World], ...]] = {}
        for agent in self._agents:
            classes = [frozenset(block) for block in partitions.get(agent, [])]
            self._install_partition(agent, classes)
        unknown_agents = set(partitions) - set(self._agents)
        if unknown_agents:
            raise UnknownAgentError(
                f"partitions mention unknown agents: {sorted(map(repr, unknown_agents))}"
            )

        # Lazily built bitmask view of the structure (see the indexing section
        # below).  Structures are immutable, so the caches never go stale.
        self._indexed: Optional[IndexedUniverse] = None
        self._partition_mask_cache: Dict[Agent, Tuple[int, ...]] = {}
        self._class_mask_cache: Dict[Agent, Dict[World, int]] = {}
        self._class_mask_order_cache: Dict[Agent, Tuple[int, ...]] = {}
        self._component_mask_cache: Dict[Tuple[Agent, ...], Tuple[int, ...]] = {}

    def _install_partition(
        self, agent: Agent, classes: Sequence[FrozenSet[World]]
    ) -> None:
        seen: Set[World] = set()
        class_map: Dict[World, FrozenSet[World]] = {}
        all_classes: List[FrozenSet[World]] = []
        for block in classes:
            if not block:
                continue
            stray = block - self._worlds
            if stray:
                raise UnknownWorldError(
                    f"partition for agent {agent!r} mentions unknown worlds {sorted(map(repr, stray))}"
                )
            overlap = block & seen
            if overlap:
                raise ModelError(
                    f"partition for agent {agent!r} is not disjoint: "
                    f"worlds {sorted(map(repr, overlap))} appear twice"
                )
            seen.update(block)
            all_classes.append(block)
            for world in block:
                class_map[world] = block
        # Unmentioned worlds become singleton classes: the agent distinguishes them.
        for world in self._worlds - seen:
            singleton = frozenset({world})
            all_classes.append(singleton)
            class_map[world] = singleton
        self._class_of[agent] = class_map
        self._classes[agent] = tuple(all_classes)

    # -- basic accessors -------------------------------------------------------
    @property
    def worlds(self) -> FrozenSet[World]:
        """The worlds of the structure."""
        return self._worlds

    @property
    def agents(self) -> FrozenSet[Agent]:
        """The agents of the structure."""
        return self._agents

    def facts_at(self, world: World) -> FrozenSet[str]:
        """The primitive propositions true at ``world``."""
        self._require_world(world)
        return self._valuation.get(world, frozenset())

    def holds_at(self, proposition: str, world: World) -> bool:
        """Whether the primitive proposition named ``proposition`` is true at ``world``."""
        return proposition in self.facts_at(world)

    def propositions(self) -> FrozenSet[str]:
        """Every proposition name appearing in the valuation."""
        names: Set[str] = set()
        for facts in self._valuation.values():
            names.update(facts)
        return frozenset(names)

    def partition(self, agent: Agent) -> Tuple[FrozenSet[World], ...]:
        """The indistinguishability classes of ``agent``."""
        self._require_agent(agent)
        return self._classes[agent]

    def equivalence_class(self, agent: Agent, world: World) -> FrozenSet[World]:
        """The worlds ``agent`` cannot distinguish from ``world`` (including it)."""
        self._require_agent(agent)
        self._require_world(world)
        return self._class_of[agent][world]

    def indistinguishable(self, agent: Agent, world_a: World, world_b: World) -> bool:
        """Whether ``agent`` has the same view at ``world_a`` and ``world_b``."""
        return world_b in self.equivalence_class(agent, world_a)

    # -- group relations -------------------------------------------------------
    def joint_class(self, group: GroupLike, world: World) -> FrozenSet[World]:
        """Worlds indistinguishable from ``world`` by *every* member of ``group``.

        This is the intersection used to define distributed knowledge ``D_G``
        (Section 6, clause (g)).
        """
        members = self._require_group(group)
        self._require_world(world)
        result: Optional[FrozenSet[World]] = None
        for agent in members:
            block = self._class_of[agent][world]
            result = block if result is None else result & block
        assert result is not None  # groups are non-empty
        return result

    def reachable(self, group: GroupLike, world: World) -> FrozenSet[World]:
        """Worlds G-reachable from ``world`` in any finite number of steps.

        A world is G-reachable when it can be reached by a path each of whose edges is
        an indistinguishability link of *some* member of ``group`` (Section 6).  Common
        knowledge of ``phi`` holds at ``world`` exactly if ``phi`` holds at every
        G-reachable world.
        """
        members = self._require_group(group)
        self._require_world(world)
        visited: Set[World] = {world}
        frontier: List[World] = [world]
        while frontier:
            current = frontier.pop()
            for agent in members:
                for neighbour in self._class_of[agent][current]:
                    if neighbour not in visited:
                        visited.add(neighbour)
                        frontier.append(neighbour)
        return frozenset(visited)

    def reachable_within(
        self, group: GroupLike, world: World, steps: int
    ) -> FrozenSet[World]:
        """Worlds G-reachable from ``world`` in at most ``steps`` steps.

        ``E^k_G phi`` holds at ``world`` iff ``phi`` holds at every world G-reachable
        in at most ``k`` steps (Section 6).
        """
        if steps < 0:
            raise ModelError("steps must be non-negative")
        members = self._require_group(group)
        self._require_world(world)
        current: Set[World] = {world}
        for _ in range(steps):
            nxt: Set[World] = set(current)
            for w in current:
                for agent in members:
                    nxt.update(self._class_of[agent][w])
            if nxt == current:
                break
            current = nxt
        return frozenset(current)

    def connected_components(self, group: GroupLike) -> Tuple[FrozenSet[World], ...]:
        """The partition of the worlds into G-reachability components."""
        members = self._require_group(group)
        remaining = set(self._worlds)
        components: List[FrozenSet[World]] = []
        while remaining:
            seed = next(iter(remaining))
            component = self.reachable(Group(members), seed)
            components.append(component)
            remaining -= component
        return tuple(components)

    # -- indexing and bitmask views ----------------------------------------------
    # These accessors expose the structure to the bitset evaluation backend of
    # :mod:`repro.engine`: worlds get stable bit positions, and partitions / group
    # reachability closures become integer masks.  Everything is computed lazily
    # and cached, which is sound because structures are immutable.

    def indexed_universe(self) -> IndexedUniverse:
        """The world <-> bit-position numbering (worlds ordered by ``repr``)."""
        if self._indexed is None:
            self._indexed = IndexedUniverse(sorted(self._worlds, key=repr))
        return self._indexed

    def world_order(self) -> Tuple[World, ...]:
        """The worlds in their deterministic bit-position order."""
        return self.indexed_universe().elements

    def world_index(self, world: World) -> int:
        """The bit position assigned to ``world``."""
        self._require_world(world)
        return self.indexed_universe().index_of(world)

    def world_mask(self, worlds: Iterable[World]) -> int:
        """The bitmask whose set bits are exactly ``worlds``."""
        universe = self.indexed_universe()
        mask = 0
        for world in worlds:
            self._require_world(world)
            mask |= universe.bit(world)
        return mask

    def worlds_from_mask(self, mask: int) -> FrozenSet[World]:
        """The set of worlds encoded by ``mask``."""
        return self.indexed_universe().to_frozenset(mask)

    def partition_masks(self, agent: Agent) -> Tuple[int, ...]:
        """``agent``'s indistinguishability classes as bitmasks (a disjoint cover)."""
        self._require_agent(agent)
        cached = self._partition_mask_cache.get(agent)
        if cached is None:
            universe = self.indexed_universe()
            cached = tuple(universe.mask_of(block) for block in self._classes[agent])
            self._partition_mask_cache[agent] = cached
        return cached

    def class_mask(self, agent: Agent, world: World) -> int:
        """The bitmask of ``agent``'s equivalence class of ``world``."""
        self._require_agent(agent)
        self._require_world(world)
        masks = self._class_mask_cache.get(agent)
        if masks is None:
            universe = self.indexed_universe()
            masks = {
                w: universe.mask_of(block)
                for w, block in self._class_of[agent].items()
            }
            self._class_mask_cache[agent] = masks
        return masks[world]

    def class_masks_in_order(self, agent: Agent) -> Tuple[int, ...]:
        """``agent``'s class masks, one per world, in bit-position order.

        ``class_masks_in_order(a)[i]`` is the mask of ``a``'s equivalence class of
        ``world_order()[i]`` — the layout the bitset evaluation backend consumes.
        """
        self._require_agent(agent)
        cached = self._class_mask_order_cache.get(agent)
        if cached is None:
            cached = tuple(
                self.class_mask(agent, world) for world in self.world_order()
            )
            self._class_mask_order_cache[agent] = cached
        return cached

    def component_masks(self, group: GroupLike) -> Tuple[int, ...]:
        """The G-reachability components of ``group`` as bitmasks.

        ``C_G phi`` holds on exactly the union of the components contained in the
        extension of ``phi`` (Section 6).
        """
        members = self._require_group(group)
        cached = self._component_mask_cache.get(members)
        if cached is None:
            universe = self.indexed_universe()
            cached = tuple(
                universe.mask_of(component)
                for component in self.connected_components(Group(members))
            )
            self._component_mask_cache[members] = cached
        return cached

    def partition_map(self, agent: Agent) -> Mapping[World, FrozenSet[World]]:
        """The ``world -> equivalence class`` map of ``agent`` (a read-only view).

        The view is backed by the structure's own storage — no copy is made, so
        consumers that need ownership (e.g. the engine's frozenset backend) copy
        exactly once on their side.
        """
        self._require_agent(agent)
        return MappingProxyType(self._class_of[agent])

    def group_members(self, group: GroupLike) -> Tuple[Agent, ...]:
        """Validate ``group`` against this structure and return its sorted members."""
        return self._require_group(group)

    # -- derived structures ------------------------------------------------------
    def restrict(self, worlds: AbstractSet[World]) -> "KripkeStructure":
        """The substructure induced by ``worlds``.

        This is the semantic effect of a truthful public announcement: all worlds
        where the announced fact fails are discarded, and the agents' relations are
        restricted accordingly (Section 2 / Section 10; see
        :mod:`repro.kripke.announcement`).
        """
        kept = frozenset(worlds) & self._worlds
        if not kept:
            raise ModelError("cannot restrict a structure to an empty set of worlds")
        valuation = {w: self._valuation.get(w, frozenset()) for w in kept}
        partitions = {
            agent: [block & kept for block in self._classes[agent] if block & kept]
            for agent in self._agents
        }
        return KripkeStructure(kept, self._agents, valuation, partitions)

    def refine_agent(
        self, agent: Agent, discriminator: Callable[[World], Hashable]
    ) -> "KripkeStructure":
        """Refine ``agent``'s partition so worlds with different ``discriminator``
        values become distinguishable.

        This models an agent privately learning the value of an observable (for
        example, a child being told privately whether its own forehead is muddy).
        Other agents' relations are unchanged.
        """
        self._require_agent(agent)
        new_classes: List[FrozenSet[World]] = []
        for block in self._classes[agent]:
            by_value: Dict[Hashable, Set[World]] = {}
            for world in block:
                by_value.setdefault(discriminator(world), set()).add(world)
            new_classes.extend(frozenset(part) for part in by_value.values())
        partitions = {
            other: list(self._classes[other]) for other in self._agents if other != agent
        }
        partitions[agent] = new_classes
        return KripkeStructure(self._worlds, self._agents, self._valuation, partitions)

    def with_valuation(
        self, valuation: Mapping[World, AbstractSet[str]]
    ) -> "KripkeStructure":
        """A copy of the structure with a different valuation."""
        partitions = {agent: list(self._classes[agent]) for agent in self._agents}
        return KripkeStructure(self._worlds, self._agents, valuation, partitions)

    # -- dunder helpers ----------------------------------------------------------
    def __contains__(self, world: World) -> bool:
        return world in self._worlds

    def __len__(self) -> int:
        return len(self._worlds)

    def __iter__(self) -> Iterator[World]:
        return iter(self._worlds)

    def __repr__(self) -> str:
        return (
            f"KripkeStructure(worlds={len(self._worlds)}, agents={len(self._agents)}, "
            f"propositions={len(self.propositions())})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KripkeStructure):
            return NotImplemented
        if self._worlds != other._worlds or self._agents != other._agents:
            return False
        if any(self.facts_at(w) != other.facts_at(w) for w in self._worlds):
            return False
        for agent in self._agents:
            mine = {frozenset(block) for block in self._classes[agent]}
            theirs = {frozenset(block) for block in other._classes[agent]}
            if mine != theirs:
                return False
        return True

    def __hash__(self) -> int:  # pragma: no cover - structures are rarely hashed
        return hash((self._worlds, self._agents))

    # -- validation ----------------------------------------------------------------
    def _require_world(self, world: World) -> None:
        if world not in self._worlds:
            raise UnknownWorldError(f"unknown world {world!r}")

    def _require_agent(self, agent: Agent) -> None:
        if agent not in self._agents:
            raise UnknownAgentError(f"unknown agent {agent!r}")

    def _require_group(self, group: GroupLike) -> Tuple[Agent, ...]:
        normalised = as_group(group)
        unknown = normalised.members - self._agents
        if unknown:
            raise UnknownAgentError(
                f"group mentions unknown agents: {sorted(map(repr, unknown))}"
            )
        return normalised.sorted_members()
