"""Bisimulation for S5 Kripke structures.

Two worlds are bisimilar when they satisfy the same primitive propositions and, for
every agent, each world in the equivalence class of one can be matched by a bisimilar
world in the equivalence class of the other.  Bisimilar worlds satisfy exactly the
same formulas of the epistemic language (including common knowledge and the fixpoint
operators), so quotienting a structure by bisimilarity is a sound state-space
reduction for model checking.

This module implements the standard partition-refinement algorithm and the quotient
construction; ``benchmarks/bench_bisimulation.py`` measures the effect of minimisation
on muddy-children model checking (an ablation called out in DESIGN.md §5).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.kripke.structure import KripkeStructure, World

__all__ = [
    "bisimulation_classes",
    "are_bisimilar",
    "quotient",
    "minimize",
]


def bisimulation_classes(structure: KripkeStructure) -> Tuple[FrozenSet[World], ...]:
    """The coarsest partition of the worlds into bisimilarity classes.

    The algorithm is partition refinement: start by grouping worlds with identical
    valuations, then repeatedly split blocks whose members "see" different sets of
    blocks through some agent's equivalence class, until stable.
    """
    # Initial partition by valuation.
    block_of: Dict[World, int] = {}
    signature_to_block: Dict[Hashable, int] = {}
    for world in structure.worlds:
        signature = structure.facts_at(world)
        block = signature_to_block.setdefault(signature, len(signature_to_block))
        block_of[world] = block

    agents = sorted(structure.agents, key=repr)
    changed = True
    while changed:
        signature_to_block = {}
        new_block_of: Dict[World, int] = {}
        for world in structure.worlds:
            neighbour_blocks = tuple(
                frozenset(
                    block_of[neighbour]
                    for neighbour in structure.equivalence_class(agent, world)
                )
                for agent in agents
            )
            signature = (block_of[world], neighbour_blocks)
            block = signature_to_block.setdefault(signature, len(signature_to_block))
            new_block_of[world] = block
        # The signature includes the previous block id, so refinement can only split
        # blocks; the partition changed exactly when the number of blocks grew.
        changed = len(set(new_block_of.values())) != len(set(block_of.values()))
        block_of = new_block_of

    blocks: Dict[int, Set[World]] = {}
    for world, block in block_of.items():
        blocks.setdefault(block, set()).add(world)
    return tuple(frozenset(members) for members in blocks.values())


def are_bisimilar(structure: KripkeStructure, world_a: World, world_b: World) -> bool:
    """Whether ``world_a`` and ``world_b`` are bisimilar in ``structure``."""
    for block in bisimulation_classes(structure):
        if world_a in block:
            return world_b in block
    return False  # pragma: no cover - every world is in some block


def quotient(structure: KripkeStructure) -> Tuple[KripkeStructure, Dict[World, FrozenSet[World]]]:
    """The bisimulation quotient of ``structure``.

    Returns the quotient structure (whose worlds are frozensets of original worlds)
    together with the mapping from original worlds to their class, so callers can
    translate query results back.
    """
    classes = bisimulation_classes(structure)
    class_of: Dict[World, FrozenSet[World]] = {}
    for block in classes:
        for world in block:
            class_of[world] = block

    valuation = {block: structure.facts_at(next(iter(block))) for block in classes}

    partitions: Dict[object, List[Set[FrozenSet[World]]]] = {}
    for agent in structure.agents:
        # Two quotient worlds are indistinguishable to the agent if some (equivalently
        # by bisimilarity, every) pair of representatives is.
        blocks: List[Set[FrozenSet[World]]] = []
        assigned: Set[FrozenSet[World]] = set()
        for block in classes:
            if block in assigned:
                continue
            representative = next(iter(block))
            reachable_classes = {
                class_of[w]
                for w in structure.equivalence_class(agent, representative)
            }
            group = {c for c in reachable_classes}
            group.add(block)
            blocks.append(group)
            assigned.update(group)
        partitions[agent] = blocks

    quotient_structure = KripkeStructure(classes, structure.agents, valuation, partitions)
    return quotient_structure, class_of


def minimize(structure: KripkeStructure) -> KripkeStructure:
    """The bisimulation-minimal structure equivalent to ``structure``."""
    reduced, _ = quotient(structure)
    return reduced
