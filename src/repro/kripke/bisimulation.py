"""Bisimulation for S5 Kripke structures.

Two worlds are bisimilar when they satisfy the same primitive propositions and, for
every agent, each world in the equivalence class of one can be matched by a bisimilar
world in the equivalence class of the other.  Bisimilar worlds satisfy exactly the
same formulas of the epistemic language (including common knowledge and the fixpoint
operators), so quotienting a structure by bisimilarity is a sound state-space
reduction for model checking.

The partition refinement here is the worklist (Paige–Tarjan style) algorithm over a
*bitset* block representation: blocks of worlds are integer masks over the
structure's :meth:`~repro.kripke.structure.KripkeStructure.indexed_universe`, and
because every agent relation is an equivalence relation given by partition blocks,
the predecessor set of a splitter is simply the union of the agent blocks that
intersect it — one AND per agent block.  Splitting is then two ANDs per bisimulation
block.  When a block splits, *both* halves are enqueued as future splitters:
Hopcroft's "process only the smaller half" refinement is unsound here, because the
relations are not functions — one agent class can intersect both halves, so
stability with respect to the block and one half does not imply stability with
respect to the other half.  The effect of minimisation on muddy-children-style
model checking is measured by the on/off ablation in
``benchmarks/bench_bisimulation.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.kripke.structure import KripkeStructure, World

__all__ = [
    "bisimulation_classes",
    "are_bisimilar",
    "quotient",
    "minimize",
]


def _bisimulation_block_masks(structure: KripkeStructure) -> List[int]:
    """The coarsest bisimulation-stable partition, as bitmasks.

    Worklist partition refinement: start from the valuation partition, then
    repeatedly pick a pending *splitter* block ``S`` and, for every agent ``a``,
    split each block along ``pred_a(S)`` — the worlds with an ``a``-edge into
    ``S``.  Since ``a``'s relation is an equivalence relation stored as
    partition blocks, ``pred_a(S)`` is the union of ``a``-blocks meeting ``S``.
    Both halves of every split are enqueued as splitters (a split pending block
    is replaced by its halves); see the module docstring for why Hopcroft's
    smaller-half shortcut cannot be used with relations.
    """
    universe = structure.indexed_universe()

    # Initial partition: group worlds by their valuation.
    by_valuation: Dict[FrozenSet[str], int] = {}
    bit = 1
    for world in universe.elements:
        facts = structure.facts_at(world)
        by_valuation[facts] = by_valuation.get(facts, 0) | bit
        bit <<= 1
    blocks: List[int] = list(by_valuation.values())

    agents = sorted(structure.agents, key=repr)
    agent_blocks = [structure.partition_masks(agent) for agent in agents]

    pending: List[int] = list(blocks)
    on_worklist: Set[int] = set(blocks)
    while pending:
        splitter = pending.pop()
        if splitter not in on_worklist:
            continue  # replaced by its halves after a split
        on_worklist.discard(splitter)
        for relation in agent_blocks:
            seen = 0
            for block in relation:
                if block & splitter:
                    seen |= block
            new_blocks: List[int] = []
            for block in blocks:
                inside = block & seen
                if not inside or inside == block:
                    new_blocks.append(block)
                    continue
                outside = block ^ inside
                new_blocks.append(inside)
                new_blocks.append(outside)
                on_worklist.discard(block)
                for half in (inside, outside):
                    if half not in on_worklist:
                        on_worklist.add(half)
                        pending.append(half)
            blocks = new_blocks
    return blocks


def bisimulation_classes(structure: KripkeStructure) -> Tuple[FrozenSet[World], ...]:
    """The coarsest partition of the worlds into bisimilarity classes.

    Computed by hash-free worklist partition refinement over bitset blocks (see
    :func:`_bisimulation_block_masks`); the result is converted back to
    frozensets at the boundary.
    """
    universe = structure.indexed_universe()
    return tuple(
        universe.to_frozenset(mask) for mask in _bisimulation_block_masks(structure)
    )


def are_bisimilar(structure: KripkeStructure, world_a: World, world_b: World) -> bool:
    """Whether ``world_a`` and ``world_b`` are bisimilar in ``structure``.

    Unknown worlds raise :class:`~repro.errors.UnknownWorldError`, matching
    every other world-taking accessor of the structure.
    """
    bit_a = 1 << structure.world_index(world_a)
    bit_b = 1 << structure.world_index(world_b)
    for mask in _bisimulation_block_masks(structure):
        if mask & bit_a:
            return bool(mask & bit_b)
    raise AssertionError("every world lies in some block")  # pragma: no cover


def quotient(structure: KripkeStructure) -> Tuple[KripkeStructure, Dict[World, FrozenSet[World]]]:
    """The bisimulation quotient of ``structure``.

    Returns the quotient structure (whose worlds are frozensets of original worlds)
    together with the mapping from original worlds to their class, so callers can
    translate query results back.

    The agents' quotient partitions are computed in bitmask space: two quotient
    worlds are indistinguishable to an agent iff some (equivalently, by
    stability, every) pair of representatives is, so each quotient block is read
    off one representative's class mask with one AND per bisimulation class.
    """
    universe = structure.indexed_universe()
    class_masks = _bisimulation_block_masks(structure)
    classes = tuple(universe.to_frozenset(mask) for mask in class_masks)
    class_of: Dict[World, FrozenSet[World]] = {}
    for block in classes:
        for world in block:
            class_of[world] = block

    representatives = [
        universe.elements[(mask & -mask).bit_length() - 1] for mask in class_masks
    ]
    valuation = {
        block: structure.facts_at(representative)
        for block, representative in zip(classes, representatives)
    }

    partitions: Dict[object, List[Set[FrozenSet[World]]]] = {}
    for agent in structure.agents:
        class_order = structure.class_masks_in_order(agent)
        # One pass over the worlds of every class builds the agent-block ->
        # intersecting-class-indices map; each quotient block is then read off
        # the representative's agent block in O(1) instead of rescanning every
        # class mask per representative.
        intersecting: Dict[int, List[int]] = {}
        for index, mask in enumerate(class_masks):
            remaining = mask
            while remaining:
                low = remaining & -remaining
                agent_block = class_order[low.bit_length() - 1]
                intersecting.setdefault(agent_block, []).append(index)
                remaining &= ~agent_block  # co-members contribute nothing new
        blocks: List[Set[FrozenSet[World]]] = []
        assigned: Set[int] = set()
        for index, mask in enumerate(class_masks):
            if index in assigned:
                continue
            representative_block = class_order[(mask & -mask).bit_length() - 1]
            group = intersecting[representative_block]
            blocks.append({classes[j] for j in group})
            assigned.update(group)
        partitions[agent] = blocks

    quotient_structure = KripkeStructure(classes, structure.agents, valuation, partitions)
    return quotient_structure, class_of


def minimize(structure: KripkeStructure) -> KripkeStructure:
    """The bisimulation-minimal structure equivalent to ``structure``."""
    reduced, _ = quotient(structure)
    return reduced
