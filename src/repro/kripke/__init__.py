"""Finite Kripke-structure substrate (system S3 of DESIGN.md).

Provides S5 Kripke structures, a model checker for the full static epistemic language
(including distributed and common knowledge and the fixpoint operators of Appendix A),
public/private announcement updates, bisimulation minimisation, and builders for the
model shapes the paper's examples use.
"""

from repro.kripke.announcement import (
    UpdateChain,
    announce_sequence,
    private_announce,
    public_announce,
    simultaneous_answers,
)
from repro.kripke.bisimulation import (
    are_bisimilar,
    bisimulation_classes,
    minimize,
    quotient,
)
from repro.kripke.builders import (
    blind_model,
    from_worlds,
    muddy_children_worlds,
    observed_variable_model,
    others_attribute_model,
    shared_memory_model,
)
from repro.kripke.checker import CommonKnowledgeStrategy, ModelChecker
from repro.kripke.structure import KripkeStructure, World

__all__ = [
    "UpdateChain",
    "announce_sequence",
    "private_announce",
    "public_announce",
    "simultaneous_answers",
    "are_bisimilar",
    "bisimulation_classes",
    "minimize",
    "quotient",
    "blind_model",
    "from_worlds",
    "muddy_children_worlds",
    "observed_variable_model",
    "others_attribute_model",
    "shared_memory_model",
    "CommonKnowledgeStrategy",
    "ModelChecker",
    "KripkeStructure",
    "World",
]
