"""``python -m repro`` — the scenario/experiment command line interface."""

import sys

from repro.cli import main

sys.exit(main())
