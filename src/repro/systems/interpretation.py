"""View-based knowledge interpretations over runs-and-systems models (Section 6).

A :class:`ViewBasedInterpretation` is the triple ``I = (R, pi, v)`` of the paper: a
system of runs, a valuation of ground facts at points, and a view function.  It
evaluates the full language of :mod:`repro.logic` at points ``(r, t)``:

* the static epistemic operators ``K_i``, ``S_G``, ``E_G``, ``D_G``, ``C_G`` exactly
  as clauses (a)–(g) of Section 6 prescribe;
* the fixpoint operators of Appendix A;
* the temporal operators ``<>``/``[]`` over the future of the current run; and
* the temporal-epistemic operators of Sections 11 and 12 — ``E^eps``/``C^eps``,
  ``E^<>``/``C^<>`` and ``K^T``/``E^T``/``C^T`` — all of which are evaluated as
  greatest fixed points, following the paper's definitions.

The indistinguishability relation induced by the view function is computed once per
processor and cached; common knowledge uses G-reachability over the resulting graph of
points, which is exactly the graph construction of Section 6.

Backend architecture
--------------------
The static fragment of the language (Boolean connectives, ``K``/``S``/``E``/``D``/
``C`` and the plain fixpoint binders) is evaluated by the shared
:class:`repro.engine.EvaluationEngine`, instantiated over the system's points.  The
``backend`` constructor argument selects the set representation: ``"frozenset"``
(the reference semantics, default) or ``"bitset"`` (integer bitmasks with
precomputed per-processor partition masks — much faster on large systems).  The
temporal and temporal-epistemic operators are host-specific — they need the run/time
shape of points — so this class feeds them to the engine through its ``special``
hooks; their extensions are still memoised in the engine's cache, and both backends
remain observably identical (``tests/test_engine_equivalence.py`` and
``tests/test_temporal_masks.py``).

The temporal fragment has *two* implementations:

* the frozenset transcription of the paper's clauses (``_evaluate_temporal``, the
  reference semantics — per-run Python loops with ``O(T^2)`` suffix scans); and
* a mask-space fast path (``_evaluate_temporal_masks``, used automatically on the
  bitset backend).  Points are laid out run-major, so each run occupies one
  contiguous bit range of the engine's universe (a
  :class:`~repro.engine.universe.Segmentation`): ``<>``/``[]`` become one backward
  sweep per universe, the run-level operators (``E^<>``, ``K^T``, ``E^T``) become
  broadcast-to-run-mask operations, ``E^eps`` windows become guarded shift
  compositions over precomputed per-agent known-time masks, and the ``C^eps`` /
  ``C^<>`` / ``C^T`` greatest fixpoints iterate entirely over masks.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.engine import EvaluationEngine, Segmentation
from repro.engine.backends import BitsetBackend
from repro.errors import EvaluationError, UnknownAgentError
from repro.logic.agents import Agent, GroupLike, as_group
from repro.logic.fixpoint import greatest_fixpoint
from repro.logic.syntax import (
    Always,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Eventually,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Formula,
    KnowsAt,
)
from repro.systems.runs import Point, Run
from repro.systems.system import RunFactsValuation, System, Valuation
from repro.systems.views import CompleteHistoryView, ViewFunction

__all__ = ["ViewBasedInterpretation"]

PointSet = FrozenSet[Point]

_CLOCK_TOLERANCE = 1e-9


def _clock_matches(reading: Optional[float], timestamp: float) -> bool:
    """Whether a clock reading equals a formula timestamp, up to float tolerance.

    Drifting-rate clocks produce readings like ``0.1 * 3 == 0.30000000000000004``;
    an exact ``==`` against the timestamp ``0.3`` silently misses them, so the
    comparison tolerates relative/absolute error of ``1e-9`` (far below any clock
    granularity the library produces, far above accumulated float error).
    """
    if reading is None:
        return False
    return math.isclose(reading, timestamp, rel_tol=_CLOCK_TOLERANCE, abs_tol=_CLOCK_TOLERANCE)


def _eps_steps(eps: float) -> int:
    """Validate an ``E^eps``/``C^eps`` epsilon as a whole number of time steps.

    The interval semantics of Appendix A clause (h) is evaluated on the discrete
    time grid, so a fractional eps cannot be honoured; truncating it (the old
    behaviour) silently turned ``E^0.5`` into ``E^0``, which is a strictly
    stronger formula.  Rejecting loudly keeps the semantics honest.
    """
    steps = int(eps)
    if steps != eps:
        raise EvaluationError(
            f"E^eps/C^eps windows advance in whole time steps of the run; "
            f"got eps={eps!r} — use an integer number of steps"
        )
    return steps


class ViewBasedInterpretation:
    """The knowledge interpretation ``I = (R, pi, v)`` of Section 6.

    Parameters
    ----------
    system:
        The system of runs ``R``.
    valuation:
        The ground-fact assignment ``pi`` (defaults to reading each run's recorded
        facts).
    view:
        The view function ``v`` (defaults to the complete-history interpretation).
    backend:
        Which engine backend represents extensions: ``"frozenset"`` (reference) or
        ``"bitset"`` (fast bitmask evaluation).  ``None`` picks the process-wide
        default (:func:`repro.engine.get_default_backend`).
    """

    def __init__(
        self,
        system: System,
        valuation: Optional[Valuation] = None,
        view: Optional[ViewFunction] = None,
        backend: Optional[str] = None,
    ):
        self._system = system
        self._valuation = valuation if valuation is not None else RunFactsValuation()
        self._view = view if view is not None else CompleteHistoryView()
        self._points: Tuple[Point, ...] = tuple(system.points())
        self._point_set: PointSet = frozenset(self._points)
        self._classes: Dict[Agent, Dict[Point, PointSet]] = {}
        self._build_indistinguishability()
        # Mask-path state (bitset backend only), built lazily on the first
        # temporal query: the run-major segment layout, the per-(agent, body)
        # knowledge masks reused across fixpoint iterations, and the
        # per-(agent, timestamp) clock-reading masks (pure model data).
        self._segments: Optional[Segmentation] = None
        self._mask_ready: Optional[bool] = None
        self._mask_knowledge_cache: Dict[Tuple[Agent, int], int] = {}
        self._reading_masks: Dict[Tuple[Agent, float], int] = {}
        self._engine = EvaluationEngine(
            self._points,
            self._classes,
            self._prop_extension,
            require_agent=self._require_processor,
            require_group=self._group_members,
            special=self._evaluate_temporal,
            special_native=self._evaluate_temporal_masks,
            backend=backend,
        )

    def _build_indistinguishability(self) -> None:
        for processor in sorted(self._system.processors, key=repr):
            by_view: Dict[object, Set[Point]] = {}
            for point in self._points:
                run, time = point
                key = self._view.view(processor, run, time)
                by_view.setdefault(key, set()).add(point)
            class_of: Dict[Point, PointSet] = {}
            for members in by_view.values():
                block = frozenset(members)
                for point in block:
                    class_of[point] = block
            self._classes[processor] = class_of

    # -- basic accessors --------------------------------------------------------
    @property
    def system(self) -> System:
        """The underlying system of runs."""
        return self._system

    @property
    def valuation(self) -> Valuation:
        """The ground-fact valuation ``pi``."""
        return self._valuation

    @property
    def view(self) -> ViewFunction:
        """The view function ``v``."""
        return self._view

    @property
    def points(self) -> Tuple[Point, ...]:
        """Every point of the system, in a deterministic order."""
        return self._points

    @property
    def engine(self) -> EvaluationEngine:
        """The shared evaluation engine this interpretation delegates to."""
        return self._engine

    @property
    def backend(self) -> str:
        """The name of the active set-representation backend."""
        return self._engine.backend_name

    def equivalence_class(self, processor: Agent, point: Point) -> PointSet:
        """The points ``processor`` cannot distinguish from ``point``."""
        classes = self._classes.get(processor)
        if classes is None:
            raise UnknownAgentError(f"unknown processor {processor!r}")
        self._system.require_point(point)
        return classes[point]

    def indistinguishable(self, processor: Agent, point_a: Point, point_b: Point) -> bool:
        """Whether ``processor`` has the same view at both points."""
        return point_b in self.equivalence_class(processor, point_a)

    def joint_class(self, group: GroupLike, point: Point) -> PointSet:
        """The intersection of the members' classes (the group's joint view)."""
        members = as_group(group).sorted_members()
        result: Optional[PointSet] = None
        for processor in members:
            block = self.equivalence_class(processor, point)
            result = block if result is None else result & block
        assert result is not None
        return result

    def reachable(self, group: GroupLike, point: Point, max_steps: Optional[int] = None) -> PointSet:
        """Points G-reachable from ``point`` (in at most ``max_steps`` steps if given).

        Common knowledge of ``phi`` holds at ``point`` exactly when ``phi`` holds at
        every G-reachable point (Section 6).
        """
        members = as_group(group).sorted_members()
        self._system.require_point(point)
        visited: Set[Point] = {point}
        frontier: List[Point] = [point]
        steps = 0
        while frontier and (max_steps is None or steps < max_steps):
            next_frontier: List[Point] = []
            for current in frontier:
                for processor in members:
                    for neighbour in self._classes[processor][current]:
                        if neighbour not in visited:
                            visited.add(neighbour)
                            next_frontier.append(neighbour)
            frontier = next_frontier
            steps += 1
        return frozenset(visited)

    # -- formula evaluation --------------------------------------------------------
    def extension(
        self,
        formula: Formula,
        environment: Optional[Mapping[str, PointSet]] = None,
    ) -> PointSet:
        """The set of points at which ``formula`` holds."""
        return self._engine.extension(formula, environment)

    def extensions(
        self,
        formulas: Iterable[Formula],
        environment: Optional[Mapping[str, PointSet]] = None,
    ) -> List[PointSet]:
        """Batch evaluation: the extensions of ``formulas`` in order, sharing the
        engine's subformula memo across the whole batch."""
        return self._engine.extensions(formulas, environment)

    def holds(self, formula: Formula, run: Run, time: int) -> bool:
        """Whether ``formula`` holds at the point ``(run, time)``."""
        point = Point(run, time)
        self._system.require_point(point)
        return point in self.extension(formula)

    def holds_at(self, formula: Formula, point: Point) -> bool:
        """Whether ``formula`` holds at ``point``."""
        self._system.require_point(point)
        return point in self.extension(formula)

    def is_valid(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at every point of the system (validity)."""
        return self.extension(formula) == self._point_set

    def is_satisfiable(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at some point of the system."""
        return bool(self.extension(formula))

    def clear_cache(self) -> None:
        """Drop memoised extensions.

        Delegates to the engine, and additionally drops the mask path's
        body-dependent knowledge masks.  Structural model data (the segment
        layout, clock-reading masks) survives — it depends only on the immutable
        system, never on formulas.
        """
        self._engine.clear_cache()
        self._mask_knowledge_cache.clear()

    # -- conversion ---------------------------------------------------------------
    def to_kripke(self):
        """Export the interpretation as a finite Kripke structure over the points.

        Worlds are ``(run name, time)`` pairs; each processor's partition is its
        indistinguishability relation; the valuation lists the ground facts true at
        each point.  The static fragment of the language (everything except the
        temporal-epistemic operators) evaluates identically on the exported structure,
        which the integration tests verify.
        """
        from repro.kripke.structure import KripkeStructure

        label = {point: (point.run.name, point.time) for point in self._points}
        worlds = set(label.values())
        valuation = {
            label[point]: self._valuation.facts_at(point) for point in self._points
        }
        partitions = {}
        for processor in self._system.processors:
            seen: Set[Point] = set()
            blocks = []
            for point in self._points:
                if point in seen:
                    continue
                block = self._classes[processor][point]
                seen.update(block)
                blocks.append({label[member] for member in block})
            partitions[processor] = blocks
        return KripkeStructure(worlds, self._system.processors, valuation, partitions)

    # -- engine adapters -----------------------------------------------------------
    def _prop_extension(self, name: str) -> PointSet:
        return frozenset(
            point
            for point in self._points
            if name in self._valuation.facts_at(point)
        )

    def _require_processor(self, processor: Agent) -> None:
        raise UnknownAgentError(f"unknown processor {processor!r}")

    def _evaluate_temporal(
        self, formula: Formula, evaluate: Callable[[Formula], PointSet]
    ) -> Optional[PointSet]:
        """The engine's ``special`` hook: the run/time-dependent operators.

        This is the *reference semantics* — a literal transcription of the paper's
        clauses over frozensets.  On the bitset backend the engine consults
        :meth:`_evaluate_temporal_masks` first; this path then only runs for the
        frozenset backend (and is what the differential tests pin the mask path
        against).  ``evaluate`` resolves subformulas under the current variable
        environment and always hands back frozensets, whatever backend the engine
        runs on.
        """
        if isinstance(formula, Eventually):
            body = evaluate(formula.operand)
            return frozenset(
                Point(run, time)
                for run in self._system.runs
                for time in run.times()
                if any(Point(run, later) in body for later in range(time, run.duration + 1))
            )
        if isinstance(formula, Always):
            body = evaluate(formula.operand)
            return frozenset(
                Point(run, time)
                for run in self._system.runs
                for time in run.times()
                if all(Point(run, later) in body for later in range(time, run.duration + 1))
            )

        if isinstance(formula, EveryoneEps):
            body = evaluate(formula.operand)
            return self._everyone_eps(formula.group, body, formula.eps)
        if isinstance(formula, EveryoneDiamond):
            body = evaluate(formula.operand)
            return self._everyone_diamond(formula.group, body)
        if isinstance(formula, EveryoneAt):
            body = evaluate(formula.operand)
            return self._everyone_at(formula.group, body, formula.timestamp)
        if isinstance(formula, KnowsAt):
            body = evaluate(formula.operand)
            return self._knows_at(formula.agent, body, formula.timestamp)

        if isinstance(formula, CommonEps):
            return self._variant_fixpoint(
                evaluate(formula.operand),
                lambda body: self._everyone_eps(formula.group, body, formula.eps),
            )
        if isinstance(formula, CommonDiamond):
            return self._variant_fixpoint(
                evaluate(formula.operand),
                lambda body: self._everyone_diamond(formula.group, body),
            )
        if isinstance(formula, CommonAt):
            return self._variant_fixpoint(
                evaluate(formula.operand),
                lambda body: self._everyone_at(formula.group, body, formula.timestamp),
            )
        return None

    # -- mask-space temporal fast path (bitset backend) ------------------------------
    def _mask_segments(self, backend) -> Optional[Segmentation]:
        """The run-segment layout of the engine's bit numbering, or ``None``.

        ``None`` means the mask path does not apply (non-bitset backend, or a
        caller-supplied backend whose universe is not this interpretation's
        point order) and the engine must fall back to the frozenset reference.
        """
        if self._mask_ready is None:
            ready = (
                isinstance(backend, BitsetBackend)
                and backend.universe.elements == self._points
            )
            if ready:
                # System.points() yields runs sorted by name, each contributing
                # its contiguous 0..duration block, so segment i is run i.
                self._segments = Segmentation(
                    run.duration + 1 for run in self._system.runs
                )
            self._mask_ready = ready
        return self._segments if self._mask_ready else None

    def _evaluate_temporal_masks(
        self, formula: Formula, evaluate: Callable[[Formula], int], backend
    ) -> Optional[int]:
        """The engine's ``special_native`` hook: temporal operators in mask space.

        ``evaluate`` resolves subformulas to backend values — bitmasks here.  The
        operators are the same clauses as :meth:`_evaluate_temporal`, restated as
        whole-universe bit sweeps over the run-major segment layout; the
        differential tests (``tests/test_temporal_masks.py``) pin the two paths
        observably identical on every operator.
        """
        segments = self._mask_segments(backend)
        if segments is None:
            return None

        if isinstance(formula, Eventually):
            return segments.suffix_or(evaluate(formula.operand))
        if isinstance(formula, Always):
            return segments.suffix_and(evaluate(formula.operand))

        if isinstance(formula, EveryoneEps):
            members = self._group_members(formula.group)
            steps = _eps_steps(formula.eps)
            return self._mask_everyone_eps(
                members, evaluate(formula.operand), steps, backend, segments
            )
        if isinstance(formula, EveryoneDiamond):
            members = self._group_members(formula.group)
            return self._mask_everyone_diamond(
                members, evaluate(formula.operand), backend, segments
            )
        if isinstance(formula, EveryoneAt):
            members = self._group_members(formula.group)
            return self._mask_everyone_at(
                members, evaluate(formula.operand), formula.timestamp, backend, segments
            )
        if isinstance(formula, KnowsAt):
            return self._mask_knows_at(
                formula.agent, evaluate(formula.operand), formula.timestamp, backend, segments
            )

        if isinstance(formula, CommonEps):
            members = self._group_members(formula.group)
            steps = _eps_steps(formula.eps)
            body = evaluate(formula.operand)
            return EvaluationEngine._iterate_until_stable(
                lambda current: self._mask_everyone_eps(
                    members, body & current, steps, backend, segments
                ),
                segments.full_mask,
            )
        if isinstance(formula, CommonDiamond):
            members = self._group_members(formula.group)
            body = evaluate(formula.operand)
            return EvaluationEngine._iterate_until_stable(
                lambda current: self._mask_everyone_diamond(
                    members, body & current, backend, segments
                ),
                segments.full_mask,
            )
        if isinstance(formula, CommonAt):
            members = self._group_members(formula.group)
            body = evaluate(formula.operand)
            return EvaluationEngine._iterate_until_stable(
                lambda current: self._mask_everyone_at(
                    members, body & current, formula.timestamp, backend, segments
                ),
                segments.full_mask,
            )
        return None

    def _mask_knowledge(self, backend, agent: Agent, body: int) -> int:
        """``K_i`` of a body mask, memoised per ``(agent, body)``.

        Fixpoint iterations re-request the same knowledge masks (the converged
        iterate repeats, and different C-variants share bodies), so a small
        per-interpretation cache removes the repeated partition scans.
        """
        key = (agent, body)
        cached = self._mask_knowledge_cache.get(key)
        if cached is None:
            cached = backend.knowledge(agent, body)
            self._mask_knowledge_cache[key] = cached
        return cached

    def _mask_everyone_eps(
        self, members, body: int, steps: int, backend, segments: Segmentation
    ) -> int:
        """Clause (h) in mask space: a window start works for every member.

        ``window_or_ahead`` marks the starts whose ``[start, start+eps]`` window
        (clipped to the run) contains a known time; intersecting over the members
        and sweeping back over the admissible starts ``[t-eps, t]`` yields the
        satisfied points — a handful of guarded shifts instead of the reference's
        per-point window search.
        """
        width = steps + 1
        window_ok = segments.full_mask
        for agent in members:
            known = self._mask_knowledge(backend, agent, body)
            window_ok &= segments.window_or_ahead(known, width)
            if not window_ok:
                return 0
        return segments.window_or_behind(window_ok, width)

    def _mask_everyone_diamond(
        self, members, body: int, backend, segments: Segmentation
    ) -> int:
        """Clause (i) in mask space: broadcast each member's known-times to runs."""
        result = segments.full_mask
        for agent in members:
            result &= segments.spread(self._mask_knowledge(backend, agent, body))
            if not result:
                return 0
        return result

    def _reading_mask(self, agent: Agent, timestamp: float, backend) -> int:
        """The points at which ``agent``'s clock reads ``timestamp`` (cached).

        Pure model data — computed once per ``(agent, timestamp)`` and kept for
        the life of the interpretation, across fixpoint iterations and queries.
        """
        key = (agent, timestamp)
        cached = self._reading_masks.get(key)
        if cached is None:
            universe = backend.universe
            cached = 0
            for run in self._system.runs:
                for time in run.times():
                    if _clock_matches(run.clock_reading(agent, time), timestamp):
                        cached |= universe.bit(Point(run, time))
            self._reading_masks[key] = cached
        return cached

    def _mask_knows_at(
        self, agent: Agent, body: int, timestamp: float, backend, segments: Segmentation
    ) -> int:
        """``K^T_i`` in mask space: a run-level property as segment broadcasts.

        A run qualifies iff it has a reading of ``timestamp`` and no reading
        point escapes the knowledge mask; qualifying segments are broadcast
        whole, matching the reference's run-level semantics.
        """
        if agent not in self._system.processors:
            raise UnknownAgentError(f"unknown processor {agent!r}")
        reading = self._reading_mask(agent, timestamp, backend)
        if not reading:
            return 0
        knowledge = self._mask_knowledge(backend, agent, body)
        missed = reading & ~knowledge
        return segments.spread(reading) & ~segments.spread(missed)

    def _mask_everyone_at(
        self, members, body: int, timestamp: float, backend, segments: Segmentation
    ) -> int:
        result = segments.full_mask
        for agent in members:
            result &= self._mask_knows_at(agent, body, timestamp, backend, segments)
            if not result:
                return 0
        return result

    # -- knowledge-of-a-group helpers ----------------------------------------------
    def _group_members(self, group) -> Tuple[Agent, ...]:
        members = as_group(group).sorted_members()
        unknown = set(members) - self._system.processors
        if unknown:
            raise UnknownAgentError(
                f"group mentions unknown processors {sorted(map(repr, unknown))}"
            )
        return members

    def _knowledge_extension(self, agent: Agent, body: PointSet) -> PointSet:
        classes = self._classes[agent]
        return frozenset(p for p in self._points if classes[p] <= body)

    def _everyone_eps(self, group, body: PointSet, eps: float) -> PointSet:
        """Appendix A clause (h): there is an interval ``[t0, t0+eps]`` containing the
        current time in which every member of the group knows the body at some time."""
        members = self._group_members(group)
        knowledge = {agent: self._knowledge_extension(agent, body) for agent in members}
        eps_steps = _eps_steps(eps)
        satisfied: Set[Point] = set()
        for run in self._system.runs:
            # For each agent, the times in this run at which it knows the body.
            known_times = {
                agent: sorted(
                    time
                    for time in run.times()
                    if Point(run, time) in knowledge[agent]
                )
                for agent in members
            }
            for time in run.times():
                for start in range(max(0, time - eps_steps), time + 1):
                    end = start + eps_steps
                    if all(
                        any(start <= t <= end for t in known_times[agent])
                        for agent in members
                    ):
                        satisfied.add(Point(run, time))
                        break
        return frozenset(satisfied)

    def _everyone_diamond(self, group, body: PointSet) -> PointSet:
        """Appendix A clause (i): every member of the group knows the body at some
        time (any time) of the run."""
        members = self._group_members(group)
        knowledge = {agent: self._knowledge_extension(agent, body) for agent in members}
        satisfied: Set[Point] = set()
        for run in self._system.runs:
            if all(
                any(Point(run, time) in knowledge[agent] for time in run.times())
                for agent in members
            ):
                satisfied.update(Point(run, time) for time in run.times())
        return frozenset(satisfied)

    def _knows_at(self, agent: Agent, body: PointSet, timestamp: float) -> PointSet:
        """``K^T_i phi``: at the times ``i``'s clock reads ``T`` in this run, it knows
        the body.  The clock must actually read ``T`` at some time of the run.

        The formula is a property of the run, so it holds at every point of a run
        that satisfies it and at no point of a run that does not.
        """
        if agent not in self._system.processors:
            raise UnknownAgentError(f"unknown processor {agent!r}")
        knowledge = self._knowledge_extension(agent, body)
        satisfied: Set[Point] = set()
        for run in self._system.runs:
            reading_times = [
                time
                for time in run.times()
                if _clock_matches(run.clock_reading(agent, time), timestamp)
            ]
            if reading_times and all(
                Point(run, time) in knowledge for time in reading_times
            ):
                satisfied.update(Point(run, time) for time in run.times())
        return frozenset(satisfied)

    def _everyone_at(self, group, body: PointSet, timestamp: float) -> PointSet:
        members = self._group_members(group)
        result: Optional[PointSet] = None
        for agent in members:
            extension = self._knows_at(agent, body, timestamp)
            result = extension if result is None else result & extension
        assert result is not None
        return result

    def _variant_fixpoint(
        self, body: PointSet, everyone_operator: Callable[[PointSet], PointSet]
    ) -> PointSet:
        """Greatest fixed point of ``X == E*(phi & X)`` for the chosen E* operator."""

        def transformer(current: PointSet) -> PointSet:
            return everyone_operator(body & current)

        return greatest_fixpoint(transformer, self._point_set).result
