"""Runs-and-systems substrate (systems S5–S9 of DESIGN.md).

Implements the paper's general model of a distributed system (Section 5), view-based
and general epistemic knowledge interpretations (Sections 6 and 13), the temporal
variants of common knowledge (Sections 11 and 12), and the communication-property
conditions used by the attainability theorems (Section 8 and Appendix B).
"""

from repro.systems.clocks import (
    Clock,
    clocks_within,
    no_clock,
    offset_clock,
    perfect_clock,
    scaled_clock,
    validate_clock,
)
from repro.systems.conditions import (
    ConditionReport,
    communication_not_guaranteed,
    has_temporal_imprecision,
    satisfies_ng1,
    satisfies_ng2,
    satisfies_unbounded_delivery,
    shifted_run_exists,
    uncertain_start_times,
)
from repro.systems.epistemic import (
    BeliefAssignment,
    EpistemicInterpretation,
    eager_belief_assignment,
)
from repro.systems.events import Event, InternalEvent, Message, ReceiveEvent, SendEvent
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import LocalHistory, Point, Run, RunBuilder
from repro.systems.system import (
    CallableValuation,
    RunFactsValuation,
    StaticValuation,
    System,
    Valuation,
)
from repro.systems.views import (
    ClockOnlyView,
    CompleteHistoryView,
    LocalStateView,
    RecentEventsView,
    TrivialView,
    ViewFunction,
)

__all__ = [
    "Clock",
    "clocks_within",
    "no_clock",
    "offset_clock",
    "perfect_clock",
    "scaled_clock",
    "validate_clock",
    "ConditionReport",
    "communication_not_guaranteed",
    "has_temporal_imprecision",
    "satisfies_ng1",
    "satisfies_ng2",
    "satisfies_unbounded_delivery",
    "shifted_run_exists",
    "uncertain_start_times",
    "BeliefAssignment",
    "EpistemicInterpretation",
    "eager_belief_assignment",
    "Event",
    "InternalEvent",
    "Message",
    "ReceiveEvent",
    "SendEvent",
    "ViewBasedInterpretation",
    "LocalHistory",
    "Point",
    "Run",
    "RunBuilder",
    "CallableValuation",
    "RunFactsValuation",
    "StaticValuation",
    "System",
    "Valuation",
    "ClockOnlyView",
    "CompleteHistoryView",
    "LocalStateView",
    "RecentEventsView",
    "TrivialView",
    "ViewFunction",
]
