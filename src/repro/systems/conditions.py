"""Communication-property conditions on systems (Section 8 and Appendix B).

The paper's attainability theorems are stated for systems satisfying structural
conditions on their sets of runs:

* **NG1 / NG2** — "communication is not guaranteed" (Section 8); Theorem 5.
* **NG1'** — "unbounded message delivery times" together with NG2 (Section 8);
  Theorem 7.
* **Temporal imprecision** — Appendix B; Theorem 8, via Lemma 14 and Proposition 13.
* **Uncertain start times / bounded-but-uncertain delivery** — Appendix B's
  sufficient conditions for temporal imprecision (Proposition 15).

Because the reproduction works with *finite, explicitly enumerated* systems on a
discrete time grid, these conditions become decidable properties that this module
checks by brute force.  The continuous-time quantifier "there exists delta > 0 such
that for all delta' in [0, delta)" of the temporal-imprecision definition is
reproduced with a grid shift of one tick (``shift=1``), the smallest non-trivial
discrete shift; DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.agents import Agent
from repro.systems.runs import Point, Run
from repro.systems.system import System

__all__ = [
    "ConditionReport",
    "satisfies_ng1",
    "satisfies_ng2",
    "satisfies_unbounded_delivery",
    "communication_not_guaranteed",
    "shifted_run_exists",
    "has_temporal_imprecision",
    "uncertain_start_times",
]


@dataclass
class ConditionReport:
    """The outcome of checking one condition on a system.

    ``holds`` is the verdict; ``counterexamples`` lists (up to ``limit``) witnesses of
    failure, each described by a human-readable string, so test failures and notebook
    output stay interpretable.
    """

    condition: str
    holds: bool
    checked: int = 0
    counterexamples: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def _no_messages_received_at_or_after(run: Run, time: int) -> bool:
    return all(t < time for t in run.receive_times())


def _no_messages_received_in(run: Run, start: int, end: int) -> bool:
    """No messages received in the closed interval ``[start, end]``."""
    return all(not (start <= t <= end) for t in run.receive_times())


def _processor_receives_in_open_interval(run: Run, processor: Agent, start: int, end: int) -> bool:
    """Whether ``processor`` receives a message at some time in the open interval
    ``(start, end)``."""
    from repro.systems.events import ReceiveEvent

    for t in range(start + 1, end):
        if any(isinstance(e, ReceiveEvent) for e in run.events_at(processor, t)):
            return True
    return False


def _others_receive_in_interval(run: Run, excluded: Agent, start: int, end: int) -> bool:
    """Whether some processor other than ``excluded`` receives a message at a time in
    ``[start, end)``."""
    from repro.systems.events import ReceiveEvent

    for processor in run.processors:
        if processor == excluded:
            continue
        for t in range(start, end):
            if any(isinstance(e, ReceiveEvent) for e in run.events_at(processor, t)):
                return True
    return False


def satisfies_ng1(system: System, limit: int = 5) -> ConditionReport:
    """Check condition NG1: for every point ``(r, t)`` there is a run ``r'`` extending
    it, with the same initial configuration and clock readings, in which no messages
    are received at or after ``t``."""
    report = ConditionReport("NG1", holds=True)
    for run in system.runs:
        for time in run.times():
            report.checked += 1
            witness_found = any(
                candidate.extends(Point(run, time))
                and candidate.same_initial_configuration(run)
                and candidate.same_clock_readings(run)
                and _no_messages_received_at_or_after(candidate, time)
                for candidate in system.runs
            )
            if not witness_found:
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"no silent extension of ({run.name}, {time})"
                    )
    return report


def satisfies_ng2(system: System, limit: int = 5) -> ConditionReport:
    """Check condition NG2.

    For every run ``r``, processor ``p_i`` and pair of times ``t' < t`` such that
    ``p_i`` receives no messages in the open interval ``(t', t)``, there must be a run
    ``r'`` extending ``(r, t')`` with the same initial configuration and clock
    readings, in which ``p_i`` has the same history as in ``r`` up to ``t`` and no
    other processor receives a message in ``[t', t)``.
    """
    report = ConditionReport("NG2", holds=True)
    for run in system.runs:
        for processor in run.processors:
            for t_prime in run.times():
                for t in range(t_prime, run.duration + 1):
                    if _processor_receives_in_open_interval(run, processor, t_prime, t):
                        continue
                    report.checked += 1
                    witness_found = False
                    for candidate in system.runs:
                        if not candidate.extends(Point(run, t_prime)):
                            continue
                        if not candidate.same_initial_configuration(run):
                            continue
                        if not candidate.same_clock_readings(run):
                            continue
                        if candidate.duration < t:
                            continue
                        if any(
                            candidate.history(processor, t2) != run.history(processor, t2)
                            for t2 in range(t_prime, t + 1)
                        ):
                            continue
                        if _others_receive_in_interval(candidate, processor, t_prime, t):
                            continue
                        witness_found = True
                        break
                    if not witness_found:
                        report.holds = False
                        if len(report.counterexamples) < limit:
                            report.counterexamples.append(
                                f"NG2 fails for run {run.name}, processor {processor}, "
                                f"interval ({t_prime}, {t})"
                            )
    return report


def satisfies_unbounded_delivery(system: System, limit: int = 5) -> ConditionReport:
    """Check condition NG1': for every point ``(r, t)`` and every ``u >= t`` there is
    a run extending ``(r, t)`` (same initial configuration, same clock readings) in
    which no messages are received in ``[t, u]``.

    On a finite-horizon system, ``u`` ranges over ``t .. horizon``.
    """
    report = ConditionReport("NG1'", holds=True)
    for run in system.runs:
        for time in run.times():
            for until in range(time, system.horizon + 1):
                report.checked += 1
                witness_found = any(
                    candidate.extends(Point(run, time))
                    and candidate.same_initial_configuration(run)
                    and candidate.same_clock_readings(run)
                    and candidate.duration >= min(until, candidate.duration)
                    and _no_messages_received_in(candidate, time, min(until, candidate.duration))
                    for candidate in system.runs
                )
                if not witness_found:
                    report.holds = False
                    if len(report.counterexamples) < limit:
                        report.counterexamples.append(
                            f"no extension of ({run.name}, {time}) silent through {until}"
                        )
    return report


def communication_not_guaranteed(system: System) -> bool:
    """Whether the system satisfies both NG1 and NG2 (Section 8's definition of
    "communication is not guaranteed")."""
    return bool(satisfies_ng1(system)) and bool(satisfies_ng2(system))


def shifted_run_exists(
    system: System,
    run: Run,
    time: int,
    shifted: Agent,
    fixed: Agent,
    shift: int = 1,
) -> bool:
    """Whether some run ``r'`` shifts ``shifted``'s history by ``shift`` ticks while
    leaving ``fixed``'s history unchanged, up to ``time``.

    This is the discrete analogue of the inner existential of the temporal-imprecision
    definition: ``h(p_i, r, t') = h(p_i, r', t' + shift)`` and
    ``h(p_j, r, t') = h(p_j, r', t')`` for all ``t' < time``.
    """
    for candidate in system.runs:
        if candidate.duration < min(time - 1 + shift, candidate.duration):
            continue
        if time - 1 + shift > candidate.duration:
            continue
        matches = True
        for t_prime in range(time):
            if run.history(shifted, t_prime) != candidate.history(shifted, t_prime + shift):
                matches = False
                break
            if run.history(fixed, t_prime) != candidate.history(fixed, t_prime):
                matches = False
                break
        if matches:
            return True
    return False


def has_temporal_imprecision(system: System, shift: int = 1, limit: int = 5) -> ConditionReport:
    """Check the (discretised) temporal-imprecision condition of Appendix B.

    For every run ``r``, time ``t``, and ordered pair of distinct processors
    ``(p_i, p_j)``, there must be a run ``r'`` in which ``p_i``'s history is delayed by
    ``shift`` ticks and ``p_j``'s history is unchanged, for all times before ``t``.
    Lemma 14 then gives that ``(r, 0)`` is reachable from ``(r, t)`` under the
    complete-history interpretation, and Theorem 8 follows.
    """
    report = ConditionReport("temporal imprecision", holds=True)
    processors = sorted(system.processors, key=repr)
    for run in system.runs:
        for time in run.times():
            for shifted in processors:
                for fixed in processors:
                    if shifted == fixed:
                        continue
                    report.checked += 1
                    if not shifted_run_exists(system, run, time, shifted, fixed, shift):
                        report.holds = False
                        if len(report.counterexamples) < limit:
                            report.counterexamples.append(
                                f"no run shifting {shifted} by {shift} while fixing "
                                f"{fixed} up to time {time} of {run.name}"
                            )
    return report


def uncertain_start_times(system: System, shift: int = 1, limit: int = 5) -> ConditionReport:
    """Check the discrete analogue of "uncertain start times" (Appendix B).

    For every run and every processor that wakes up at time ``>= shift``, there must
    be another run identical except that this processor wakes up ``shift`` ticks
    earlier (other processors' wake times, initial states and events unchanged).
    Processors that wake at time 0 in every run are exempt, mirroring the paper's
    ``delta_0`` bound.
    """
    report = ConditionReport("uncertain start times", holds=True)
    for run in system.runs:
        for processor in run.processors:
            wake = run.wake_time(processor)
            if wake < shift:
                continue
            report.checked += 1
            witness_found = False
            for candidate in system.runs:
                if candidate.wake_time(processor) != wake - shift:
                    continue
                if any(
                    candidate.wake_time(p) != run.wake_time(p)
                    or candidate.initial_state(p) != run.initial_state(p)
                    for p in run.processors
                    if p != processor
                ):
                    continue
                witness_found = True
                break
            if not witness_found:
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"no run where {processor} wakes {shift} earlier than in {run.name}"
                    )
    return report
