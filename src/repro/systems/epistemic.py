"""General epistemic interpretations, knowledge consistency, and internal knowledge
consistency (Sections 6 and 13).

A view-based interpretation always satisfies the knowledge axiom ``K_i phi -> phi``.
The paper also needs a more general notion for two purposes: to prove impossibility
results for *any* reasonable way of ascribing knowledge (Section 8), and to analyse
"eager" protocols that act as if something were common knowledge slightly before it
really is (Sections 8 and 13).

An :class:`EpistemicInterpretation` assigns to each processor, as a function of its
local history, a set of formulas the processor *believes*.  It is a *knowledge*
interpretation for a system when every belief is in fact true at every point
(:meth:`EpistemicInterpretation.is_knowledge_interpretation`), and it is *internally
knowledge consistent* when there is a subsystem ``R'`` such that the interpretation
restricted to ``R'`` is a knowledge interpretation and every local history occurring
anywhere in ``R`` also occurs in ``R'``
(:meth:`EpistemicInterpretation.is_internally_consistent_with`).
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EvaluationError, UnknownAgentError
from repro.logic.agents import Agent, as_group
from repro.logic.syntax import (
    And,
    Common,
    Everyone,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Prop,
    Someone,
    TrueFormula,
)
from repro.systems.runs import LocalHistory, Point, Run
from repro.systems.system import RunFactsValuation, System, Valuation

__all__ = ["BeliefAssignment", "EpistemicInterpretation", "eager_belief_assignment"]

BeliefAssignment = Callable[[Agent, LocalHistory], FrozenSet[Formula]]
"""A function from ``(processor, local history)`` to the set of formulas believed."""


class EpistemicInterpretation:
    """An epistemic interpretation: beliefs as a function of local histories.

    Parameters
    ----------
    system:
        The system of runs.
    beliefs:
        Maps a processor and its local history to the set of formulas it believes;
        because the argument is the history, the paper's requirement that beliefs be
        a function of the history holds by construction.
    valuation:
        Ground-fact valuation used to interpret primitive propositions.

    Evaluation follows Section 6's general definition: ``K_i psi`` holds at ``(r, t)``
    iff ``psi`` is in ``i``'s belief set there; ``E_G psi`` is the conjunction of
    ``K_i psi``; ``C_G psi`` is defined through the fixed-point axiom
    ``C_G psi == E_G(psi & C_G psi)``, which is well-founded because deciding it only
    requires looking the formula ``psi & C_G psi`` up in belief sets.
    """

    def __init__(
        self,
        system: System,
        beliefs: BeliefAssignment,
        valuation: Optional[Valuation] = None,
    ):
        self._system = system
        self._beliefs = beliefs
        self._valuation = valuation if valuation is not None else RunFactsValuation()
        self._belief_cache: Dict[Tuple[Agent, LocalHistory], FrozenSet[Formula]] = {}

    @property
    def system(self) -> System:
        """The underlying system."""
        return self._system

    # -- beliefs -------------------------------------------------------------------
    def beliefs_at(self, processor: Agent, point: Point) -> FrozenSet[Formula]:
        """The belief set ``K_i(r, t)`` of ``processor`` at ``point``."""
        if processor not in self._system.processors:
            raise UnknownAgentError(f"unknown processor {processor!r}")
        run, time = point
        history = run.history(processor, time)
        key = (processor, history)
        cached = self._belief_cache.get(key)
        if cached is None:
            cached = frozenset(self._beliefs(processor, history))
            self._belief_cache[key] = cached
        return cached

    def believes(self, processor: Agent, formula: Formula, point: Point) -> bool:
        """Whether ``processor`` believes ``formula`` at ``point``."""
        return formula in self.beliefs_at(processor, point)

    # -- formula evaluation ----------------------------------------------------------
    def holds_at(self, formula: Formula, point: Point) -> bool:
        """Whether ``formula`` holds at ``point`` under this interpretation."""
        self._system.require_point(point)
        return self._holds(formula, point)

    def holds(self, formula: Formula, run: Run, time: int) -> bool:
        """Whether ``formula`` holds at ``(run, time)``."""
        return self.holds_at(formula, Point(run, time))

    def is_valid(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at every point of the system."""
        return all(self._holds(formula, point) for point in self._system.points())

    def _holds(self, formula: Formula, point: Point) -> bool:
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, Prop):
            return formula.name in self._valuation.facts_at(point)
        if isinstance(formula, Not):
            return not self._holds(formula.operand, point)
        if isinstance(formula, And):
            return all(self._holds(op, point) for op in formula.operands)
        if isinstance(formula, Or):
            return any(self._holds(op, point) for op in formula.operands)
        if isinstance(formula, Implies):
            return (not self._holds(formula.antecedent, point)) or self._holds(
                formula.consequent, point
            )
        if isinstance(formula, Iff):
            return self._holds(formula.left, point) == self._holds(formula.right, point)
        if isinstance(formula, Knows):
            return formula.operand in self.beliefs_at(formula.agent, point)
        if isinstance(formula, Everyone):
            return all(
                formula.operand in self.beliefs_at(agent, point)
                for agent in as_group(formula.group)
            )
        if isinstance(formula, Someone):
            return any(
                formula.operand in self.beliefs_at(agent, point)
                for agent in as_group(formula.group)
            )
        if isinstance(formula, Common):
            # Fixed-point definition: C_G psi iff E_G(psi & C_G psi); deciding it only
            # needs belief-set membership of the syntactic formula psi & C_G psi.
            target = And((formula.operand, formula))
            return all(
                target in self.beliefs_at(agent, point)
                for agent in as_group(formula.group)
            )
        raise EvaluationError(
            f"epistemic interpretations do not support {type(formula).__name__}; "
            "use a view-based interpretation for that operator"
        )

    # -- knowledge consistency ----------------------------------------------------------
    def knowledge_axiom_violations(
        self, points: Optional[Iterable[Point]] = None
    ) -> List[Tuple[Agent, Point, Formula]]:
        """All violations of ``K_i phi -> phi`` over ``points`` (default: all points).

        Each violation is reported as ``(processor, point, believed formula)`` where
        the believed formula is false at the point.
        """
        violations: List[Tuple[Agent, Point, Formula]] = []
        candidate_points = list(points) if points is not None else list(self._system.points())
        for point in candidate_points:
            for processor in sorted(self._system.processors, key=repr):
                for belief in self.beliefs_at(processor, point):
                    if not self._holds(belief, point):
                        violations.append((processor, point, belief))
        return violations

    def is_knowledge_interpretation(self) -> bool:
        """Whether the knowledge axiom holds everywhere (Section 6's requirement for
        an epistemic interpretation to count as a *knowledge* interpretation)."""
        return not self.knowledge_axiom_violations()

    def restricted_to(self, runs: Iterable[Run]) -> "EpistemicInterpretation":
        """The same belief assignment over the subsystem consisting of ``runs``."""
        subsystem = System(list(runs), name=f"{self._system.name}|subset")
        return EpistemicInterpretation(subsystem, self._beliefs, self._valuation)

    def is_internally_consistent_with(self, subsystem_runs: Iterable[Run]) -> bool:
        """Whether the given subsystem ``R'`` witnesses internal knowledge consistency.

        Following Section 13, the subsystem must (1) make the interpretation a
        knowledge interpretation when restricted to it, and (2) contain, for every
        processor and every point of the full system, a point at which the processor
        has the same local history.
        """
        runs = list(subsystem_runs)
        if not runs:
            return False
        restricted = self.restricted_to(runs)
        if not restricted.is_knowledge_interpretation():
            return False
        # Every history in R must occur somewhere in R'.
        available: Dict[Agent, Set[LocalHistory]] = {
            p: set() for p in self._system.processors
        }
        for run in runs:
            for time in run.times():
                for processor in self._system.processors:
                    available[processor].add(run.history(processor, time))
        for run in self._system.runs:
            for time in run.times():
                for processor in self._system.processors:
                    if run.history(processor, time) not in available[processor]:
                        return False
        return True

    def find_internally_consistent_subsystem(
        self, max_subset_size: Optional[int] = None
    ) -> Optional[Tuple[Run, ...]]:
        """Search for a subsystem witnessing internal knowledge consistency.

        The search is exhaustive over subsets of runs, smallest first, and therefore
        only suitable for the small systems used in tests and scenarios.  Returns the
        first witnessing subset found, or ``None`` if none exists (up to the optional
        size bound).
        """
        runs = list(self._system.runs)
        limit = max_subset_size if max_subset_size is not None else len(runs)
        for size in range(1, limit + 1):
            for subset in itertools.combinations(runs, size):
                if self.is_internally_consistent_with(subset):
                    return subset
        return None


def eager_belief_assignment(
    fact: Formula,
    group,
    believes_after: Callable[[Agent, LocalHistory], bool],
) -> BeliefAssignment:
    """The "eager" interpretation of Section 8's R2–D2 discussion.

    Each processor starts believing ``fact``, ``C_G fact`` and ``fact & C_G fact`` as
    soon as ``believes_after(processor, history)`` returns true (e.g. "R2 believes
    ``C sent(m)`` as soon as it sends the message, D2 as soon as it receives it").
    The result is typically *not* a knowledge interpretation — there is a window in
    which the sender's belief is false — but it is often internally knowledge
    consistent, which is exactly what Section 13 is about.
    """
    members = as_group(group)
    common = Common(members, fact)
    believed_when_true = frozenset({fact, common, And((fact, common))})

    def assignment(processor: Agent, history: LocalHistory) -> FrozenSet[Formula]:
        if processor in members and believes_after(processor, history):
            return believed_when_true
        return frozenset()

    return assignment
