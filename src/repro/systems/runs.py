"""Runs, points and local histories (Section 5 of the paper).

A *run* is a description of one complete execution of a distributed system over a
discrete time grid ``0 .. duration``.  A *point* is a pair ``(run, time)``.  Each
processor has, at every point, a *local history*: its initial state, the events
(message sends/receives, internal actions) it has observed before the current time,
and — when it has a clock — the readings its clock has shown.

The definitions follow the paper closely:

* ``h(p, r, t)`` is empty before the processor wakes up; afterwards it consists of the
  initial state and the sequence of events observed up to but **not including** time
  ``t``, plus the clock readings up to and **including** ``t``.
* A run ``r'`` *extends* a point ``(r, t)`` if every processor has the same history in
  both runs at every time ``t' <= t``.

Runs are immutable; scenario and simulator code builds them with
:class:`RunBuilder`, which performs the bookkeeping (sorting events, validating
clocks) and produces hashable structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ModelError, UnknownAgentError, UnknownPointError
from repro.logic.agents import Agent
from repro.systems.clocks import Clock, validate_clock
from repro.systems.events import Event, InternalEvent, Message, ReceiveEvent, SendEvent

__all__ = ["LocalHistory", "Run", "Point", "RunBuilder"]


@dataclass(frozen=True)
class LocalHistory:
    """Processor ``p``'s history at a point ``(r, t)``.

    ``events`` is a tuple of ``(clock mark, event)`` pairs in the order the events
    were observed, covering the events observed strictly before ``t``.  Following the
    paper, the *real* times of events are **not** part of the history — real time is
    an external quantity the processors cannot observe directly.  When the processor
    has a clock, each event is marked with the clock reading at the time it occurred;
    without a clock the mark is ``None``.  ``clock_readings`` covers the readings from
    the wake-up time through ``t`` when the processor has a clock, and is ``None``
    otherwise.  ``awake`` is ``False`` when the processor has not yet woken up, in
    which case the history is empty (the paper's ``h(p_i, r, t)`` is empty for
    ``t < t_init``).  Note that ``wake_time`` records the position of the wake-up in
    *clock* terms: it is ``None`` for clockless processors, so that a clockless
    processor cannot tell when it woke up.
    """

    awake: bool
    initial_state: Hashable
    wake_time: Optional[float]
    events: Tuple[Tuple[Optional[float], Event], ...]
    clock_readings: Optional[Tuple[float, ...]]

    @staticmethod
    def asleep() -> "LocalHistory":
        """The empty history of a processor that has not woken up yet."""
        return LocalHistory(
            awake=False,
            initial_state=None,
            wake_time=None,
            events=(),
            clock_readings=None,
        )

    def message_events(self) -> Tuple[Tuple[int, Event], ...]:
        """Only the send/receive events of the history."""
        return tuple(
            (time, event)
            for time, event in self.events
            if isinstance(event, (SendEvent, ReceiveEvent))
        )

    def received_messages(self) -> Tuple[Message, ...]:
        """The messages received, in the order they were received."""
        return tuple(
            event.message for _, event in self.events if isinstance(event, ReceiveEvent)
        )

    def sent_messages(self) -> Tuple[Message, ...]:
        """The messages sent, in the order they were sent."""
        return tuple(
            event.message for _, event in self.events if isinstance(event, SendEvent)
        )

    def internal_events(self) -> Tuple[InternalEvent, ...]:
        """The internal events of the history, in order."""
        return tuple(
            event for _, event in self.events if isinstance(event, InternalEvent)
        )

    def performed(self, label: str) -> bool:
        """Whether an internal event with the given label occurs in the history."""
        return any(event.label == label for event in self.internal_events())


class Point(NamedTuple):
    """A point ``(run, time)`` of a system."""

    run: "Run"
    time: int

    def __repr__(self) -> str:
        return f"({self.run.name}, {self.time})"


class Run:
    """One execution of the system over the discrete times ``0 .. duration``.

    Parameters
    ----------
    name:
        A label identifying the run (unique within a system).
    processors:
        The processors participating in the system.
    duration:
        The largest time index of the run.
    initial_states:
        Each processor's initial state (defaults to ``None``).
    wake_times:
        When each processor joins the system (defaults to time 0).
    events:
        ``events[p][t]`` is the tuple of events processor ``p`` observes at time ``t``.
    clocks:
        Optional clock-reading tuples per processor (see :mod:`repro.systems.clocks`).
    facts:
        ``facts[t]`` is the set of ground-fact names true at time ``t`` of this run;
        this is the run's slice of the valuation ``pi`` of Section 6.
    """

    def __init__(
        self,
        name: str,
        processors: Sequence[Agent],
        duration: int,
        initial_states: Optional[Mapping[Agent, Hashable]] = None,
        wake_times: Optional[Mapping[Agent, int]] = None,
        events: Optional[Mapping[Agent, Mapping[int, Sequence[Event]]]] = None,
        clocks: Optional[Mapping[Agent, Clock]] = None,
        facts: Optional[Mapping[int, AbstractSet[str]]] = None,
    ):
        if duration < 0:
            raise ModelError("a run's duration must be non-negative")
        if not processors:
            raise ModelError("a run needs at least one processor")
        self._name = name
        self._processors: Tuple[Agent, ...] = tuple(processors)
        self._processor_set = frozenset(self._processors)
        if len(self._processor_set) != len(self._processors):
            raise ModelError("processor names must be unique")
        self._duration = duration

        self._initial_states: Dict[Agent, Hashable] = {
            p: (initial_states or {}).get(p) for p in self._processors
        }
        self._wake_times: Dict[Agent, int] = {}
        for p in self._processors:
            wake = (wake_times or {}).get(p, 0)
            if wake < 0:
                raise ModelError(f"wake time of {p!r} must be non-negative")
            self._wake_times[p] = wake

        self._events: Dict[Agent, Dict[int, Tuple[Event, ...]]] = {}
        for p in self._processors:
            per_time: Dict[int, Tuple[Event, ...]] = {}
            for time, evs in ((events or {}).get(p) or {}).items():
                if not 0 <= time <= duration:
                    raise ModelError(
                        f"event for {p!r} at time {time} is outside 0..{duration}"
                    )
                if time < self._wake_times[p]:
                    raise ModelError(
                        f"processor {p!r} observes an event at {time} before waking up"
                    )
                per_time[time] = tuple(evs)
            self._events[p] = per_time
        unknown = set(events or {}) - self._processor_set
        if unknown:
            raise UnknownAgentError(f"events mention unknown processors {sorted(map(repr, unknown))}")

        self._clocks: Dict[Agent, Clock] = {}
        for p in self._processors:
            clock = (clocks or {}).get(p)
            validate_clock(clock, duration)
            self._clocks[p] = clock

        self._facts: Dict[int, FrozenSet[str]] = {}
        for time, names in (facts or {}).items():
            if not 0 <= time <= duration:
                raise ModelError(f"facts at time {time} are outside 0..{duration}")
            self._facts[time] = frozenset(names)

        self._history_cache: Dict[Tuple[Agent, int], LocalHistory] = {}

    # -- basic accessors --------------------------------------------------------
    @property
    def name(self) -> str:
        """The run's label."""
        return self._name

    @property
    def processors(self) -> Tuple[Agent, ...]:
        """The processors of the run, in declaration order."""
        return self._processors

    @property
    def duration(self) -> int:
        """The largest time index of the run."""
        return self._duration

    def times(self) -> range:
        """All time indices ``0 .. duration``."""
        return range(self._duration + 1)

    def points(self) -> Iterator[Point]:
        """All points of this run."""
        for time in self.times():
            yield Point(self, time)

    def point(self, time: int) -> Point:
        """The point of this run at ``time``."""
        self._require_time(time)
        return Point(self, time)

    def wake_time(self, processor: Agent) -> int:
        """When ``processor`` joins the system in this run."""
        self._require_processor(processor)
        return self._wake_times[processor]

    def initial_state(self, processor: Agent) -> Hashable:
        """``processor``'s initial state in this run."""
        self._require_processor(processor)
        return self._initial_states[processor]

    def clock(self, processor: Agent) -> Clock:
        """``processor``'s clock-reading tuple, or ``None`` if it has no clock."""
        self._require_processor(processor)
        return self._clocks[processor]

    def clock_reading(self, processor: Agent, time: int) -> Optional[float]:
        """``tau(p, r, t)``: the clock reading of ``processor`` at ``time``.

        Returns ``None`` when the processor has no clock or has not woken up yet.
        """
        self._require_processor(processor)
        self._require_time(time)
        clock = self._clocks[processor]
        if clock is None or time < self._wake_times[processor]:
            return None
        return clock[time]

    def events_at(self, processor: Agent, time: int) -> Tuple[Event, ...]:
        """The events ``processor`` observes at exactly ``time``."""
        self._require_processor(processor)
        self._require_time(time)
        return self._events[processor].get(time, ())

    def facts_at(self, time: int) -> FrozenSet[str]:
        """The ground facts recorded as true at ``(self, time)``."""
        self._require_time(time)
        return self._facts.get(time, frozenset())

    # -- histories ---------------------------------------------------------------
    def history(self, processor: Agent, time: int) -> LocalHistory:
        """``h(p, r, t)``: the processor's local history at time ``time``.

        Empty when the processor has not woken up; otherwise includes the initial
        state, every event observed strictly before ``time``, and (for processors
        with clocks) the clock readings from the wake-up time through ``time``.
        """
        self._require_processor(processor)
        self._require_time(time)
        key = (processor, time)
        cached = self._history_cache.get(key)
        if cached is not None:
            return cached

        wake = self._wake_times[processor]
        if time < wake:
            history = LocalHistory.asleep()
        else:
            clock = self._clocks[processor]
            observed: List[Tuple[Optional[float], Event]] = []
            for t in range(wake, time):
                marker = clock[t] if clock is not None else None
                for event in self._events[processor].get(t, ()):
                    observed.append((marker, event))
            readings = None
            if clock is not None:
                readings = tuple(clock[t] for t in range(wake, time + 1))
            history = LocalHistory(
                awake=True,
                initial_state=self._initial_states[processor],
                wake_time=clock[wake] if clock is not None else None,
                events=tuple(observed),
                clock_readings=readings,
            )
        self._history_cache[key] = history
        return history

    def histories_equal(self, other: "Run", time: int, processor: Agent) -> bool:
        """Whether ``processor`` has the same history at ``(self, time)`` and
        ``(other, time)``."""
        return self.history(processor, time) == other.history(processor, time)

    def extends(self, point: Point) -> bool:
        """Whether this run extends the point ``point`` (Section 5).

        ``r'`` extends ``(r, t)`` iff ``h(p, r, t') == h(p, r', t')`` for every
        processor ``p`` and every ``t' <= t``.  Because histories are cumulative it
        suffices to compare them at ``t`` itself.
        """
        other, time = point
        if frozenset(other.processors) != self._processor_set:
            return False
        if time > self._duration:
            return False
        return all(
            self.history(p, time) == other.history(p, time) for p in self._processors
        )

    # -- whole-run properties ------------------------------------------------------
    def same_initial_configuration(self, other: "Run") -> bool:
        """Same initial states and same wake-up times for every processor."""
        if frozenset(other.processors) != self._processor_set:
            return False
        return all(
            self._initial_states[p] == other._initial_states[p]
            and self._wake_times[p] == other._wake_times[p]
            for p in self._processors
        )

    def same_clock_readings(self, other: "Run") -> bool:
        """Same clock readings for every processor at every time.

        Following Section 5, runs in a system without clocks trivially have the same
        clock readings.
        """
        if frozenset(other.processors) != self._processor_set:
            return False
        horizon = min(self._duration, other._duration)
        for p in self._processors:
            mine, theirs = self._clocks[p], other._clocks[p]
            if mine is None and theirs is None:
                continue
            if (mine is None) != (theirs is None):
                return False
            assert mine is not None and theirs is not None
            if mine[: horizon + 1] != theirs[: horizon + 1]:
                return False
        return True

    def messages_received_before(self, time: int) -> int:
        """``d(r)``-style count: messages received strictly before ``time`` (all
        processors combined), as used in the proofs of Theorems 5 and 9.

        ``time`` may exceed the run's duration, in which case every received message
        is counted.
        """
        if time < 0:
            raise UnknownPointError("time must be non-negative")
        count = 0
        for p in self._processors:
            for t, events in self._events[p].items():
                if t < time:
                    count += sum(1 for e in events if isinstance(e, ReceiveEvent))
        return count

    def receive_times(self) -> Tuple[int, ...]:
        """The times at which some processor receives a message, sorted ascending."""
        times = set()
        for p in self._processors:
            for t, events in self._events[p].items():
                if any(isinstance(e, ReceiveEvent) for e in events):
                    times.add(t)
        return tuple(sorted(times))

    def no_messages_received(self) -> bool:
        """Whether no message is received anywhere in the run."""
        return not self.receive_times()

    def performed(self, processor: Agent, label: str, time: Optional[int] = None) -> bool:
        """Whether ``processor`` performs the internal action ``label`` by ``time``
        (by the end of the run when ``time`` is omitted)."""
        limit = self._duration if time is None else time
        self._require_time(limit)
        self._require_processor(processor)
        for t in range(0, limit + 1):
            for event in self._events[processor].get(t, ()):
                if isinstance(event, InternalEvent) and event.label == label:
                    return True
        return False

    def action_time(self, processor: Agent, label: str) -> Optional[int]:
        """The first time at which ``processor`` performs ``label``, or ``None``."""
        self._require_processor(processor)
        for t in self.times():
            for event in self._events[processor].get(t, ()):
                if isinstance(event, InternalEvent) and event.label == label:
                    return t
        return None

    # -- dunder / validation ----------------------------------------------------------
    def __repr__(self) -> str:
        return f"Run({self._name!r}, duration={self._duration})"

    def __hash__(self) -> int:
        return hash((self._name, self._duration, self._processors))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Run):
            return NotImplemented
        return (
            self._name == other._name
            and self._duration == other._duration
            and self._processors == other._processors
            and self._initial_states == other._initial_states
            and self._wake_times == other._wake_times
            and self._events == other._events
            and self._clocks == other._clocks
            and self._facts == other._facts
        )

    def _require_processor(self, processor: Agent) -> None:
        if processor not in self._processor_set:
            raise UnknownAgentError(f"unknown processor {processor!r}")

    def _require_time(self, time: int) -> None:
        if not 0 <= time <= self._duration:
            raise UnknownPointError(
                f"time {time} is outside this run's range 0..{self._duration}"
            )


class RunBuilder:
    """Incrementally construct a :class:`Run`.

    The simulator and the scenario modules use this builder to accumulate events and
    facts time step by time step and then freeze the result.

    Examples
    --------
    >>> builder = RunBuilder("r0", ["A", "B"], duration=3)
    >>> msg = builder.send("A", "B", "attack at dawn", time=0)
    >>> builder.deliver(msg, time=1)
    >>> builder.add_fact(1, "delivered")
    >>> run = builder.build()
    >>> run.history("B", 2).received_messages()[0].content
    'attack at dawn'
    """

    def __init__(
        self,
        name: str,
        processors: Sequence[Agent],
        duration: int,
        initial_states: Optional[Mapping[Agent, Hashable]] = None,
        wake_times: Optional[Mapping[Agent, int]] = None,
        clocks: Optional[Mapping[Agent, Clock]] = None,
    ):
        self.name = name
        self.processors = tuple(processors)
        self.duration = duration
        self.initial_states = dict(initial_states or {})
        self.wake_times = dict(wake_times or {})
        self.clocks = dict(clocks or {})
        self._events: Dict[Agent, Dict[int, List[Event]]] = {p: {} for p in self.processors}
        self._facts: Dict[int, set] = {}
        self._next_uid = 0

    def add_event(self, processor: Agent, time: int, event: Event) -> None:
        """Record that ``processor`` observes ``event`` at ``time``."""
        if processor not in self._events:
            raise UnknownAgentError(f"unknown processor {processor!r}")
        self._events[processor].setdefault(time, []).append(event)

    def send(
        self, sender: Agent, recipient: Agent, content: Hashable, time: int
    ) -> Message:
        """Record a send event and return the message (so it can later be delivered)."""
        message = Message(sender, recipient, content, uid=self._next_uid)
        self._next_uid += 1
        self.add_event(sender, time, SendEvent(message))
        return message

    def deliver(self, message: Message, time: int) -> None:
        """Record that ``message`` is received by its recipient at ``time``."""
        self.add_event(message.recipient, time, ReceiveEvent(message))

    def act(self, processor: Agent, label: str, time: int, payload: Hashable = None) -> None:
        """Record an internal action (e.g. ``attack`` or ``decide``)."""
        self.add_event(processor, time, InternalEvent(label, payload))

    def add_fact(self, time: int, fact: str) -> None:
        """Mark the ground fact ``fact`` as true at ``(run, time)``."""
        self._facts.setdefault(time, set()).add(fact)

    def add_fact_from(self, start_time: int, fact: str) -> None:
        """Mark ``fact`` as true from ``start_time`` through the end of the run
        (convenient for the paper's *stable* facts)."""
        for time in range(start_time, self.duration + 1):
            self.add_fact(time, fact)

    def build(self) -> Run:
        """Freeze the builder into an immutable :class:`Run`."""
        return Run(
            name=self.name,
            processors=self.processors,
            duration=self.duration,
            initial_states=self.initial_states,
            wake_times=self.wake_times,
            events={p: {t: tuple(evs) for t, evs in per.items()} for p, per in self._events.items()},
            clocks=self.clocks,
            facts={t: frozenset(names) for t, names in self._facts.items()},
        )
