"""Systems: sets of runs, and valuations of ground facts over their points.

The paper identifies a distributed system with the set ``R`` of all of its possible
runs (Section 5).  A :class:`System` is exactly that — a finite, explicitly enumerated
set of runs over a common set of processors — plus the bookkeeping needed to iterate
over points and to look up runs by name.

A :class:`Valuation` is the assignment ``pi`` of Section 6: it maps every point to the
set of ground facts true there.  The default :class:`RunFactsValuation` simply reads
the facts recorded in each run (which is how the scenario builders and the simulator
record ground truth); :class:`CallableValuation` wraps an arbitrary function for more
exotic interpretations.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ModelError, UnknownPointError
from repro.logic.agents import Agent
from repro.systems.runs import Point, Run

__all__ = [
    "System",
    "Valuation",
    "RunFactsValuation",
    "CallableValuation",
    "StaticValuation",
]


class System:
    """A finite set of runs over a common set of processors.

    The time horizon of the system is the maximum duration of its runs; points range
    over each run's own ``0 .. duration``.
    """

    def __init__(self, runs: Iterable[Run], name: str = "system"):
        run_list = list(runs)
        if not run_list:
            raise ModelError("a system needs at least one run")
        processors = frozenset(run_list[0].processors)
        by_name: Dict[str, Run] = {}
        for run in run_list:
            if frozenset(run.processors) != processors:
                raise ModelError(
                    "all runs of a system must share the same set of processors"
                )
            if run.name in by_name and by_name[run.name] != run:
                raise ModelError(f"two distinct runs share the name {run.name!r}")
            by_name[run.name] = run
        self._runs: Tuple[Run, ...] = tuple(by_name[name] for name in sorted(by_name))
        self._by_name = by_name
        self._processors = processors
        self._name = name

    @property
    def name(self) -> str:
        """The system's label."""
        return self._name

    @property
    def runs(self) -> Tuple[Run, ...]:
        """The runs of the system (sorted by name)."""
        return self._runs

    @property
    def processors(self) -> FrozenSet[Agent]:
        """The processors shared by every run."""
        return self._processors

    @property
    def horizon(self) -> int:
        """The largest duration among the system's runs."""
        return max(run.duration for run in self._runs)

    def run(self, name: str) -> Run:
        """Look a run up by name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise UnknownPointError(f"no run named {name!r} in system {self._name!r}") from exc

    def __contains__(self, run: Run) -> bool:
        return self._by_name.get(run.name) == run

    def __len__(self) -> int:
        return len(self._runs)

    def __iter__(self) -> Iterator[Run]:
        return iter(self._runs)

    def points(self) -> Iterator[Point]:
        """Every point ``(r, t)`` of the system."""
        for run in self._runs:
            yield from run.points()

    def point_count(self) -> int:
        """The number of points in the system."""
        return sum(run.duration + 1 for run in self._runs)

    def require_point(self, point: Point) -> None:
        """Raise :class:`~repro.errors.UnknownPointError` if ``point`` is not a point
        of this system."""
        run, time = point
        if run not in self or not 0 <= time <= run.duration:
            raise UnknownPointError(f"{point!r} is not a point of system {self._name!r}")

    def restrict(self, predicate: Callable[[Run], bool], name: Optional[str] = None) -> "System":
        """The subsystem of runs satisfying ``predicate`` (used for internal knowledge
        consistency, Section 13)."""
        kept = [run for run in self._runs if predicate(run)]
        if not kept:
            raise ModelError("the restriction keeps no runs")
        return System(kept, name or f"{self._name}|restricted")

    def runs_with_no_deliveries(self) -> Tuple[Run, ...]:
        """The runs in which no message is ever received (the ``r-`` runs used in
        Theorems 5, 7, 9 and 11)."""
        return tuple(run for run in self._runs if run.no_messages_received())

    def __repr__(self) -> str:
        return (
            f"System({self._name!r}, runs={len(self._runs)}, "
            f"processors={sorted(map(str, self._processors))})"
        )


class Valuation:
    """Abstract assignment ``pi`` of ground facts to points (Section 6)."""

    def facts_at(self, point: Point) -> FrozenSet[str]:
        """The set of ground-fact names true at ``point``."""
        raise NotImplementedError

    def holds(self, fact: str, point: Point) -> bool:
        """Whether ``fact`` is true at ``point``."""
        return fact in self.facts_at(point)


class RunFactsValuation(Valuation):
    """The default valuation: read the facts recorded in each run.

    Scenario builders mark facts directly on runs with
    :meth:`repro.systems.runs.RunBuilder.add_fact`, so this valuation needs no extra
    state.
    """

    def facts_at(self, point: Point) -> FrozenSet[str]:
        run, time = point
        return run.facts_at(time)


class CallableValuation(Valuation):
    """Wrap an arbitrary function ``(run, time) -> iterable of fact names``."""

    def __init__(self, function: Callable[[Run, int], AbstractSet[str]]):
        self._function = function

    def facts_at(self, point: Point) -> FrozenSet[str]:
        run, time = point
        return frozenset(self._function(run, time))


class StaticValuation(Valuation):
    """An explicit table from ``(run name, time)`` to fact names.

    Points absent from the table satisfy no ground facts.
    """

    def __init__(self, table: Mapping[Tuple[str, int], AbstractSet[str]]):
        self._table = {key: frozenset(value) for key, value in table.items()}

    def facts_at(self, point: Point) -> FrozenSet[str]:
        run, time = point
        return self._table.get((run.name, time), frozenset())
