"""Events observed by processors.

Section 5 of the paper characterises a processor's local history as "the sequence of
events that p_i has observed": its initial state plus the messages it has sent and
received (marked with clock times when the processor has a clock).  This module
provides the small vocabulary of event types that runs are made of.

All events are immutable and hashable so that histories — and therefore views and the
indistinguishability relation — can be compared and used as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.logic.agents import Agent

__all__ = ["Message", "Event", "SendEvent", "ReceiveEvent", "InternalEvent"]


@dataclass(frozen=True)
class Message:
    """A message with a sender, a recipient and an arbitrary hashable content.

    ``uid`` disambiguates otherwise identical messages sent at different times (for
    example the repeated "OK" messages of the Section 11 protocol); the simulator
    assigns it automatically.
    """

    sender: Agent
    recipient: Agent
    content: Hashable
    uid: int = 0

    def __repr__(self) -> str:
        return f"Message({self.sender}->{self.recipient}: {self.content!r}#{self.uid})"


@dataclass(frozen=True)
class Event:
    """Base class of all events appearing in local histories."""

    def observer_description(self) -> str:
        """A short human-readable description (used by pretty-printing helpers)."""
        return repr(self)


@dataclass(frozen=True)
class SendEvent(Event):
    """The observing processor sent ``message``."""

    message: Message

    def observer_description(self) -> str:
        return f"send({self.message.content!r} to {self.message.recipient})"


@dataclass(frozen=True)
class ReceiveEvent(Event):
    """The observing processor received ``message``."""

    message: Message

    def observer_description(self) -> str:
        return f"recv({self.message.content!r} from {self.message.sender})"


@dataclass(frozen=True)
class InternalEvent(Event):
    """A local event with no communication, e.g. "decide", "attack", "commit".

    ``label`` identifies the action; ``payload`` carries an optional hashable value
    (a decision value, a committed transaction id, ...).
    """

    label: str
    payload: Optional[Hashable] = None

    def observer_description(self) -> str:
        if self.payload is None:
            return self.label
        return f"{self.label}({self.payload!r})"
