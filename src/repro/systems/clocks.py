"""Hardware clocks.

Section 5: "The processors are state machines that possibly have clocks, where a clock
is a monotone nondecreasing function of real time.  If a processor has a clock, then
we assume that its clock reading is part of its state."

A clock in this library is represented explicitly as a tuple of readings, one per
discrete real-time step of the run (index ``t`` holds ``tau(p, r, t)``).  Explicit
tuples keep runs hashable and make "same clock readings" comparisons (used throughout
Section 8 and Appendix B) trivial.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ModelError

__all__ = [
    "Clock",
    "perfect_clock",
    "offset_clock",
    "scaled_clock",
    "no_clock",
    "validate_clock",
    "clocks_within",
]

Clock = Optional[Tuple[float, ...]]
"""A clock is either ``None`` (the processor has no clock) or a tuple of readings,
monotone nondecreasing in the index (real time)."""


def perfect_clock(duration: int) -> Tuple[float, ...]:
    """A clock that always reads exactly real time, for ``duration + 1`` time steps."""
    if duration < 0:
        raise ModelError("duration must be non-negative")
    return tuple(float(t) for t in range(duration + 1))


def offset_clock(duration: int, offset: float) -> Tuple[float, ...]:
    """A clock that runs at the correct rate but is shifted by ``offset``."""
    if duration < 0:
        raise ModelError("duration must be non-negative")
    return tuple(float(t) + offset for t in range(duration + 1))


def scaled_clock(duration: int, rate: float, offset: float = 0.0) -> Tuple[float, ...]:
    """A drifting clock: reads ``rate * t + offset`` at real time ``t``.

    ``rate`` must be non-negative so the clock stays monotone nondecreasing.
    """
    if duration < 0:
        raise ModelError("duration must be non-negative")
    if rate < 0:
        raise ModelError("a clock's rate must be non-negative")
    return tuple(rate * t + offset for t in range(duration + 1))


def no_clock(duration: int) -> None:
    """The absence of a clock (readable alias used by scenario constructors)."""
    del duration
    return None


def validate_clock(clock: Clock, duration: int) -> None:
    """Check that ``clock`` is well formed for a run of the given duration.

    Raises :class:`~repro.errors.ModelError` if the clock is too short or not monotone
    nondecreasing.
    """
    if clock is None:
        return
    if len(clock) < duration + 1:
        raise ModelError(
            f"clock has {len(clock)} readings but the run lasts {duration + 1} steps"
        )
    for earlier, later in zip(clock, clock[1:]):
        if later < earlier:
            raise ModelError("clock readings must be monotone nondecreasing")


def clocks_within(clock_a: Clock, clock_b: Clock, bound: float) -> bool:
    """Whether two clocks never differ by more than ``bound`` at any common time.

    Used to state the hypothesis of Theorem 12(b): "all clocks are within eps time
    units of each other".  Processors without clocks are treated as never violating
    the bound (the statement is about clock readings only).
    """
    if clock_a is None or clock_b is None:
        return True
    return all(abs(a - b) <= bound for a, b in zip(clock_a, clock_b))
