"""View functions (Section 6).

A *view function* ``v`` assigns to every processor at every point a view; a processor
knows a fact at a point exactly if the fact holds at all points of the system at which
the processor has the same view.  The paper requires a processor's view to be a
function of its local history; every view function here takes the processor, the run
and the time, computes the local history once, and derives the view from it, so that
requirement holds by construction.

The view functions provided:

* :class:`CompleteHistoryView` — ``v(p, r, t) = h(p, r, t)``; the finest view,
  best suited for impossibility arguments (the paper's *complete-history
  interpretation*).
* :class:`LocalStateView` — the view is a user-supplied *state function* of the
  history, modelling processors that may "forget" (the state-machine interpretation
  mentioned in Section 6).
* :class:`ClockOnlyView` — the processor observes only its clock reading (useful for
  the "global clock" discussions of Sections 8 and 12).
* :class:`TrivialView` — the single-view interpretation: nobody distinguishes
  anything, so exactly the facts valid in the system are (common) knowledge.
* :class:`RecentEventsView` — remembers only the last ``k`` events, a simple concrete
  forgetting view used in tests and the view-comparison benchmark.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Tuple

from repro.logic.agents import Agent
from repro.systems.runs import LocalHistory, Run

__all__ = [
    "ViewFunction",
    "CompleteHistoryView",
    "LocalStateView",
    "ClockOnlyView",
    "TrivialView",
    "RecentEventsView",
]


class ViewFunction:
    """Base class: a view is any hashable value derived from the local history."""

    name = "view"

    def view(self, processor: Agent, run: Run, time: int) -> Hashable:
        """The view of ``processor`` at the point ``(run, time)``."""
        history = run.history(processor, time)
        return self.view_of_history(processor, history)

    def view_of_history(self, processor: Agent, history: LocalHistory) -> Hashable:
        """Derive the view from the local history (override in subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CompleteHistoryView(ViewFunction):
    """The complete-history interpretation: the view *is* the local history.

    This makes the finest possible distinctions among histories, so it ascribes at
    least as much knowledge as any other view-based interpretation; the paper uses it
    for lower bounds and impossibility results.
    """

    name = "complete-history"

    def view_of_history(self, processor: Agent, history: LocalHistory) -> Hashable:
        return history


class LocalStateView(ViewFunction):
    """A view given by an arbitrary state function of the history.

    ``state_function(processor, history)`` must return a hashable local state.  If a
    processor can reach the same state via two different histories it "forgets" the
    difference, exactly as discussed for the state-machine interpretation in
    Section 6.
    """

    name = "local-state"

    def __init__(self, state_function: Callable[[Agent, LocalHistory], Hashable]):
        self._state_function = state_function

    def view_of_history(self, processor: Agent, history: LocalHistory) -> Hashable:
        return self._state_function(processor, history)


class ClockOnlyView(ViewFunction):
    """The processor observes only whether it is awake and its current clock reading."""

    name = "clock-only"

    def view_of_history(self, processor: Agent, history: LocalHistory) -> Hashable:
        if not history.awake:
            return ("asleep",)
        reading = history.clock_readings[-1] if history.clock_readings else None
        return ("awake", reading)


class TrivialView(ViewFunction):
    """The single-view interpretation of Section 6: every point looks the same.

    Under this view the knowledge hierarchy collapses and every fact valid in the
    system is common knowledge among all processors.
    """

    name = "trivial"

    def view_of_history(self, processor: Agent, history: LocalHistory) -> Hashable:
        return None


class RecentEventsView(ViewFunction):
    """Remember the initial state and only the most recent ``window`` events.

    A concrete "forgetting" view used to illustrate how coarser views ascribe less
    knowledge than the complete-history view.
    """

    name = "recent-events"

    def __init__(self, window: int = 1):
        if window < 0:
            raise ValueError("window must be non-negative")
        self._window = window

    def view_of_history(self, processor: Agent, history: LocalHistory) -> Hashable:
        if not history.awake:
            return ("asleep",)
        recent: Tuple = history.events[-self._window:] if self._window else ()
        reading = history.clock_readings[-1] if history.clock_readings else None
        return ("awake", history.initial_state, recent, reading)
