"""Message-delivery models.

The environment's contribution to a run is *when* (and whether) each sent message is
delivered.  A :class:`DeliveryModel` enumerates, for each message sent at a given
time, the set of possible outcomes — each outcome is a delivery time, or ``None`` for
"never delivered within the horizon".  The simulator branches over these outcomes to
enumerate every run the environment admits, which is what makes the impossibility
checks exhaustive rather than sampled.

The provided models correspond to the communication assumptions the paper discusses:

* :class:`ReliableSynchronous` — delivery after a fixed, known delay; common knowledge
  of a sent message is attainable (Section 8's "exactly epsilon" discussion).
* :class:`BoundedUncertain` — delivery within ``[min_delay, max_delay]``; the R2–D2
  situation; gives rise to temporal imprecision and epsilon-common knowledge.
* :class:`Unreliable` — messages may be lost; conditions NG1/NG2 hold (coordinated
  attack, Theorem 5).
* :class:`Asynchronous` — delivery is guaranteed but may take arbitrarily long
  (within the horizon, plus the "not yet delivered" outcome); condition NG1' holds
  (Theorem 7 and Theorem 11).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.systems.events import Message

__all__ = [
    "DeliveryModel",
    "ReliableSynchronous",
    "BoundedUncertain",
    "Unreliable",
    "Asynchronous",
    "AdversarialDrops",
    "DropRule",
]

DropRule = Callable[[Message, int], bool]
"""An adversary's drop schedule: ``rule(message, send_time)`` returns ``True``
when the adversary removes the message from the network.  Rules must be
deterministic functions of their arguments (``message.uid`` numbers messages in
global send order, so "drop the first k messages" is ``lambda m, t: m.uid < k``)
so run enumeration stays reproducible."""


class DeliveryModel:
    """Enumerates the possible delivery outcomes of each sent message."""

    name = "delivery"

    def outcomes(
        self, message: Message, send_time: int, horizon: int
    ) -> Tuple[Optional[int], ...]:
        """The possible delivery times of ``message`` sent at ``send_time``.

        Each outcome is an absolute time in ``send_time .. horizon``, or ``None``
        meaning the message is not delivered by the horizon (lost, or still in
        flight).  The tuple must be non-empty and deterministic so run enumeration is
        reproducible.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReliableSynchronous(DeliveryModel):
    """Every message is delivered exactly ``delay`` time units after it is sent.

    Messages whose delivery time would fall beyond the horizon are reported as
    undelivered (``None``) — the run simply ends before they arrive.
    """

    name = "reliable-synchronous"

    def __init__(self, delay: int = 1):
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        self.delay = delay

    def outcomes(
        self, message: Message, send_time: int, horizon: int
    ) -> Tuple[Optional[int], ...]:
        arrival = send_time + self.delay
        return (arrival,) if arrival <= horizon else (None,)


class BoundedUncertain(DeliveryModel):
    """Delivery takes between ``min_delay`` and ``max_delay`` time units (inclusive).

    This is the "bounded but uncertain message delivery times" assumption of
    Appendix B, and the source of the R2–D2 example's epsilon of uncertainty.
    """

    name = "bounded-uncertain"

    def __init__(self, min_delay: int = 0, max_delay: int = 1):
        if min_delay < 0 or max_delay < min_delay:
            raise SimulationError("need 0 <= min_delay <= max_delay")
        self.min_delay = min_delay
        self.max_delay = max_delay

    def outcomes(
        self, message: Message, send_time: int, horizon: int
    ) -> Tuple[Optional[int], ...]:
        arrivals = tuple(
            send_time + delay
            for delay in range(self.min_delay, self.max_delay + 1)
            if send_time + delay <= horizon
        )
        return arrivals if arrivals else (None,)


class Unreliable(DeliveryModel):
    """Messages may be delivered after ``delay`` time units or lost entirely.

    With ``delay_range`` the delivery time additionally varies; loss is always a
    possible outcome, which is what makes conditions NG1 and NG2 hold for the
    generated system.
    """

    name = "unreliable"

    def __init__(self, delay: int = 1, delay_range: Optional[Sequence[int]] = None):
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        self.delays: Tuple[int, ...] = (
            tuple(delay_range) if delay_range is not None else (delay,)
        )
        if any(d < 0 for d in self.delays):
            raise SimulationError("delays must be non-negative")

    def outcomes(
        self, message: Message, send_time: int, horizon: int
    ) -> Tuple[Optional[int], ...]:
        arrivals: Tuple[Optional[int], ...] = tuple(
            send_time + d for d in self.delays if send_time + d <= horizon
        )
        return arrivals + (None,)


class Asynchronous(DeliveryModel):
    """Delivery is guaranteed eventually but can take arbitrarily long.

    Within a finite horizon this means: delivered at any time from ``send_time +
    min_delay`` through the horizon, or not yet delivered by the horizon (``None``).
    The ``None`` outcome represents the unbounded tail and is what makes condition
    NG1' hold for the generated system.
    """

    name = "asynchronous"

    def __init__(self, min_delay: int = 1):
        if min_delay < 0:
            raise SimulationError("min_delay must be non-negative")
        self.min_delay = min_delay

    def outcomes(
        self, message: Message, send_time: int, horizon: int
    ) -> Tuple[Optional[int], ...]:
        arrivals: Tuple[Optional[int], ...] = tuple(
            range(send_time + self.min_delay, horizon + 1)
        )
        return arrivals + (None,)


class AdversarialDrops(DeliveryModel):
    """An adversary layered over a base delivery model.

    Messages the drop rule selects are removed from the network deterministically
    — their only outcome is loss, with no branching — while every other message
    keeps the base model's outcome set.  This is how the scenario DSL expresses
    "the messenger is captured on the first trip" or "the faulty sender's
    messages to ``B`` never arrive" without writing a new delivery model: the
    base model supplies the timing assumptions, the rule supplies the adversary.
    """

    name = "adversarial"

    def __init__(self, base: DeliveryModel, drop: DropRule):
        if not isinstance(base, DeliveryModel):
            raise SimulationError(
                f"AdversarialDrops needs a DeliveryModel base, got {base!r}"
            )
        if not callable(drop):
            raise SimulationError(
                f"AdversarialDrops needs a callable drop rule, got {drop!r}"
            )
        self.base = base
        self.drop = drop

    def outcomes(
        self, message: Message, send_time: int, horizon: int
    ) -> Tuple[Optional[int], ...]:
        if self.drop(message, send_time):
            return (None,)
        return self.base.outcomes(message, send_time, horizon)

    def __repr__(self) -> str:
        return f"AdversarialDrops({self.base!r})"

    @staticmethod
    def first(k: int, base: Optional[DeliveryModel] = None) -> "AdversarialDrops":
        """The adversary that drops the first ``k`` messages sent in the run.

        ``message.uid`` counts sends in global order, so this is a pure function
        of the message.  ``base`` defaults to :class:`ReliableSynchronous`.
        """
        if k < 0:
            raise SimulationError("k must be non-negative")
        return AdversarialDrops(
            base if base is not None else ReliableSynchronous(),
            lambda message, send_time: message.uid < k,
        )

    @staticmethod
    def against_sender(
        sender: object, base: Optional[DeliveryModel] = None
    ) -> "AdversarialDrops":
        """The adversary that silences one processor: all its sends are lost."""
        return AdversarialDrops(
            base if base is not None else ReliableSynchronous(),
            lambda message, send_time: message.sender == sender,
        )
