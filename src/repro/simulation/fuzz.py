"""Seeded random protocols: fuzzing the runs-and-systems semantics.

The paper's framework promises that *any* deterministic protocol under *any*
delivery model induces a well-defined system of runs.  The hand-written
scenarios only ever exercise a handful of protocols; :func:`random_protocol`
generates an unbounded family of them, deterministically from a seed, so the
differential harness in ``tests/test_dsl_fuzz.py`` can check the semantics the
same way PR 1 fuzzed the engine backends and PR 3 fuzzed bisimulation:
evaluate generated scenarios on the frozenset and bitset backends, serially and
across the process pool, and require bit-identical answers.

Determinism is load-bearing in two ways:

* **Per history** — a protocol must be a deterministic function of the local
  history (Section 5), so the generator derives every decision from a
  :mod:`hashlib` digest of the history's canonical rendering.
* **Per process** — the parallel sweep rebuilds scenario instances inside
  worker processes, so the digest must not depend on interpreter state.
  ``blake2b`` keyed by the seed is stable across processes and Python
  versions, unlike the built-in ``hash`` (randomised per process by
  ``PYTHONHASHSEED``).

The module also provides the standard fuzz matrix: :func:`delivery_models`
(one representative per delivery assumption), :func:`fuzz_fact_rule` (ground
facts derived from what actually happened in a run, so knowledge formulas have
something contingent to talk about) and :func:`fuzz_formulas` (a small
knowledge/temporal suite over that vocabulary).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping, Tuple

from repro.errors import SimulationError
from repro.logic.syntax import (
    CDiamond,
    CEps,
    Common,
    EDiamond,
    Eventually,
    Everyone,
    Formula,
    Knows,
    Prop,
)
from repro.simulation.network import (
    Asynchronous,
    BoundedUncertain,
    DeliveryModel,
    ReliableSynchronous,
    Unreliable,
)
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.runs import LocalHistory, Run
from repro.systems.system import System

__all__ = [
    "RandomProtocol",
    "random_protocol",
    "fuzz_processors",
    "fuzz_initial_states",
    "fuzz_fact_rule",
    "fuzz_formulas",
    "delivery_models",
    "random_system",
    "DELIVERY_KINDS",
    "ACTION_LABELS",
]

ACTION_LABELS = ("mark", "probe")
"""The internal-action vocabulary generated protocols draw from."""

DELIVERY_KINDS = ("reliable", "bounded", "unreliable", "async")
"""The delivery-model matrix fuzzed scenarios sweep over, one name per
communication assumption the paper discusses."""


def fuzz_processors(n_agents: int) -> Tuple[str, ...]:
    """The canonical processor names ``p0 .. p{n-1}`` of generated scenarios."""
    if n_agents < 1:
        raise SimulationError("n_agents must be at least 1")
    return tuple(f"p{i}" for i in range(n_agents))


def delivery_models(kind: str, horizon: int) -> DeliveryModel:
    """The delivery model the fuzz matrix calls ``kind``.

    ``reliable`` is :class:`ReliableSynchronous` with delay 1, ``bounded`` is
    :class:`BoundedUncertain` over ``[0, 1]``, ``unreliable`` is
    :class:`Unreliable` with delay 1, and ``async`` is :class:`Asynchronous`
    with minimum delay 1.  ``horizon`` is accepted so callers can pick models
    whose branching stays bounded, and reserved for kinds that need it.
    """
    if kind == "reliable":
        return ReliableSynchronous(1)
    if kind == "bounded":
        return BoundedUncertain(0, 1)
    if kind == "unreliable":
        return Unreliable(delay=1)
    if kind == "async":
        return Asynchronous(min_delay=1)
    raise SimulationError(
        f"unknown delivery kind {kind!r}; expected one of {DELIVERY_KINDS}"
    )


def _canonical_history(processor: str, history: LocalHistory, time: int) -> bytes:
    """A canonical byte rendering of a local history (plus observer and time).

    Events render through their dataclass ``repr``s, which are pure functions
    of the event contents (including message uids), so the rendering is stable
    across processes.  Real time is included deliberately: the generated
    protocols model processors with access to real time, which
    :meth:`Protocol.step` explicitly allows.
    """
    return "|".join(
        (
            processor,
            str(time),
            repr(history.awake),
            repr(history.initial_state),
            repr(history.wake_time),
            repr(history.events),
            repr(history.clock_readings),
        )
    ).encode("utf-8")


class RandomProtocol(Protocol):
    """A deterministic protocol whose decisions are digest bits of the history.

    At each step the protocol draws a keyed ``blake2b`` digest of its canonical
    local history and uses successive bytes of it to decide whether to send a
    message (to which neighbour, with which token), and whether to perform an
    internal action (with which label).  The same seed therefore always
    generates the same system of runs — in any process.

    ``max_total_sends`` caps the messages each processor sends over the whole
    run, which keeps the simulator's branch product bounded under the lossy and
    asynchronous delivery models (each in-flight message multiplies the run
    count by its number of delivery outcomes).
    """

    name = "random"

    def __init__(
        self,
        seed: int,
        processors: Tuple[str, ...],
        send_prob: float = 0.45,
        act_prob: float = 0.3,
        max_total_sends: int = 2,
        content_space: int = 3,
    ):
        if not processors:
            raise SimulationError("RandomProtocol needs at least one processor")
        if not 0.0 <= send_prob <= 1.0 or not 0.0 <= act_prob <= 1.0:
            raise SimulationError("probabilities must lie in [0, 1]")
        if max_total_sends < 0:
            raise SimulationError("max_total_sends must be non-negative")
        if content_space < 1:
            raise SimulationError("content_space must be at least 1")
        self.seed = seed
        self.processors = tuple(processors)
        self.send_prob = send_prob
        self.act_prob = act_prob
        self.max_total_sends = max_total_sends
        self.content_space = content_space
        self._key = f"fuzz-{seed}".encode("utf-8")[:16]

    def _digest(self, processor: str, history: LocalHistory, time: int) -> bytes:
        return hashlib.blake2b(
            _canonical_history(processor, history, time),
            key=self._key,
            digest_size=8,
        ).digest()

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        """Send/act decisions read off the history digest (deterministic)."""
        if not history.awake:
            return Action.nothing()
        digest = self._digest(processor, history, time)
        action = Action.nothing()
        others = tuple(p for p in self.processors if p != processor)
        may_send = (
            others
            and len(history.sent_messages()) < self.max_total_sends
            and digest[0] / 255.0 < self.send_prob
        )
        if may_send:
            recipient = others[digest[1] % len(others)]
            token = ("tok", digest[2] % self.content_space)
            action = action.also_send(recipient, token)
        if digest[3] / 255.0 < self.act_prob:
            label = ACTION_LABELS[digest[4] % len(ACTION_LABELS)]
            action = action.also_act(label)
        return action

    def __repr__(self) -> str:
        return f"RandomProtocol(seed={self.seed}, processors={self.processors})"


def random_protocol(
    seed: int,
    n_agents: int = 2,
    horizon: int = 3,
    send_prob: float = 0.45,
    act_prob: float = 0.3,
    max_total_sends: int = 2,
) -> RandomProtocol:
    """A seeded random protocol over :func:`fuzz_processors` ``(n_agents)``.

    ``horizon`` participates in the seed material (folded into ``seed``) so
    sweeping the horizon also varies the behaviour, not just the cutoff; the
    remaining knobs bound the branching (see :class:`RandomProtocol`).
    """
    if horizon < 0:
        raise SimulationError("horizon must be non-negative")
    return RandomProtocol(
        seed=seed * 1_000_003 + horizon,
        processors=fuzz_processors(n_agents),
        send_prob=send_prob,
        act_prob=act_prob,
        max_total_sends=max_total_sends,
    )


def fuzz_fact_rule(run: Run) -> Mapping[int, frozenset]:
    """Ground facts read off a finished run, giving formulas a vocabulary.

    ``recv_p`` holds at exactly the times processor ``p`` receives a message;
    ``did_{label}_{p}`` holds (stably) from the first time ``p`` performs the
    internal action ``label``; ``quiet`` holds everywhere in runs where no
    message is ever delivered.
    """
    facts: Dict[int, set] = {}
    for time in run.times():
        names = set()
        for processor in run.processors:
            for event in run.events_at(processor, time):
                kind = type(event).__name__
                if kind == "ReceiveEvent":
                    names.add(f"recv_{processor}")
        if names:
            facts.setdefault(time, set()).update(names)
    for processor in run.processors:
        for label in ACTION_LABELS:
            first = run.action_time(processor, label)
            if first is not None:
                for time in range(first, run.duration + 1):
                    facts.setdefault(time, set()).add(f"did_{label}_{processor}")
    if run.no_messages_received():
        for time in run.times():
            facts.setdefault(time, set()).add("quiet")
    return {time: frozenset(names) for time, names in facts.items()}


def fuzz_formulas(processors: Tuple[str, ...]) -> Dict[str, Formula]:
    """A compact knowledge/temporal suite over the fuzz fact vocabulary.

    Covers the operator families whose semantics the differential harness
    wants stressed: plain facts, individual and group knowledge, common
    knowledge, the eventual variants, and epsilon-common knowledge.
    """
    first = processors[0]
    group = tuple(processors)
    recv = Prop(f"recv_{first}")
    mark = Prop(f"did_mark_{first}")
    quiet = Prop("quiet")
    return {
        "recv": recv,
        "quiet": quiet,
        "K quiet": Knows(first, quiet),
        "E mark|recv": Everyone(group, mark | recv),
        "C quiet": Common(group, quiet),
        "<> recv": Eventually(recv),
        "E<> recv": EDiamond(group, recv),
        "C<> quiet": CDiamond(group, quiet),
        "C^1 quiet": CEps(group, quiet, 1),
    }


def fuzz_initial_states(
    seed: int, n_agents: int, horizon: int
) -> Dict[str, Tuple[int, ...]]:
    """The seed-derived initial-state map of a generated scenario.

    One bit per processor, read off a digest of the seed material, so generated
    systems vary in their initial configuration as well as their communication
    pattern.  Shared between :func:`random_system` and the registered
    ``random_protocol`` scenario family so both build identical systems.
    """
    config_digest = hashlib.blake2b(
        f"init-{seed}-{n_agents}-{horizon}".encode("utf-8"), digest_size=8
    ).digest()
    return {
        p: (config_digest[i % len(config_digest)] % 2,)
        for i, p in enumerate(fuzz_processors(n_agents))
    }


def random_system(
    seed: int,
    n_agents: int = 2,
    horizon: int = 3,
    delivery: str = "reliable",
    max_runs: int = 20_000,
) -> System:
    """The full system of runs of one generated protocol under one delivery kind.

    This is the one-call form the fuzz scenario family and the differential
    tests build on; the registered ``random_protocol`` scenario produces the
    same system through the DSL.
    """
    protocol = random_protocol(seed, n_agents=n_agents, horizon=horizon)
    processors = protocol.processors
    initial_states = fuzz_initial_states(seed, n_agents, horizon)
    return simulate(
        protocol,
        processors,
        duration=horizon,
        delivery=delivery_models(delivery, horizon),
        initial_states=initial_states,
        fact_rules=[fuzz_fact_rule],
        max_runs=max_runs,
        system_name=f"fuzz-s{seed}-n{n_agents}-h{horizon}-{delivery}",
    )
