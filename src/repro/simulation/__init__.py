"""Protocol/simulation substrate (system S10 of DESIGN.md).

Deterministic protocols, message-delivery models, and exhaustive run enumeration that
turns "protocol + environment" into the systems of runs analysed by
:mod:`repro.systems`.  The substrate also carries the seeded random-protocol
fuzzer (:mod:`repro.simulation.fuzz`) and the JSONL trace-ingestion path
(:mod:`repro.simulation.trace`), which build systems of runs from generated
protocols and recorded event logs respectively.
"""

from repro.simulation.fuzz import (
    RandomProtocol,
    delivery_models,
    fuzz_fact_rule,
    fuzz_formulas,
    fuzz_processors,
    random_protocol,
    random_system,
)
from repro.simulation.network import (
    AdversarialDrops,
    Asynchronous,
    BoundedUncertain,
    DeliveryModel,
    DropRule,
    ReliableSynchronous,
    Unreliable,
)
from repro.simulation.protocol import (
    Action,
    FunctionProtocol,
    JointProtocol,
    LocalAction,
    Outgoing,
    Protocol,
    SilentProtocol,
    as_joint_protocol,
)
from repro.simulation.simulator import Environment, FactRule, Simulator, simulate
from repro.simulation.trace import (
    dump_lines,
    dump_path,
    dump_text,
    ingest_lines,
    ingest_path,
    ingest_text,
)

__all__ = [
    "AdversarialDrops",
    "Asynchronous",
    "BoundedUncertain",
    "DeliveryModel",
    "DropRule",
    "ReliableSynchronous",
    "Unreliable",
    "Action",
    "FunctionProtocol",
    "JointProtocol",
    "LocalAction",
    "Outgoing",
    "Protocol",
    "SilentProtocol",
    "as_joint_protocol",
    "Environment",
    "FactRule",
    "Simulator",
    "simulate",
    "RandomProtocol",
    "random_protocol",
    "random_system",
    "fuzz_processors",
    "fuzz_fact_rule",
    "fuzz_formulas",
    "delivery_models",
    "dump_lines",
    "dump_text",
    "dump_path",
    "ingest_lines",
    "ingest_text",
    "ingest_path",
]
