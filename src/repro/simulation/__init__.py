"""Protocol/simulation substrate (system S10 of DESIGN.md).

Deterministic protocols, message-delivery models, and exhaustive run enumeration that
turns "protocol + environment" into the systems of runs analysed by
:mod:`repro.systems`.
"""

from repro.simulation.network import (
    Asynchronous,
    BoundedUncertain,
    DeliveryModel,
    ReliableSynchronous,
    Unreliable,
)
from repro.simulation.protocol import (
    Action,
    FunctionProtocol,
    JointProtocol,
    LocalAction,
    Outgoing,
    Protocol,
    SilentProtocol,
    as_joint_protocol,
)
from repro.simulation.simulator import Environment, FactRule, Simulator, simulate

__all__ = [
    "Asynchronous",
    "BoundedUncertain",
    "DeliveryModel",
    "ReliableSynchronous",
    "Unreliable",
    "Action",
    "FunctionProtocol",
    "JointProtocol",
    "LocalAction",
    "Outgoing",
    "Protocol",
    "SilentProtocol",
    "as_joint_protocol",
    "Environment",
    "FactRule",
    "Simulator",
    "simulate",
]
