"""Protocols: deterministic functions from local histories to actions (Section 5).

"A protocol is a deterministic function specifying what messages the processor should
send at any given instant, as a function of the processor's history."  In this library
a protocol additionally specifies the *internal actions* (attack, decide, commit, ...)
the processor performs, because relating actions to states of knowledge is the point
of the paper's analysis.

Because a processor's history already contains its initial state, its clock readings
and everything it has observed, time-dependent and state-dependent behaviour is all
expressible through the single :meth:`Protocol.step` function; determinism — the same
history always yields the same action — is then guaranteed provided implementations do
not consult external mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError
from repro.logic.agents import Agent
from repro.systems.runs import LocalHistory

__all__ = [
    "Outgoing",
    "LocalAction",
    "Action",
    "Protocol",
    "SilentProtocol",
    "FunctionProtocol",
    "JointProtocol",
    "as_joint_protocol",
]


@dataclass(frozen=True)
class Outgoing:
    """A message the protocol wants to send: recipient and content."""

    recipient: Agent
    content: Hashable


@dataclass(frozen=True)
class LocalAction:
    """An internal action the protocol performs: label plus optional payload."""

    label: str
    payload: Optional[Hashable] = None


@dataclass(frozen=True)
class Action:
    """Everything a processor does in one time step."""

    sends: Tuple[Outgoing, ...] = ()
    internal: Tuple[LocalAction, ...] = ()

    @staticmethod
    def nothing() -> "Action":
        """The empty action."""
        return Action()

    @staticmethod
    def send(recipient: Agent, content: Hashable) -> "Action":
        """Convenience: a single outgoing message and nothing else."""
        return Action(sends=(Outgoing(recipient, content),))

    @staticmethod
    def act(label: str, payload: Optional[Hashable] = None) -> "Action":
        """Convenience: a single internal action and nothing else."""
        return Action(internal=(LocalAction(label, payload),))

    def also_send(self, recipient: Agent, content: Hashable) -> "Action":
        """A copy of this action with one more outgoing message."""
        return Action(self.sends + (Outgoing(recipient, content),), self.internal)

    def also_act(self, label: str, payload: Optional[Hashable] = None) -> "Action":
        """A copy of this action with one more internal action."""
        return Action(self.sends, self.internal + (LocalAction(label, payload),))


class Protocol:
    """A deterministic protocol for a single processor.

    Subclasses override :meth:`step`.  The simulator calls ``step`` once per time step
    for every awake processor, passing the processor's identity, its history at the
    current time (which excludes events happening at the current time, exactly as in
    the paper), and the current real time (which implementations should use only if
    they are modelling a processor with access to real time; clock-driven behaviour
    should read the clock from the history instead).
    """

    name = "protocol"

    def step(self, processor: Agent, history: LocalHistory, time: int) -> Action:
        """The action to perform given the current local history."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SilentProtocol(Protocol):
    """The protocol that never sends anything and never acts."""

    name = "silent"

    def step(self, processor: Agent, history: LocalHistory, time: int) -> Action:
        return Action.nothing()


class FunctionProtocol(Protocol):
    """Wrap a plain function ``(processor, history, time) -> Action`` as a protocol."""

    def __init__(self, function: Callable[[Agent, LocalHistory, int], Action], name: str = "function"):
        self._function = function
        self.name = name

    def step(self, processor: Agent, history: LocalHistory, time: int) -> Action:
        action = self._function(processor, history, time)
        if not isinstance(action, Action):
            raise ProtocolError(
                f"protocol {self.name!r} returned {action!r} instead of an Action"
            )
        return action


class JointProtocol:
    """A tuple of protocols, one per processor (Section 5's "joint protocol")."""

    def __init__(self, protocols: Mapping[Agent, Protocol]):
        if not protocols:
            raise ProtocolError("a joint protocol needs at least one processor")
        self._protocols: Dict[Agent, Protocol] = dict(protocols)

    @property
    def processors(self) -> Tuple[Agent, ...]:
        """The processors the joint protocol covers."""
        return tuple(self._protocols)

    def protocol_for(self, processor: Agent) -> Protocol:
        """The protocol followed by ``processor``."""
        try:
            return self._protocols[processor]
        except KeyError as exc:
            raise ProtocolError(f"no protocol for processor {processor!r}") from exc

    def step(self, processor: Agent, history: LocalHistory, time: int) -> Action:
        """Delegate to the processor's own protocol."""
        return self.protocol_for(processor).step(processor, history, time)

    def __repr__(self) -> str:
        parts = ", ".join(f"{p}: {proto.name}" for p, proto in self._protocols.items())
        return f"JointProtocol({parts})"


def as_joint_protocol(
    protocol: Union[Protocol, JointProtocol, Mapping[Agent, Protocol]],
    processors: Sequence[Agent],
) -> JointProtocol:
    """Normalise a protocol specification into a :class:`JointProtocol`.

    A single :class:`Protocol` is applied to every processor; a mapping must cover
    every processor.
    """
    if isinstance(protocol, JointProtocol):
        missing = set(processors) - set(protocol.processors)
        if missing:
            raise ProtocolError(f"joint protocol is missing processors {sorted(map(repr, missing))}")
        return protocol
    if isinstance(protocol, Protocol):
        return JointProtocol({p: protocol for p in processors})
    if isinstance(protocol, Mapping):
        missing = set(processors) - set(protocol)
        if missing:
            raise ProtocolError(f"protocol mapping is missing processors {sorted(map(repr, missing))}")
        return JointProtocol({p: protocol[p] for p in processors})
    raise ProtocolError(f"cannot interpret {protocol!r} as a protocol")
