"""JSONL trace ingestion: model-check recorded executions, not just simulations.

Everything upstream of the knowledge semantics only needs a
:class:`~repro.systems.system.System` — a set of runs.  The simulator produces
one by exhaustive enumeration; this module produces one from a *recorded event
log*, so real execution traces (a test harness's message log, an instrumented
service) can be checked for knowledge properties with the same evaluators,
CLI and sweep machinery as the synthetic scenarios.

The format is line-delimited JSON.  Each line is one object with a ``type``:

``{"type": "system", "name": ...}``
    Optional first line naming the system.
``{"type": "run", "run": r, "processors": [...], "duration": d, ...}``
    Starts run ``r``; optional ``initial_states``, ``wake_times`` and
    ``clocks`` maps.  Every following event line belongs to the most recent
    ``run`` line mentioning its run.
``{"type": "send", "run": r, "time": t, "sender": p, "recipient": q,
"content": c, "uid": u}``
    Processor ``p`` sent message ``u``.
``{"type": "receive", "run": r, "time": t, "processor": q, "sender": p,
"recipient": q, "content": c, "uid": u}``
    Processor ``q`` observed delivery of message ``u``.
``{"type": "act", "run": r, "time": t, "processor": p, "label": l,
"payload": x}``
    An internal action.
``{"type": "fact", "run": r, "time": t, "fact": f}``
    Ground fact ``f`` holds at ``(r, t)``.

Within a run, event/fact lines must be non-decreasing in time, receives must
match a send of the same ``uid`` (same sender/recipient/content, sent at or
before the receive time), and no message may be delivered twice — violations
raise :class:`~repro.errors.TraceError` naming the offending line.  Message
contents and initial states survive the round trip exactly (tuples are tagged,
since JSON has no tuple type), so :func:`ingest_lines` ∘ :func:`dump_lines`
is the identity on simulator-produced systems — the round-trip tests pin
point-for-point equality.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TraceError
from repro.systems.events import (
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
)
from repro.systems.runs import Run
from repro.systems.system import System

__all__ = [
    "dump_lines",
    "dump_text",
    "dump_path",
    "ingest_lines",
    "ingest_text",
    "ingest_path",
]


# -- value encoding --------------------------------------------------------------

def _encode_value(value: object) -> object:
    """JSON-encode a hashable payload, tagging tuples so they survive the trip."""
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        return {"__frozenset__": sorted((_encode_value(item) for item in value), key=repr)}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TraceError(
        f"cannot encode value {value!r} of type {type(value).__name__} in a trace"
    )


def _decode_value(value: object) -> object:
    """Invert :func:`_encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_decode_value(item) for item in value["__tuple__"])
        if set(value) == {"__frozenset__"}:
            return frozenset(_decode_value(item) for item in value["__frozenset__"])
        raise TraceError(f"cannot decode value {value!r} from a trace")
    if isinstance(value, list):
        raise TraceError(
            f"bare JSON arrays are not valid trace values (got {value!r}); "
            "tuples are encoded as {'__tuple__': [...]}"
        )
    return value


# -- dumping ---------------------------------------------------------------------

def _message_fields(message: Message) -> Dict[str, object]:
    return {
        "sender": message.sender,
        "recipient": message.recipient,
        "content": _encode_value(message.content),
        "uid": message.uid,
    }


def dump_lines(system: System) -> Iterator[str]:
    """Render ``system`` as JSONL lines (see the module docstring for the schema).

    Runs are emitted in the system's (name-sorted) order; within a run, lines
    are grouped by time and, within a time, follow each processor's own event
    order — exactly the order ingestion rebuilds, so the round trip preserves
    event tuples verbatim.
    """
    yield json.dumps({"type": "system", "name": system.name})
    for run in system.runs:
        header: Dict[str, object] = {
            "type": "run",
            "run": run.name,
            "processors": list(run.processors),
            "duration": run.duration,
        }
        initial = {
            p: _encode_value(run.initial_state(p))
            for p in run.processors
            if run.initial_state(p) is not None
        }
        if initial:
            header["initial_states"] = initial
        wakes = {p: run.wake_time(p) for p in run.processors if run.wake_time(p)}
        if wakes:
            header["wake_times"] = wakes
        clocks = {
            p: list(run.clock(p)) for p in run.processors if run.clock(p) is not None
        }
        if clocks:
            header["clocks"] = clocks
        yield json.dumps(header)
        for time in run.times():
            for processor in run.processors:
                for event in run.events_at(processor, time):
                    yield json.dumps(_event_line(run.name, time, processor, event))
            for fact in sorted(run.facts_at(time)):
                yield json.dumps(
                    {"type": "fact", "run": run.name, "time": time, "fact": fact}
                )


def _event_line(run: str, time: int, processor: str, event: Event) -> Dict[str, object]:
    base: Dict[str, object] = {"run": run, "time": time}
    if isinstance(event, SendEvent):
        base["type"] = "send"
        base.update(_message_fields(event.message))
        return base
    if isinstance(event, ReceiveEvent):
        base["type"] = "receive"
        base["processor"] = processor
        base.update(_message_fields(event.message))
        return base
    if isinstance(event, InternalEvent):
        base["type"] = "act"
        base["processor"] = processor
        base["label"] = event.label
        if event.payload is not None:
            base["payload"] = _encode_value(event.payload)
        return base
    raise TraceError(f"cannot dump event {event!r} of type {type(event).__name__}")


def dump_text(system: System) -> str:
    """The whole trace as one newline-terminated string."""
    return "".join(line + "\n" for line in dump_lines(system))


def dump_path(system: System, path: str) -> None:
    """Write the trace of ``system`` to ``path`` as JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in dump_lines(system):
            handle.write(line + "\n")


# -- ingestion -------------------------------------------------------------------

class _RunAccumulator:
    """Mutable state for one run while its lines stream in."""

    def __init__(self, record: Dict[str, object], line_number: int):
        self.name = _require(record, "run", str, line_number)
        processors = record.get("processors")
        if not isinstance(processors, list) or not processors:
            raise TraceError(
                f"line {line_number}: run {self.name!r} needs a non-empty "
                f"'processors' list, got {processors!r}"
            )
        self.processors: Tuple[str, ...] = tuple(processors)
        self.duration = _require(record, "duration", int, line_number)
        if self.duration < 0:
            raise TraceError(
                f"line {line_number}: run {self.name!r} has negative duration"
            )
        self.initial_states = {
            p: _decode_value(v)
            for p, v in (record.get("initial_states") or {}).items()
        }
        self.wake_times = dict(record.get("wake_times") or {})
        self.clocks = {
            p: tuple(readings) for p, readings in (record.get("clocks") or {}).items()
        }
        for mapping, label in (
            (self.initial_states, "initial_states"),
            (self.wake_times, "wake_times"),
            (self.clocks, "clocks"),
        ):
            unknown = sorted(set(mapping) - set(self.processors))
            if unknown:
                raise TraceError(
                    f"line {line_number}: run {self.name!r} {label} mention "
                    f"unknown processors {unknown}"
                )
        self.events: Dict[str, Dict[int, List[Event]]] = {p: {} for p in self.processors}
        self.facts: Dict[int, set] = {}
        self.sends: Dict[int, Tuple[Message, int]] = {}
        self.delivered: Dict[int, int] = {}
        self.receives: List[Tuple[Message, int, int]] = []
        self.last_time = -1

    def check_time(self, time: int, line_number: int) -> None:
        """Enforce the ordering discipline: in-window, non-decreasing times."""
        if not 0 <= time <= self.duration:
            raise TraceError(
                f"line {line_number}: time {time} is outside run "
                f"{self.name!r}'s window 0..{self.duration}"
            )
        if time < self.last_time:
            raise TraceError(
                f"line {line_number}: out-of-order event in run {self.name!r} "
                f"(time {time} after time {self.last_time})"
            )
        self.last_time = time

    def require_processor(self, processor: object, line_number: int) -> str:
        """``processor`` must be one the run header declared."""
        if processor not in self.events:
            raise TraceError(
                f"line {line_number}: unknown processor {processor!r} in run "
                f"{self.name!r} (declared: {list(self.processors)})"
            )
        return processor  # type: ignore[return-value]

    def finish(self, line_number: int) -> Run:
        """Freeze the accumulated run, re-reporting model errors as trace errors."""
        for message, time, receive_line in self.receives:
            sent = self.sends.get(message.uid)
            if sent is None:
                raise TraceError(
                    f"line {receive_line}: receive of message uid {message.uid} "
                    f"with no earlier send in run {self.name!r}"
                )
            sent_message, send_time = sent
            if sent_message != message:
                raise TraceError(
                    f"line {receive_line}: receive of uid {message.uid} does not "
                    f"match its send ({message!r} vs {sent_message!r})"
                )
            if time < send_time:
                raise TraceError(
                    f"line {receive_line}: message uid {message.uid} received at "
                    f"{time}, before its send at {send_time}"
                )
        for processor, wake in self.wake_times.items():
            if isinstance(wake, bool) or not isinstance(wake, int):
                raise TraceError(
                    f"run {self.name!r}: wake time of {processor!r} must be an "
                    f"integer, got {wake!r}"
                )
        try:
            return Run(
                name=self.name,
                processors=self.processors,
                duration=self.duration,
                initial_states=self.initial_states,
                wake_times=self.wake_times,
                events={
                    p: {t: tuple(evs) for t, evs in per.items()}
                    for p, per in self.events.items()
                },
                clocks=self.clocks,
                facts={t: frozenset(names) for t, names in self.facts.items()},
            )
        except Exception as exc:
            raise TraceError(f"run {self.name!r} is inconsistent: {exc}") from exc


def _require(record: Dict[str, object], key: str, kind: type, line_number: int) -> object:
    value = record.get(key)
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise TraceError(
            f"line {line_number}: missing or invalid {key!r} "
            f"(expected {kind.__name__}, got {value!r})"
        )
    return value


def _message_from(record: Dict[str, object], line_number: int) -> Message:
    return Message(
        sender=_require(record, "sender", str, line_number),
        recipient=_require(record, "recipient", str, line_number),
        content=_decode_value(record.get("content")),
        uid=_require(record, "uid", int, line_number),
    )


def ingest_lines(lines: Iterable[str], name: Optional[str] = None) -> System:
    """Build a :class:`~repro.systems.system.System` from JSONL trace lines.

    ``name`` overrides the trace's own ``system`` header (default ``"trace"``
    when neither is present).  Raises :class:`~repro.errors.TraceError` on any
    malformed or ill-ordered line; the message carries the 1-based line number.
    """
    system_name = name
    runs: List[Run] = []
    seen_names: Dict[str, int] = {}
    current: Optional[_RunAccumulator] = None

    def close_current(line_number: int) -> None:
        nonlocal current
        if current is not None:
            runs.append(current.finish(line_number))
            current = None

    line_number = 0
    for line_number, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {line_number}: not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceError(
                f"line {line_number}: expected a JSON object, got {record!r}"
            )
        kind = record.get("type")
        if kind == "system":
            if runs or current is not None:
                raise TraceError(
                    f"line {line_number}: 'system' header must come before any run"
                )
            if system_name is None:
                system_name = _require(record, "name", str, line_number)
            continue
        if kind == "run":
            close_current(line_number)
            accumulator = _RunAccumulator(record, line_number)
            if accumulator.name in seen_names:
                raise TraceError(
                    f"line {line_number}: duplicate run header for "
                    f"{accumulator.name!r} (first at line "
                    f"{seen_names[accumulator.name]})"
                )
            seen_names[accumulator.name] = line_number
            current = accumulator
            continue
        if kind not in ("send", "receive", "act", "fact"):
            raise TraceError(
                f"line {line_number}: unknown line type {kind!r} (expected "
                "system/run/send/receive/act/fact)"
            )
        if current is None:
            raise TraceError(
                f"line {line_number}: {kind} event before any 'run' header"
            )
        run_name = _require(record, "run", str, line_number)
        if run_name != current.name:
            raise TraceError(
                f"line {line_number}: event names run {run_name!r} but the "
                f"current run is {current.name!r} (traces are run-contiguous)"
            )
        time = _require(record, "time", int, line_number)
        current.check_time(time, line_number)
        if kind == "fact":
            fact = _require(record, "fact", str, line_number)
            current.facts.setdefault(time, set()).add(fact)
            continue
        if kind == "send":
            message = _message_from(record, line_number)
            current.require_processor(message.sender, line_number)
            current.require_processor(message.recipient, line_number)
            if message.uid in current.sends:
                raise TraceError(
                    f"line {line_number}: duplicate send of message uid "
                    f"{message.uid} in run {current.name!r}"
                )
            current.sends[message.uid] = (message, time)
            current.events[message.sender].setdefault(time, []).append(
                SendEvent(message)
            )
            continue
        if kind == "receive":
            message = _message_from(record, line_number)
            observer = current.require_processor(
                record.get("processor", message.recipient), line_number
            )
            if observer != message.recipient:
                raise TraceError(
                    f"line {line_number}: message uid {message.uid} is addressed "
                    f"to {message.recipient!r} but {observer!r} received it"
                )
            if message.uid in current.delivered:
                raise TraceError(
                    f"line {line_number}: duplicate delivery of message uid "
                    f"{message.uid} in run {current.name!r}"
                )
            # Matching against the send is deferred to the end of the run: with
            # delay-0 delivery the receive can legitimately precede its send in
            # the stream (same time, receiver listed before sender).
            current.receives.append((message, time, line_number))
            current.delivered[message.uid] = time
            current.events[observer].setdefault(time, []).append(
                ReceiveEvent(message)
            )
            continue
        # kind == "act"
        processor = current.require_processor(record.get("processor"), line_number)
        label = _require(record, "label", str, line_number)
        payload = _decode_value(record.get("payload"))
        current.events[processor].setdefault(time, []).append(
            InternalEvent(label, payload)
        )

    close_current(line_number + 1)
    if not runs:
        raise TraceError("trace contains no runs")
    try:
        return System(runs, name=system_name if system_name is not None else "trace")
    except Exception as exc:
        raise TraceError(f"trace does not form a valid system: {exc}") from exc


def ingest_text(text: str, name: Optional[str] = None) -> System:
    """:func:`ingest_lines` over a single JSONL string."""
    return ingest_lines(text.splitlines(), name=name)


def ingest_path(path: str, name: Optional[str] = None) -> System:
    """:func:`ingest_lines` over a JSONL file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return ingest_lines(handle, name=name)
