"""The seeded random-protocol family, registered through the scenario DSL.

This is the fuzzer's front door: ``repro run random_protocol -p seed=7 -p
delivery=async`` builds the exact system :func:`repro.simulation.fuzz.random_system`
returns for those arguments, with the standard fuzz fact vocabulary and formula
suite attached.  Registering it buys the differential harness everything the
registry gives hand-written scenarios — in particular the parallel sweep path:
``repro sweep random_protocol --param seed=0..N --jobs 4`` rebuilds generated
protocols inside worker processes, which is precisely the cross-process
determinism the keyed-digest construction in :mod:`repro.simulation.fuzz`
exists to guarantee, and what ``tests/test_dsl_fuzz.py`` checks row-for-row
against the serial sweep.

Every ingredient is a parameter-dependent callable, so this module is also the
DSL's stress case: processors, protocol, initial states, delivery model and
formula suite all vary with the parameter assignment.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.experiments.registry import Parameter
from repro.logic.syntax import Formula
from repro.scenarios.dsl import ScenarioRecipe
from repro.simulation.fuzz import (
    DELIVERY_KINDS,
    delivery_models,
    fuzz_fact_rule,
    fuzz_formulas,
    fuzz_initial_states,
    fuzz_processors,
    random_protocol,
)

__all__ = ["RANDOM_PROTOCOL"]


def _formulas(params: Mapping[str, object]) -> Dict[str, Formula]:
    """The standard fuzz suite over this assignment's processor set."""
    return fuzz_formulas(fuzz_processors(params["n_agents"]))


RECIPE = ScenarioRecipe(
    name="random_protocol",
    summary="a seeded random protocol under a chosen delivery model (fuzz harness)",
    section="Section 5 (framework); differential testing",
    processors=lambda params: fuzz_processors(params["n_agents"]),
    protocol=lambda params: random_protocol(
        params["seed"], n_agents=params["n_agents"], horizon=params["horizon"]
    ),
    horizon="horizon",
    delivery=lambda params: delivery_models(params["delivery"], params["horizon"]),
    parameters=(
        Parameter(
            "seed",
            int,
            default=0,
            minimum=0,
            description="fuzz seed; every decision of the protocol derives from it",
        ),
        Parameter(
            "n_agents",
            int,
            default=2,
            minimum=1,
            maximum=4,
            description="number of processors p0..p{n-1}",
        ),
        Parameter(
            "horizon",
            int,
            default=3,
            minimum=1,
            maximum=5,
            description="how many time steps each run lasts",
        ),
        Parameter(
            "delivery",
            str,
            default="reliable",
            choices=DELIVERY_KINDS,
            description="communication assumption (fuzz-matrix delivery kind)",
        ),
    ),
    initial_states=lambda params: fuzz_initial_states(
        params["seed"], params["n_agents"], params["horizon"]
    ),
    fact_rules=(fuzz_fact_rule,),
    formulas=_formulas,
    note="seed-derived protocol and initial states; no focus point",
    system_name=lambda params: (
        f"fuzz-s{params['seed']}-n{params['n_agents']}"
        f"-h{params['horizon']}-{params['delivery']}"
    ),
    details=(
        "Every decision of the generated protocol is a keyed blake2b digest of "
        "the acting processor's canonical local history, so the same seed "
        "always yields the same system of runs — in any process, which is what "
        "lets `--jobs` sweeps rebuild the scenario inside workers and still "
        "match the serial rows bit for bit.  `random_system(seed, ...)` in "
        "`repro.simulation.fuzz` builds the identical system without the "
        "registry."
    ),
)

RANDOM_PROTOCOL = RECIPE.register()
"""The registered :class:`~repro.experiments.registry.ScenarioSpec`."""
