"""The R2–D2 message-delivery-uncertainty example (Section 8).

R2 sends D2 a message ``m``.  Any message from R2 to D2 arrives either immediately or
after exactly ``epsilon`` time units, and this is common knowledge.  The paper derives
the "knowledge staircase":

* ``K_D sent(m)`` holds as soon as D2 receives ``m``;
* ``K_R K_D sent(m)`` holds at ``t_S + epsilon`` and no earlier;
* ``(K_R K_D)^k sent(m)`` holds at ``t_S + k*epsilon`` and no earlier;
* ``C sent(m)`` never holds.

Removing the uncertainty removes the staircase: if every message takes *exactly*
``epsilon``, or if there is a global clock and the message carries a timestamp, then
``sent(m)`` becomes common knowledge at ``t_S + epsilon``.

The reproduction builds the finite analogue of the paper's system
``{r_i, r'_i : i >= -MIN}``: the send time ranges over a window of possible values
(carried in R2's initial state), each send is delivered after 0 or ``epsilon`` ticks,
and neither processor has a clock in the uncertain variant.  Experiment E5 sweeps the
staircase; boundary effects of the finite window are noted in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ScenarioError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSignature,
    register_scenario,
)
from repro.logic.syntax import C, Formula, K, Prop
from repro.simulation.network import DeliveryModel
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.clocks import perfect_clock
from repro.systems.events import Message
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import LocalHistory, Run
from repro.systems.system import System

__all__ = [
    "R2",
    "D2",
    "SENT",
    "ChoiceDelivery",
    "build_uncertain_system",
    "build_exact_delivery_system",
    "build_global_clock_system",
    "alternating_rd_formula",
    "first_time_formula_holds",
    "knowledge_staircase",
    "common_knowledge_ever_holds",
]

R2 = "R2"
D2 = "D2"
SENT = Prop("sent_m")
"""Ground fact: the message ``m`` has been sent."""


class ChoiceDelivery(DeliveryModel):
    """Delivery after one of a fixed set of delays (no losses).

    The R2–D2 example needs delays drawn from exactly ``{0, epsilon}``; this model
    also serves other "exact set of possible delays" situations.
    """

    name = "choice"

    def __init__(self, delays: Sequence[int]):
        if not delays or any(d < 0 for d in delays):
            raise ScenarioError("ChoiceDelivery needs a non-empty set of non-negative delays")
        self.delays: Tuple[int, ...] = tuple(sorted(set(delays)))

    def outcomes(self, message: Message, send_time: int, horizon: int):
        arrivals = tuple(
            send_time + delay for delay in self.delays if send_time + delay <= horizon
        )
        return arrivals if arrivals else (None,)


class _SendAtScheduledTime(Protocol):
    """R2 sends ``m`` once, at the send time recorded in its initial state."""

    name = "r2-sender"

    def __init__(self, content: str = "m"):
        self.content = content

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        if processor != R2:
            return Action.nothing()
        if history.sent_messages():
            return Action.nothing()
        if time == history.initial_state:
            return Action.send(D2, self.content)
        return Action.nothing()


def _sent_fact(run: Run) -> Mapping[int, frozenset]:
    """``sent_m`` is stable: true from the send time onward."""
    send_time: Optional[int] = None
    for time in run.times():
        if any(
            type(event).__name__ == "SendEvent" for event in run.events_at(R2, time)
        ):
            send_time = time
            break
    if send_time is None:
        return {}
    return {time: frozenset({SENT.name}) for time in range(send_time, run.duration + 1)}


def build_uncertain_system(
    epsilon: int, send_window: int, horizon: Optional[int] = None
) -> System:
    """The finite analogue of the paper's R2–D2 system.

    ``send_window`` is the number of possible send times (``0, epsilon, 2*epsilon,
    ...``); each message is delivered after 0 or ``epsilon`` ticks.  Both processors
    carry perfect clocks — as in the paper, the only uncertainty is the *relative*
    message delivery time, not the passage of time itself; the message carries no
    timestamp, so D2 cannot tell whether it was sent "now" or ``epsilon`` ago.
    """
    if epsilon < 1:
        raise ScenarioError("epsilon must be at least one tick")
    if send_window < 1:
        raise ScenarioError("send_window must be at least 1")
    duration = horizon if horizon is not None else epsilon * (send_window + 1)
    send_times = tuple(i * epsilon for i in range(send_window))
    clock = perfect_clock(duration)
    return simulate(
        _SendAtScheduledTime(),
        (R2, D2),
        duration=duration,
        delivery=ChoiceDelivery((0, epsilon)),
        initial_states={R2: send_times},
        clocks={R2: (clock,), D2: (clock,)},
        fact_rules=[_sent_fact],
        system_name=f"r2d2-uncertain-eps{epsilon}",
    )


def build_exact_delivery_system(
    epsilon: int, send_window: int = 3, horizon: Optional[int] = None
) -> System:
    """The variant where every message takes *exactly* ``epsilon`` time units.

    The paper: "If it were common knowledge that messages took exactly epsilon time
    units to arrive, then sent(m) would be common knowledge at time t_S + epsilon."
    The send time still ranges over a window (otherwise ``sent(m)`` would be valid in
    the system and trivially common knowledge); with exact delivery the uncertainty
    disappears as soon as D2 receives, so for the run with send time 0 the fact
    becomes common knowledge one observation step after ``t_S + epsilon``.
    """
    if epsilon < 1:
        raise ScenarioError("epsilon must be at least one tick")
    if send_window < 1:
        raise ScenarioError("send_window must be at least 1")
    duration = horizon if horizon is not None else epsilon * (send_window + 1)
    send_times = tuple(i * epsilon for i in range(send_window))
    clock = perfect_clock(duration)
    return simulate(
        _SendAtScheduledTime(),
        (R2, D2),
        duration=duration,
        delivery=ChoiceDelivery((epsilon,)),
        initial_states={R2: send_times},
        clocks={R2: (clock,), D2: (clock,)},
        fact_rules=[_sent_fact],
        system_name=f"r2d2-exact-eps{epsilon}",
    )


class _SendTimestampedAtScheduledTime(_SendAtScheduledTime):
    """R2 sends a message whose content announces the send time (the paper's m')."""

    name = "r2-timestamped-sender"

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        if processor != R2 or history.sent_messages():
            return Action.nothing()
        if time == history.initial_state:
            return Action.send(D2, f"sent at {time}; m")
        return Action.nothing()


def build_global_clock_system(
    epsilon: int, send_window: int = 3, horizon: Optional[int] = None
) -> System:
    """The variant with a global clock and a timestamped message.

    Both processors carry perfect (hence identical) clocks and the message content
    announces its send time, mirroring the paper's message
    "This message is being sent at time t_S; m".  Delivery still takes 0 or
    ``epsilon`` ticks, but because the timestamp (plus the clock) removes the relative
    uncertainty, ``sent(m)`` becomes common knowledge one observation step after
    ``t_S + epsilon`` in every run.
    """
    if epsilon < 1:
        raise ScenarioError("epsilon must be at least one tick")
    if send_window < 1:
        raise ScenarioError("send_window must be at least 1")
    duration = horizon if horizon is not None else epsilon * (send_window + 1)
    send_times = tuple(i * epsilon for i in range(send_window))
    clock = perfect_clock(duration)
    return simulate(
        _SendTimestampedAtScheduledTime(),
        (R2, D2),
        duration=duration,
        delivery=ChoiceDelivery((0, epsilon)),
        initial_states={R2: send_times},
        clocks={R2: (clock,), D2: (clock,)},
        fact_rules=[_sent_fact],
        system_name=f"r2d2-global-clock-eps{epsilon}",
    )


# -- registry entry ----------------------------------------------------------

_VARIANT_BUILDERS = {
    "uncertain": build_uncertain_system,
    "exact": build_exact_delivery_system,
    "global_clock": build_global_clock_system,
}


def _registry_formulas(params):
    """Default formula set: the knowledge staircase of Section 8."""
    return {
        "sent": SENT,
        "K_D2 sent": K(D2, SENT),
        "(K_R K_D) sent": alternating_rd_formula(1),
        "(K_R K_D)^2 sent": alternating_rd_formula(2),
        "C sent": C((R2, D2), SENT),
    }


def _registry_signature(params) -> ScenarioSignature:
    """Static signature: R2 and D2 on perfect clocks; every variant runs
    ``epsilon * (send_window + 1)`` ticks."""
    return ScenarioSignature(
        agents=(R2, D2),
        horizon=params["epsilon"] * (params["send_window"] + 1),
    )


@register_scenario(
    name="r2d2",
    summary="message delivery within {0, eps}: the knowledge staircase (system of runs)",
    section="Section 8",
    parameters=(
        Parameter("epsilon", int, default=1, minimum=1, description="the delivery uncertainty in ticks"),
        Parameter("send_window", int, default=2, minimum=1, description="number of possible send times"),
        Parameter(
            "variant",
            str,
            default="uncertain",
            choices=tuple(sorted(_VARIANT_BUILDERS)),
            description="delivery regime: uncertain {0,eps}, exact eps, or global_clock with timestamps",
        ),
    ),
    formulas=_registry_formulas,
    signature=_registry_signature,
    details=(
        "In the uncertain variant each level (K_R K_D)^k sent(m) first holds eps "
        "later than the previous one and C sent(m) never holds; the exact and "
        "global_clock variants remove the uncertainty and with it the staircase."
    ),
)
def build_r2d2_scenario(epsilon: int, send_window: int, variant: str) -> BuiltScenario:
    """Registry builder: one of the three R2-D2 delivery regimes."""
    system = _VARIANT_BUILDERS[variant](epsilon, send_window)
    return BuiltScenario(
        model=system,
        note="no focus point: the staircase is read off per run with knowledge_staircase()",
    )


def alternating_rd_formula(k: int) -> Formula:
    """``(K_R K_D)^k sent(m)``: k alternations of "R2 knows that D2 knows"."""
    if k < 0:
        raise ScenarioError("k must be non-negative")
    formula: Formula = SENT
    for _ in range(k):
        formula = K(R2, K(D2, formula))
    return formula


def first_time_formula_holds(
    interpretation: ViewBasedInterpretation, run: Run, formula: Formula
) -> Optional[int]:
    """The earliest time at which ``formula`` holds in ``run``, or ``None``."""
    for time in run.times():
        if interpretation.holds(formula, run, time):
            return time
    return None


@dataclass
class StaircaseStep:
    """One level of the R2–D2 knowledge staircase."""

    level: int
    formula: Formula
    first_time: Optional[int]
    predicted_time: int


def knowledge_staircase(
    system: System, run: Run, epsilon: int, max_level: int, send_time: int = 0
) -> List[StaircaseStep]:
    """Measure when each level ``(K_R K_D)^k sent(m)`` first holds in ``run``.

    The paper predicts level ``k`` first holds at ``send_time + k * epsilon`` (in the
    run where the message actually took ``epsilon`` to arrive).
    """
    interpretation = ViewBasedInterpretation(system)
    steps: List[StaircaseStep] = []
    for level in range(1, max_level + 1):
        formula = alternating_rd_formula(level)
        first = first_time_formula_holds(interpretation, run, formula)
        steps.append(
            StaircaseStep(
                level=level,
                formula=formula,
                first_time=first,
                predicted_time=send_time + level * epsilon,
            )
        )
    return steps


def common_knowledge_ever_holds(
    system: System, run: Run, before_time: Optional[int] = None
) -> bool:
    """Whether ``C_{R2,D2} sent(m)`` holds at any point of ``run`` before
    ``before_time`` (default: anywhere in the run).

    In the uncertain system the paper predicts it never does; the finite send window
    truncates the construction, so the check should be restricted to times before the
    last possible send time (pass ``before_time``), as recorded in EXPERIMENTS.md.
    """
    interpretation = ViewBasedInterpretation(system)
    claim = C((R2, D2), SENT)
    limit = run.duration + 1 if before_time is None else min(before_time, run.duration + 1)
    return any(interpretation.holds(claim, run, time) for time in range(limit))
