"""The "cheating husbands" variant of the muddy children puzzle.

Section 2 notes that the muddy children puzzle is "a variant of the well known 'wise
men' or 'cheating wives' puzzles" (the paper's companion study is Moses, Dolev &
Halpern's *Cheating husbands and other stories*).  The epistemic structure is
identical: each queen knows the fidelity of every husband except her own, the Queen
Mother publicly announces that at least one husband is unfaithful, and every night the
queens simultaneously act (shooting their husband at midnight of day ``k`` when they
can prove his infidelity).

The module is a thin specialisation of the muddy-children machinery with the story's
vocabulary; it exists both as a usability affordance and as a check that the scenario
layer generalises beyond a single puzzle.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ScenarioError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSignature,
    register_scenario,
)
from repro.scenarios.muddy_children import (
    MuddyChildren,
    MuddyChildrenResult,
    announcement_formula_set,
)

__all__ = ["CheatingHusbands", "run_cheating_husbands"]


class CheatingHusbands(MuddyChildren):
    """The puzzle with ``n`` queens, ``k`` of whom have unfaithful husbands."""

    def __init__(self, n: int, unfaithful: Sequence[int], names: Sequence[str] = ()):
        queen_names = tuple(names) if names else tuple(f"queen_{i}" for i in range(n))
        super().__init__(n, muddy=unfaithful, names=queen_names)

    @property
    def at_least_one_unfaithful(self):
        """The Queen Mother's announcement: some husband is unfaithful."""
        return self.at_least_one_muddy

    def knows_husband_unfaithful(self, queen: str):
        """Queen ``queen`` can prove her husband is unfaithful (and must shoot him)."""
        return self.knows_muddy(queen)


# -- registry entry ----------------------------------------------------------

def _registry_formulas(params):
    """Default formula set: the announcement claims in the story's vocabulary."""
    n, k = params["n"], params["k"]
    return announcement_formula_set(tuple(f"queen_{i}" for i in range(n)), k)


def _registry_signature(params) -> ScenarioSignature:
    """Static signature: 2^n marriage vectors, no clocks, bare Kripke model."""
    n = params["n"]
    return ScenarioSignature(
        agents=tuple(f"queen_{i}" for i in range(n)),
        kind="kripke",
        universe_size=2 ** n,
    )


@register_scenario(
    name="cheating_husbands",
    summary="n queens, k unfaithful husbands; the Queen Mother speaks (Kripke model)",
    section="Section 2 (the wise-men/cheating-wives family)",
    parameters=(
        Parameter("n", int, default=3, minimum=1, description="number of queens"),
        Parameter(
            "k", int, default=2, minimum=0,
            description="how many husbands are unfaithful (the first k)",
        ),
    ),
    formulas=_registry_formulas,
    signature=_registry_signature,
    details=(
        "Epistemically identical to muddy_children with the story's vocabulary: "
        "queens observe every marriage but their own; the shootings happen on "
        "night k."
    ),
)
def build_cheating_husbands_scenario(n: int, k: int) -> BuiltScenario:
    """Registry builder: the n-queens model, focused on the actual world."""
    if k > n:
        raise ScenarioError("k must be between 0 and n")
    puzzle = CheatingHusbands(n, unfaithful=list(range(k)))
    return BuiltScenario(
        model=puzzle.model,
        focus=puzzle.actual_world,
        note=f"focus = the actual world (the first {k} of {n} husbands unfaithful)",
    )


def run_cheating_husbands(
    n: int, k: int, rounds: int = None, backend: str = None
) -> MuddyChildrenResult:
    """``n`` queens, the first ``k`` have unfaithful husbands; the Queen Mother speaks.

    The shootings happen on night ``k``: the result's ``first_yes_round`` equals ``k``
    and exactly the wronged queens act.  The nightly rounds run through the chained
    update API (one :class:`~repro.kripke.announcement.UpdateChain` drives the Queen
    Mother's announcement and every simultaneous midnight decision); ``backend``
    selects the engine's set representation for the chain.
    """
    if not 0 <= k <= n:
        raise ScenarioError("k must be between 0 and n")
    puzzle = CheatingHusbands(n, unfaithful=list(range(k)))
    return puzzle.play(rounds=rounds, father_announces=True, backend=backend)
