"""A declarative scenario DSL: (protocol x delivery model x formula suite) as data.

The paper's central move is that *any* protocol running under *any* assumption on
the communication medium induces a system of runs whose knowledge properties can
be checked.  The hand-written scenario modules each wire that product together
manually; a :class:`ScenarioRecipe` states it declaratively instead:

    RECIPE = ScenarioRecipe(
        name="ping",
        summary="one message over a lossy link",
        section="Section 5",
        processors=("A", "B"),
        protocol=lambda params: PingProtocol(),
        delivery=Unreliable(delay=1),
        horizon="horizon",
        parameters=(Parameter("horizon", int, default=3, minimum=1),),
        formulas={"delivered": "delivered", "K_B delivered": "K_B delivered"},
    )
    RECIPE.register()

``register()`` puts the recipe onto the PR 2 scenario registry, so the typed
parameter validation, the ``repro list/describe/run/sweep`` CLI, the experiment
runner's caching and parallel sweeps, and the generated ``docs/scenarios.md``
page all apply to it with no further code.

Every ingredient can be a constant or a callable receiving the validated
parameter assignment (a ``dict``), so parameter-dependent protocols, delivery
models, clock assignments and formula suites are all one lambda away.  An
optional ``adversary`` composes a :data:`~repro.simulation.network.DropRule`
over the delivery model through
:class:`~repro.simulation.network.AdversarialDrops`.

Misuse raises :class:`~repro.errors.DSLError` (a :class:`ScenarioError`
subclass) with a message naming the offending ingredient — malformed recipes,
protocol/processor arity mismatches, non-delivery-model ``delivery`` fields and
unknown formula labels are all reported without tracebacks by the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import DSLError, ParseError, ProtocolError, SimulationError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSpec,
    register_scenario,
)
from repro.logic.agents import Agent
from repro.logic.check import (
    ScenarioSignature,
    check_formulas,
    check_text,
)
from repro.logic.parser import parse
from repro.logic.syntax import Formula
from repro.simulation.network import AdversarialDrops, DeliveryModel, DropRule
from repro.simulation.protocol import JointProtocol, Protocol
from repro.simulation.simulator import FactRule, simulate
from repro.systems.system import System

__all__ = ["ScenarioRecipe", "Resolvable", "FormulaEntry"]

Params = Mapping[str, object]

Resolvable = Union[object, Callable[[Params], object]]
"""A recipe ingredient: either a constant, or a callable receiving the validated
parameter dict and returning the value to use for that parameter assignment."""

FormulaEntry = Union[str, Formula, Callable[[Params], Union[str, Formula]]]
"""One formula-suite entry: formula text (parsed by :mod:`repro.logic.parser`),
a built :class:`~repro.logic.syntax.Formula`, or a callable producing either."""


def _resolve(value: Resolvable, params: Params) -> object:
    """Evaluate an ingredient: call it with ``params`` if callable, else pass through.

    Delivery models, protocols and joint protocols are *instances* of callable
    classes in some codebases; here none of them are callable, so the rule is
    unambiguous.
    """
    if callable(value) and not isinstance(value, (Protocol, JointProtocol, DeliveryModel)):
        return value(params)
    return value


@dataclass(frozen=True)
class ScenarioRecipe:
    """A scenario stated as data: every ingredient of (protocol x environment).

    Required fields
    ---------------
    name / summary / section:
        Registry metadata, exactly as :func:`register_scenario` takes them.
    processors:
        The processor tuple, or a callable ``params -> tuple`` for
        parameter-sized families (e.g. ``lambda p: tuple(f"p{i}" for i in
        range(p["n"]))``).
    protocol:
        A :class:`~repro.simulation.protocol.Protocol` (applied to every
        processor), a :class:`~repro.simulation.protocol.JointProtocol`, a
        per-processor mapping, or a callable producing any of those.
    horizon:
        How many time steps each run lasts: an ``int``, the *name* of an
        ``int`` parameter, or a callable.

    Optional fields
    ---------------
    delivery:
        A :class:`~repro.simulation.network.DeliveryModel` or a callable
        producing one (default :class:`ReliableSynchronous`'s simulator
        default).
    adversary:
        A :data:`~repro.simulation.network.DropRule` (or callable producing
        one); composed over ``delivery`` through :class:`AdversarialDrops`.
    parameters:
        The typed :class:`~repro.experiments.registry.Parameter` schema.
    initial_states / wake_times / clocks:
        Environment maps (or callables), exactly as
        :func:`~repro.simulation.simulator.simulate` takes them; keys must
        name declared processors.
    fact_rules:
        Ground-fact rules applied to every finished run (or a callable
        producing the sequence).
    formulas:
        The formula suite: a ``label -> entry`` mapping or a callable
        producing one (entries per :data:`FormulaEntry`).
    default_labels:
        An optional subset of suite labels to expose as the registered default
        formula set; naming an unknown label raises :class:`DSLError`.
    focus:
        ``(system, params) -> point`` picking the designated point of the
        built system, when the scenario singles one out.
    note / system_name / max_runs / details:
        Presentation and simulator plumbing, all resolvable.
    """

    name: str
    summary: str
    section: str
    processors: Resolvable
    protocol: Resolvable
    horizon: Union[int, str, Callable[[Params], int]]
    delivery: Optional[Resolvable] = None
    adversary: Optional[Resolvable] = None
    parameters: Tuple[Parameter, ...] = ()
    initial_states: Optional[Resolvable] = None
    wake_times: Optional[Resolvable] = None
    clocks: Optional[Resolvable] = None
    fact_rules: Resolvable = ()
    formulas: Optional[Resolvable] = None
    default_labels: Optional[Tuple[str, ...]] = None
    focus: Optional[Callable[[System, Params], object]] = None
    note: Resolvable = ""
    system_name: Optional[Resolvable] = None
    max_runs: int = 20_000
    details: str = field(default="", compare=False)

    # -- definition-time validation -------------------------------------------
    def validate(self) -> None:
        """Check the recipe's shape before registration, raising :class:`DSLError`.

        Catches everything checkable without a parameter assignment: missing
        metadata, a schema that is not made of :class:`Parameter` objects, a
        ``horizon`` naming an unknown or non-``int`` parameter, constant
        ``delivery``/``protocol`` fields of the wrong type, static formula
        entries that do not parse, and ``default_labels`` naming labels a
        static suite does not define.
        """
        if not self.name or not isinstance(self.name, str):
            raise DSLError(f"a scenario recipe needs a non-empty name, got {self.name!r}")
        if not self.summary:
            raise DSLError(f"recipe {self.name!r} needs a summary")
        names = set()
        for parameter in self.parameters:
            if not isinstance(parameter, Parameter):
                raise DSLError(
                    f"recipe {self.name!r}: parameters must be Parameter objects, "
                    f"got {parameter!r}"
                )
            if parameter.name in names:
                raise DSLError(
                    f"recipe {self.name!r} declares parameter {parameter.name!r} twice"
                )
            names.add(parameter.name)
        if isinstance(self.horizon, str):
            matching = [p for p in self.parameters if p.name == self.horizon]
            if not matching:
                raise DSLError(
                    f"recipe {self.name!r}: horizon references unknown parameter "
                    f"{self.horizon!r}; declared parameters: {sorted(names)}"
                )
            if matching[0].type is not int:
                raise DSLError(
                    f"recipe {self.name!r}: horizon parameter {self.horizon!r} must "
                    f"be int-typed, is {matching[0].type.__name__}"
                )
        elif isinstance(self.horizon, bool) or (
            not callable(self.horizon) and not isinstance(self.horizon, int)
        ):
            raise DSLError(
                f"recipe {self.name!r}: horizon must be an int, a parameter name "
                f"or a callable, got {self.horizon!r}"
            )
        if self.delivery is not None and not callable(self.delivery):
            if not isinstance(self.delivery, DeliveryModel):
                raise DSLError(
                    f"recipe {self.name!r}: delivery must be a DeliveryModel "
                    f"(or a callable producing one), got {self.delivery!r}"
                )
        if not callable(self.protocol) and not isinstance(
            self.protocol, (Protocol, JointProtocol, Mapping)
        ):
            raise DSLError(
                f"recipe {self.name!r}: protocol must be a Protocol, a "
                f"JointProtocol, a per-processor mapping, or a callable, "
                f"got {self.protocol!r}"
            )
        if self.formulas is not None and isinstance(self.formulas, Mapping):
            for label, entry in self.formulas.items():
                if isinstance(entry, str):
                    # Route the entry through the static checker so a bad
                    # formula is reported with the same REP-coded diagnostics
                    # as `repro check`, not an ad-hoc message.
                    _, diagnostics = check_text(entry, label=str(label))
                    failures = [d for d in diagnostics if d.is_error]
                    if failures:
                        rendered = "; ".join(
                            f"{d.code}: {d.message}" for d in failures
                        )
                        raise DSLError(
                            f"recipe {self.name!r}: formula {label!r} does not "
                            f"parse or check: {rendered}"
                        )
                elif not isinstance(entry, Formula) and not callable(entry):
                    raise DSLError(
                        f"recipe {self.name!r}: formula {label!r} must be formula "
                        f"text, a Formula, or a callable, got {entry!r}"
                    )
            self._check_labels(tuple(self.formulas))
        if self.default_labels is not None and self.formulas is None:
            raise DSLError(
                f"recipe {self.name!r}: default_labels given but no formula suite"
            )

    def _check_labels(self, known: Tuple[str, ...]) -> None:
        if self.default_labels is None:
            return
        unknown = [label for label in self.default_labels if label not in known]
        if unknown:
            raise DSLError(
                f"recipe {self.name!r}: default_labels name unknown formula "
                f"label(s) {unknown}; suite defines {list(known)}"
            )

    # -- per-assignment resolution --------------------------------------------
    def _resolve_processors(self, params: Params) -> Tuple[Agent, ...]:
        processors = _resolve(self.processors, params)
        if isinstance(processors, (str, bytes)) or not isinstance(processors, Sequence):
            raise DSLError(
                f"recipe {self.name!r}: processors must resolve to a sequence "
                f"of agents, got {processors!r}"
            )
        resolved = tuple(processors)
        if not resolved:
            raise DSLError(f"recipe {self.name!r}: processors resolved to an empty tuple")
        if len(set(resolved)) != len(resolved):
            raise DSLError(f"recipe {self.name!r}: processor names must be unique")
        return resolved

    def _resolve_protocol(self, params: Params, processors: Tuple[Agent, ...]):
        protocol = _resolve(self.protocol, params)
        if isinstance(protocol, Mapping):
            missing = sorted(repr(p) for p in set(processors) - set(protocol))
            if missing:
                raise DSLError(
                    f"recipe {self.name!r}: protocol mapping is missing "
                    f"processors {missing} (protocol/processor arity mismatch)"
                )
            extra = sorted(repr(p) for p in set(protocol) - set(processors))
            if extra:
                raise DSLError(
                    f"recipe {self.name!r}: protocol mapping names processors "
                    f"{extra} that the recipe does not declare"
                )
            return protocol
        if isinstance(protocol, JointProtocol):
            missing = sorted(repr(p) for p in set(processors) - set(protocol.processors))
            if missing:
                raise DSLError(
                    f"recipe {self.name!r}: joint protocol is missing processors "
                    f"{missing} (protocol/processor arity mismatch)"
                )
            return protocol
        if isinstance(protocol, Protocol):
            return protocol
        raise DSLError(
            f"recipe {self.name!r}: protocol resolved to {protocol!r}; expected "
            "a Protocol, a JointProtocol, or a per-processor mapping"
        )

    def _resolve_horizon(self, params: Params) -> int:
        if isinstance(self.horizon, str):
            horizon = params[self.horizon]
        else:
            horizon = _resolve(self.horizon, params)
        if isinstance(horizon, bool) or not isinstance(horizon, int):
            raise DSLError(
                f"recipe {self.name!r}: horizon resolved to {horizon!r}, not an int"
            )
        if horizon < 0:
            raise DSLError(f"recipe {self.name!r}: horizon must be non-negative")
        return horizon

    def _resolve_delivery(self, params: Params) -> Optional[DeliveryModel]:
        delivery = _resolve(self.delivery, params) if self.delivery is not None else None
        if delivery is not None and not isinstance(delivery, DeliveryModel):
            raise DSLError(
                f"recipe {self.name!r}: delivery resolved to {delivery!r}, "
                "not a DeliveryModel"
            )
        if self.adversary is not None:
            rule = _resolve(self.adversary, params)
            if not callable(rule):
                raise DSLError(
                    f"recipe {self.name!r}: adversary resolved to {rule!r}, "
                    "not a callable drop rule"
                )
            from repro.simulation.network import ReliableSynchronous

            delivery = AdversarialDrops(
                delivery if delivery is not None else ReliableSynchronous(), rule
            )
        return delivery

    def _resolve_environment_map(
        self, label: str, value: Optional[Resolvable], params: Params,
        processors: Tuple[Agent, ...],
    ) -> Optional[Mapping]:
        if value is None:
            return None
        resolved = _resolve(value, params)
        if resolved is None:
            return None
        if not isinstance(resolved, Mapping):
            raise DSLError(
                f"recipe {self.name!r}: {label} must resolve to a mapping, "
                f"got {resolved!r}"
            )
        unknown = sorted(repr(p) for p in set(resolved) - set(processors))
        if unknown:
            raise DSLError(
                f"recipe {self.name!r}: {label} names unknown processors {unknown}"
            )
        return resolved

    def resolve_formulas(self, params: Params) -> Dict[str, Formula]:
        """The formula suite for ``params``: labels mapped to parsed formulas.

        Applies ``default_labels`` selection; raises :class:`DSLError` on a
        suite that is not a mapping, entries that fail to parse, entries of the
        wrong type, or selected labels the suite does not define.
        """
        if self.formulas is None:
            return {}
        suite = _resolve(self.formulas, params)
        if not isinstance(suite, Mapping):
            raise DSLError(
                f"recipe {self.name!r}: formula suite must resolve to a mapping, "
                f"got {suite!r}"
            )
        self._check_labels(tuple(suite))
        labels = self.default_labels if self.default_labels is not None else tuple(suite)
        resolved: Dict[str, Formula] = {}
        for label in labels:
            entry = suite[label]
            if callable(entry) and not isinstance(entry, Formula):
                entry = entry(params)
            if isinstance(entry, str):
                try:
                    entry = parse(entry)
                except ParseError as exc:
                    raise DSLError(
                        f"recipe {self.name!r}: formula {label!r} does not "
                        f"parse: {exc}"
                    ) from exc
            if not isinstance(entry, Formula):
                raise DSLError(
                    f"recipe {self.name!r}: formula {label!r} resolved to "
                    f"{entry!r}, not a Formula"
                )
            resolved[str(label)] = entry
        return resolved

    # -- static analysis ---------------------------------------------------------
    def signature_for(self, params: Optional[Params] = None) -> ScenarioSignature:
        """The recipe's static signature for ``params`` — derived, not simulated.

        Processors and horizon are resolvable from the parameter assignment
        alone, and ``clocks`` being set marks the scenario as using custom
        clocks; nothing here runs the protocol, so the registry can hand this
        to the checker before any instance exists.
        """
        assignment: Dict[str, object] = dict(params or {})
        return ScenarioSignature(
            agents=self._resolve_processors(assignment),
            horizon=self._resolve_horizon(assignment),
            custom_clocks=self.clocks is not None,
            name=self.name,
        )

    def lint(self, params: Optional[Params] = None) -> list:
        """Statically check the resolvable formula suite for ``params``.

        Resolves the suite (parsing string entries, applying
        ``default_labels``) and runs every formula through
        :func:`repro.logic.check.check_formulas` against the recipe's derived
        signature.  Returns the list of
        :class:`~repro.analysis.diagnostics.Diagnostic` records; an empty list
        means the suite is clean for this assignment.
        """
        assignment: Dict[str, object] = dict(params or {})
        suite = self.resolve_formulas(assignment)
        if not suite:
            return []
        return check_formulas(suite, self.signature_for(assignment))

    # -- building ---------------------------------------------------------------
    def build(self, params: Optional[Params] = None) -> BuiltScenario:
        """Simulate the recipe for one (already validated) parameter assignment.

        This is the function ``register()`` installs as the registry builder;
        it can also be called directly for ad-hoc use without registration
        (``params`` then defaults to the empty assignment — callers are
        responsible for validating against the schema, which the registry
        normally does).
        """
        assignment: Dict[str, object] = dict(params or {})
        processors = self._resolve_processors(assignment)
        protocol = self._resolve_protocol(assignment, processors)
        horizon = self._resolve_horizon(assignment)
        delivery = self._resolve_delivery(assignment)
        fact_rules = _resolve(self.fact_rules, assignment) or ()
        if not isinstance(fact_rules, Sequence) or isinstance(fact_rules, (str, bytes)):
            raise DSLError(
                f"recipe {self.name!r}: fact_rules must resolve to a sequence "
                f"of rules, got {fact_rules!r}"
            )
        system_name = (
            _resolve(self.system_name, assignment)
            if self.system_name is not None
            else self.name
        )
        try:
            system = simulate(
                protocol,
                processors,
                duration=horizon,
                delivery=delivery,
                initial_states=self._resolve_environment_map(
                    "initial_states", self.initial_states, assignment, processors
                ),
                wake_times=self._resolve_environment_map(
                    "wake_times", self.wake_times, assignment, processors
                ),
                clocks=self._resolve_environment_map(
                    "clocks", self.clocks, assignment, processors
                ),
                fact_rules=tuple(fact_rules),
                max_runs=self.max_runs,
                system_name=str(system_name),
            )
        except (ProtocolError, SimulationError) as exc:
            raise DSLError(
                f"recipe {self.name!r} failed to simulate: {exc}"
            ) from exc
        focus = self.focus(system, assignment) if self.focus is not None else None
        note = _resolve(self.note, assignment) or ""
        return BuiltScenario(model=system, focus=focus, note=str(note))

    # -- registration -----------------------------------------------------------
    def register(self) -> ScenarioSpec:
        """Validate the recipe and put it onto the scenario registry.

        The registered builder simulates the recipe per validated parameter
        assignment; the registered formula factory resolves the suite the same
        way.  Returns the created
        :class:`~repro.experiments.registry.ScenarioSpec` (also reachable via
        :func:`~repro.experiments.registry.get_scenario` afterwards); the
        recipe itself is attached to the spec's builder as ``recipe`` so
        introspection tools can recover the declarative form.

        Beyond the structural :meth:`validate` pass, registration lints the
        formula suite at the schema's default parameters through the static
        checker (when every parameter has a default), so a recipe whose
        resolvable suite names an unknown processor, violates positivity, or
        misuses timestamps is rejected here — with REP-coded diagnostics —
        rather than at evaluation time.  The derived :meth:`signature_for` is
        installed as the registry's signature factory, which is what lets
        ``repro check`` and the runner pre-flight cover DSL scenarios too.
        """
        self.validate()
        recipe = self
        if all(not p.required for p in self.parameters):
            defaults = {p.name: p.default for p in self.parameters}
            failures = [d for d in self.lint(defaults) if d.is_error]
            if failures:
                rendered = "; ".join(
                    f"{d.code} [{d.label}]: {d.message}" for d in failures
                )
                raise DSLError(
                    f"recipe {self.name!r}: default formula suite fails the "
                    f"static checker: {rendered}"
                )

        def builder(**params: object) -> BuiltScenario:
            return recipe.build(params)

        builder.__name__ = f"build_{self.name}"
        builder.__qualname__ = builder.__name__
        builder.__doc__ = f"DSL-generated builder for scenario {self.name!r}."
        builder.__module__ = type(self).__module__
        formula_factory = None
        if self.formulas is not None:
            def formula_factory(params: Params) -> Dict[str, Formula]:
                return recipe.resolve_formulas(params)

        def signature_factory(params: Params) -> ScenarioSignature:
            return recipe.signature_for(params)

        decorator = register_scenario(
            name=self.name,
            summary=self.summary,
            section=self.section,
            parameters=self.parameters,
            formulas=formula_factory,
            details=self.details,
            signature=signature_factory,
        )
        registered = decorator(builder)
        registered.recipe = recipe
        return registered.scenario_spec
