"""The "OK" protocol of Section 11.

R2 and D2 are connected by an unreliable two-way link and have perfectly synchronised
clocks.  Both run: *at time 0, send "OK"; for every k > 0, if you have received k "OK"
messages by time k on your clock, send "OK" at time k; otherwise send nothing.*

Let ``psi`` be "it is time k, for some k >= 1, and some message sent at or before time
k - 1 was not delivered within one time unit".  The paper shows ``psi -> E^1 psi`` is
valid in this system, so by the induction rule ``psi -> C^1 psi`` is valid too:
epsilon-common knowledge (with epsilon = 1) of ``psi`` is attained exactly when
communication is *unsuccessful* — successful communication prevents it.  This is the
paper's demonstration that the analogue of Theorem 5 fails for ``C^eps`` and ``C^<>``
(while Theorem 9 still gives a partial converse).

Experiment E7 uses this system; the same construction also exhibits the example after
Proposition 10, where ``(E^<>)^k phi`` holds for every k while ``C^<> phi`` fails.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import ScenarioError
from repro.experiments.registry import Parameter
from repro.logic.syntax import CDiamond, CEps, EveryoneEps, Formula, Prop
from repro.scenarios.dsl import ScenarioRecipe
from repro.simulation.network import Unreliable
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.clocks import perfect_clock
from repro.systems.runs import LocalHistory, Run
from repro.systems.system import System

__all__ = [
    "LEFT",
    "RIGHT",
    "DELAYED",
    "OkProtocol",
    "build_ok_system",
    "psi_formula",
    "eps_common_knowledge_of_psi",
]

LEFT = "R2"
RIGHT = "D2"
DELAYED = Prop("late_or_lost")
"""The fact ``psi``: some message sent at or before time k-1 was not delivered within
one time unit (evaluated per point, so it is time-dependent)."""


class OkProtocol(Protocol):
    """Send "OK" at time 0; at time k, send "OK" iff k "OK"s have been received."""

    name = "ok-protocol"

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        other = RIGHT if processor == LEFT else LEFT
        if not history.awake:
            return Action.nothing()
        clock_time = int(history.clock_readings[-1]) if history.clock_readings else time
        received = len(history.received_messages())
        if clock_time == 0:
            return Action.send(other, "OK")
        if received >= clock_time:
            return Action.send(other, "OK")
        return Action.nothing()


def _delayed_fact(run: Run) -> Mapping[int, frozenset]:
    """``psi`` holds at time k >= 1 if some message sent at or before k-1 has not been
    delivered within one time unit of its sending (it is late or lost)."""
    sends = []
    delivered_at = {}
    for processor in run.processors:
        for time in run.times():
            for event in run.events_at(processor, time):
                kind = type(event).__name__
                if kind == "SendEvent":
                    sends.append((event.message, time))
                elif kind == "ReceiveEvent":
                    delivered_at[event.message] = time
    facts = {}
    for point_time in range(1, run.duration + 1):
        late = False
        for message, send_time in sends:
            if send_time > point_time - 1:
                continue
            delivery = delivered_at.get(message)
            if delivery is None or delivery > send_time + 1:
                # Not delivered within one time unit.  A message still in flight
                # counts once its deadline (send_time + 1) has passed.
                if delivery is not None or point_time >= send_time + 1:
                    late = True
                    break
        if late:
            facts[point_time] = frozenset({DELAYED.name})
    return facts


def build_ok_system(horizon: int) -> System:
    """All runs of the OK protocol over an unreliable link, up to ``horizon``."""
    if horizon < 1:
        raise ScenarioError("horizon must be at least 1")
    clock = perfect_clock(horizon)
    return simulate(
        OkProtocol(),
        (LEFT, RIGHT),
        duration=horizon,
        delivery=Unreliable(delay=1),
        clocks={LEFT: (clock,), RIGHT: (clock,)},
        fact_rules=[_delayed_fact],
        system_name=f"ok-protocol-h{horizon}",
        max_runs=100_000,
    )


# -- registry entry (via the scenario DSL) -----------------------------------

def _registry_formulas(params):
    """Default formula set: psi and its epsilon-common-knowledge closure."""
    eps = params["eps"]
    group = (LEFT, RIGHT)
    return {
        "psi": DELAYED,
        f"E^eps({eps}) psi": EveryoneEps(group, DELAYED, eps),
        f"C^eps({eps}) psi": CEps(group, DELAYED, eps),
    }


def _clocks(params):
    """Both processors read the same perfectly synchronised clock."""
    clock = perfect_clock(params["horizon"])
    return {LEFT: (clock,), RIGHT: (clock,)}


RECIPE = ScenarioRecipe(
    name="ok_protocol",
    summary='the "OK" protocol: eps-common knowledge of failure (system of runs)',
    section="Section 11",
    processors=(LEFT, RIGHT),
    protocol=OkProtocol(),
    horizon="horizon",
    delivery=Unreliable(delay=1),
    parameters=(
        Parameter("horizon", int, default=3, minimum=1, description="how many time steps each run lasts"),
        Parameter("eps", int, default=1, minimum=0, description="the epsilon of C^eps in the formula set"),
    ),
    clocks=_clocks,
    fact_rules=(_delayed_fact,),
    formulas=_registry_formulas,
    note="no focus point: the Section 11 claims are validity claims",
    system_name=lambda params: f"ok-protocol-h{params['horizon']}",
    max_runs=100_000,
    details=(
        "psi says some message was not delivered within one time unit.  In this "
        "system psi -> E^1 psi is valid, so psi -> C^1 psi is valid too: "
        "epsilon-common knowledge of psi is attained exactly when communication "
        "fails."
    ),
)

OK_PROTOCOL = RECIPE.register()
"""The registered :class:`~repro.experiments.registry.ScenarioSpec` (the same
system :func:`build_ok_system` constructs, built through the DSL)."""


def psi_formula() -> Formula:
    """The fact ``psi`` of the Section 11 example."""
    return DELAYED


def eps_common_knowledge_of_psi(eps: int = 1) -> Formula:
    """``C^eps psi`` for the two processors of the OK system."""
    return CEps((LEFT, RIGHT), DELAYED, eps)
