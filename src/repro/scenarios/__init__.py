"""Scenario library (system S11 of DESIGN.md): the paper's worked examples.

Each module builds the relevant model (a Kripke structure or a system of runs) through
the public API of :mod:`repro.kripke`, :mod:`repro.systems` and
:mod:`repro.simulation`, and exposes the quantities the paper reasons about so the
experiments in ``benchmarks/`` and the examples in ``examples/`` stay short.

Every module also registers itself with the scenario registry
(:mod:`repro.experiments.registry`) on import — name, paper section, typed
parameter schema, builder, default formula set — which is what makes the
scenarios enumerable and runnable from the ``python -m repro`` CLI and the
:class:`~repro.experiments.runner.ExperimentRunner`.
"""

from repro.scenarios import (
    broadcast,
    byzantine,
    cheating_husbands,
    commit,
    coordinated_attack,
    fuzzed,
    gossip,
    muddy_children,
    ok_protocol,
    phases,
    r2d2,
    sequence_transmission,
)
from repro.scenarios.dsl import ScenarioRecipe
from repro.scenarios.cheating_husbands import CheatingHusbands, run_cheating_husbands
from repro.scenarios.muddy_children import (
    MuddyChildren,
    MuddyChildrenResult,
    RoundOutcome,
    run_muddy_children,
)

__all__ = [
    "broadcast",
    "byzantine",
    "cheating_husbands",
    "commit",
    "coordinated_attack",
    "fuzzed",
    "gossip",
    "muddy_children",
    "ok_protocol",
    "phases",
    "r2d2",
    "sequence_transmission",
    "ScenarioRecipe",
    "CheatingHusbands",
    "run_cheating_husbands",
    "MuddyChildren",
    "MuddyChildrenResult",
    "RoundOutcome",
    "run_muddy_children",
]
