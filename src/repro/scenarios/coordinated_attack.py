"""The coordinated attack problem (Sections 4 and 7).

Two generals, ``A`` and ``B``, communicate through a messenger who may be lost or
captured (an unreliable channel).  General ``A`` may or may not want to attack (its
initial state); if it does, it starts a handshake: message, acknowledgement,
acknowledgement of the acknowledgement, ... up to a chosen depth.  Each general would
attack only if certain the other attacks with it.

Reproduced claims (experiments E3 and E8):

* Each delivered message adds exactly one level to the nested knowledge about A's
  intention: after the first delivery ``K_B intend`` holds, after the second
  ``K_A K_B intend``, and so on — but never common knowledge
  (:func:`knowledge_depth_after_deliveries`).
* Proposition 4: for any protocol in which the generals only ever attack together,
  whenever they attack, the attack is common knowledge
  (:func:`attack_implies_common_knowledge`).
* Corollary 6: no deterministic threshold policy built on a finite handshake is a
  correct coordinated-attack protocol — every policy either never attacks in any run
  or admits a run in which one general attacks alone
  (:func:`search_for_correct_policy`).
* Proposition 10: the same holds for *eventually* coordinated attack
  (checked through the C-diamond analysis in :mod:`repro.analysis.attainability`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ScenarioError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSignature,
    register_scenario,
)
from repro.logic.syntax import C, Common, Formula, K, Knows, Prop
from repro.simulation.network import DeliveryModel, Unreliable
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.clocks import perfect_clock
from repro.systems.events import ReceiveEvent, SendEvent
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import LocalHistory, Run
from repro.systems.system import System

__all__ = [
    "GENERAL_A",
    "GENERAL_B",
    "GENERALS",
    "INTEND",
    "BOTH_ATTACK",
    "HandshakeProtocol",
    "AttackPolicy",
    "build_handshake_system",
    "knowledge_depth_after_deliveries",
    "alternating_knowledge_formula",
    "attack_implies_common_knowledge",
    "PolicyOutcome",
    "evaluate_attack_policy",
    "search_for_correct_policy",
]

GENERAL_A = "A"
GENERAL_B = "B"
GENERALS = (GENERAL_A, GENERAL_B)

INTEND = Prop("intend_attack")
"""Ground fact: general A's initial state is "attack" (A wants to coordinate)."""

BOTH_ATTACK = Prop("both_attack")
"""Ground fact: both generals are attacking at the current time."""

ATTACK_STATE = "attack"
PEACE_STATE = "peace"


@dataclass(frozen=True)
class AttackPolicy:
    """A deterministic attack rule layered on top of the handshake.

    Each general attacks at ``attack_time`` exactly if it has received at least its
    threshold of handshake messages by then.  ``None`` thresholds mean "never attack".
    """

    threshold_a: Optional[int]
    threshold_b: Optional[int]
    attack_time: int


class HandshakeProtocol(Protocol):
    """The k-round handshake of Section 4, with an optional attack policy.

    General A, if its initial state is ``"attack"``, sends handshake message 1 at time
    0.  A general that has received handshake message ``i`` (and has not yet replied
    to it) replies with handshake message ``i + 1``, as long as ``i < depth``.
    """

    name = "handshake"

    def __init__(self, depth: int, policy: Optional[AttackPolicy] = None):
        if depth < 1:
            raise ScenarioError("the handshake needs depth >= 1")
        self.depth = depth
        self.policy = policy

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        action = Action.nothing()
        other = GENERAL_B if processor == GENERAL_A else GENERAL_A

        received_indices = [
            message.content[1]
            for message in history.received_messages()
            if isinstance(message.content, tuple) and message.content[0] == "handshake"
        ]
        sent_indices = [
            message.content[1]
            for message in history.sent_messages()
            if isinstance(message.content, tuple) and message.content[0] == "handshake"
        ]

        # Initiation: A starts the handshake if it wants to attack.
        if (
            processor == GENERAL_A
            and history.initial_state == ATTACK_STATE
            and time == 0
            and not sent_indices
        ):
            action = action.also_send(other, ("handshake", 1))

        # Replies: acknowledge the highest message received, if not yet acknowledged.
        if received_indices:
            highest = max(received_indices)
            reply_index = highest + 1
            if reply_index <= self.depth and reply_index not in sent_indices:
                action = action.also_send(other, ("handshake", reply_index))

        # Attack policy.
        if self.policy is not None and time == self.policy.attack_time:
            threshold = (
                self.policy.threshold_a if processor == GENERAL_A else self.policy.threshold_b
            )
            if threshold is not None and len(received_indices) >= threshold:
                # A general that never wanted to attack does not attack spontaneously.
                if processor != GENERAL_A or history.initial_state == ATTACK_STATE:
                    action = action.also_act("attack")
        return action


def _intend_fact(run: Run) -> Mapping[int, frozenset]:
    """INTEND holds at every time of a run in which A's initial state is "attack"."""
    if run.initial_state(GENERAL_A) != ATTACK_STATE:
        return {}
    return {time: frozenset({INTEND.name}) for time in run.times()}


def _attack_facts(run: Run) -> Mapping[int, frozenset]:
    """Per-time facts about who is attacking (attacks are instantaneous actions)."""
    facts: Dict[int, set] = {}
    for time in run.times():
        a_attacks = any(
            event.label == "attack"
            for event in run.events_at(GENERAL_A, time)
            if hasattr(event, "label")
        )
        b_attacks = any(
            event.label == "attack"
            for event in run.events_at(GENERAL_B, time)
            if hasattr(event, "label")
        )
        names = set()
        if a_attacks:
            names.add("a_attacks")
        if b_attacks:
            names.add("b_attacks")
        if a_attacks and b_attacks:
            names.add(BOTH_ATTACK.name)
        if a_attacks or b_attacks:
            names.add("some_attack")
        if names:
            facts[time] = frozenset(names)
    return facts


def build_handshake_system(
    depth: int,
    horizon: int,
    delivery: Optional[DeliveryModel] = None,
    policy: Optional[AttackPolicy] = None,
    include_peace_runs: bool = True,
) -> System:
    """Enumerate every run of the depth-``depth`` handshake up to ``horizon``.

    ``delivery`` defaults to the unreliable messenger (each message takes one hour or
    is lost).  With ``include_peace_runs`` the runs in which A never wanted to attack
    are part of the system, which is what makes ``INTEND`` a non-trivial fact.
    """
    initial_states = (
        {GENERAL_A: (ATTACK_STATE, PEACE_STATE) if include_peace_runs else (ATTACK_STATE,)}
    )
    # The generals follow the description in Section 7: their actions are a function
    # of their history and "the time on their clock", so both carry perfect clocks.
    clock = perfect_clock(horizon)
    return simulate(
        HandshakeProtocol(depth, policy),
        GENERALS,
        duration=horizon,
        delivery=delivery if delivery is not None else Unreliable(delay=1),
        initial_states=initial_states,
        clocks={GENERAL_A: (clock,), GENERAL_B: (clock,)},
        fact_rules=[_intend_fact, _attack_facts],
        system_name=f"coordinated-attack-depth{depth}",
    )


# -- registry entry ----------------------------------------------------------

def _registry_formulas(params):
    """Default formula set: the knowledge ladder and the never-common claims."""
    return {
        "intend": INTEND,
        "K_B intend": alternating_knowledge_formula(1),
        "K_A K_B intend": alternating_knowledge_formula(2),
        "C intend": C(GENERALS, INTEND),
        "both_attack": BOTH_ATTACK,
        "C both_attack": C(GENERALS, BOTH_ATTACK),
    }


def _registry_signature(params) -> ScenarioSignature:
    """Static signature: the two generals, runs last ``horizon`` ticks."""
    return ScenarioSignature(agents=GENERALS, horizon=params["horizon"])


@register_scenario(
    name="coordinated_attack",
    summary="two generals, an unreliable messenger, a depth-k handshake (system of runs)",
    section="Sections 4 and 7",
    parameters=(
        Parameter("depth", int, default=2, minimum=1, description="handshake depth (messages in the chain)"),
        Parameter("horizon", int, default=4, minimum=1, description="how many time steps each run lasts"),
        Parameter(
            "include_peace_runs",
            bool,
            default=True,
            description="include the runs in which A never wanted to attack",
        ),
    ),
    formulas=_registry_formulas,
    signature=_registry_signature,
    details=(
        "Every run of the handshake over the lossy messenger is enumerated.  Each "
        "delivered message adds one level to the nested knowledge of A's intention "
        "(K_B intend, K_A K_B intend, ...), but C intend never holds — the "
        "paper's impossibility of coordinated attack."
    ),
)
def build_coordinated_attack_scenario(
    depth: int, horizon: int, include_peace_runs: bool
) -> BuiltScenario:
    """Registry builder: the handshake system over the unreliable messenger."""
    system = build_handshake_system(
        depth, horizon, include_peace_runs=include_peace_runs
    )
    return BuiltScenario(
        model=system,
        note="no focus point: the reports quantify over all (run, time) points",
    )


def alternating_knowledge_formula(levels: int) -> Formula:
    """The nested formula ``K_B intend``, ``K_A K_B intend``, ... with ``levels``
    alternating knowledge operators (starting with B, who is the first to learn)."""
    if levels < 1:
        raise ScenarioError("levels must be >= 1")
    formula: Formula = INTEND
    for level in range(levels):
        agent = GENERAL_B if level % 2 == 0 else GENERAL_A
        formula = K(agent, formula)
    return formula


def knowledge_depth_after_deliveries(
    system: System, run: Run, time: int, max_levels: Optional[int] = None
) -> int:
    """The deepest alternation ``K_B intend``, ``K_A K_B intend``, ... true at
    ``(run, time)``.

    The paper's informal analysis says this equals the number of messages delivered so
    far: "each message that the messenger delivers can add at most one level of
    knowledge about the desired attack, and no more".
    """
    interpretation = ViewBasedInterpretation(system)
    limit = max_levels if max_levels is not None else run.messages_received_before(time + 1) + 2
    depth = 0
    for levels in range(1, limit + 1):
        if interpretation.holds(alternating_knowledge_formula(levels), run, time):
            depth = levels
        else:
            break
    return depth


def attack_implies_common_knowledge(system: System) -> bool:
    """Proposition 4: at every point where both generals attack, the attack is common
    knowledge among them.

    The check uses the complete-history interpretation, exactly as the paper's proof
    does.  (For a *correct* protocol the claim is about all attacking points; for an
    incorrect one, the points where only one general attacks are simply not covered
    by the proposition.)
    """
    interpretation = ViewBasedInterpretation(system)
    claim = Common(GENERALS, BOTH_ATTACK)
    for run in system.runs:
        for time in run.times():
            if BOTH_ATTACK.name in run.facts_at(time):
                if not interpretation.holds(claim, run, time):
                    return False
    return True


@dataclass
class PolicyOutcome:
    """How a threshold policy behaves across all runs of the environment."""

    policy: AttackPolicy
    attacks_in_some_run: bool
    uncoordinated_run: Optional[str]
    """The name of a run in which exactly one general attacks, if any."""

    @property
    def is_correct(self) -> bool:
        """A correct coordinated-attack protocol: attacks are always joint, and the
        generals actually attack when communication succeeds."""
        return self.attacks_in_some_run and self.uncoordinated_run is None

    @property
    def never_attacks(self) -> bool:
        """Whether the policy guarantees that nobody ever attacks."""
        return not self.attacks_in_some_run


def evaluate_attack_policy(
    depth: int,
    horizon: int,
    policy: AttackPolicy,
    delivery: Optional[DeliveryModel] = None,
) -> PolicyOutcome:
    """Run the handshake with ``policy`` in every environment behaviour and classify
    the outcome (attacks somewhere?  ever uncoordinated?)."""
    system = build_handshake_system(depth, horizon, delivery=delivery, policy=policy)
    attacks = False
    uncoordinated: Optional[str] = None
    for run in system.runs:
        for time in run.times():
            facts = run.facts_at(time)
            if "some_attack" in facts:
                attacks = True
                if BOTH_ATTACK.name not in facts and uncoordinated is None:
                    uncoordinated = run.name
    return PolicyOutcome(policy=policy, attacks_in_some_run=attacks, uncoordinated_run=uncoordinated)


def search_for_correct_policy(
    depth: int,
    horizon: int,
    delivery: Optional[DeliveryModel] = None,
    attack_time: Optional[int] = None,
) -> List[PolicyOutcome]:
    """Corollary 6, made executable: try every threshold policy over the depth-``depth``
    handshake and report the outcomes.

    The paper's theorem predicts that no outcome is both "attacks in some run" and
    "never uncoordinated" — i.e. :attr:`PolicyOutcome.is_correct` is false for every
    policy (the only "correct" behaviours are the ones that never attack at all).
    """
    deadline = attack_time if attack_time is not None else horizon
    outcomes: List[PolicyOutcome] = []
    thresholds: List[Optional[int]] = [None] + list(range(0, depth + 1))
    for threshold_a, threshold_b in itertools.product(thresholds, thresholds):
        policy = AttackPolicy(threshold_a, threshold_b, deadline)
        outcomes.append(evaluate_attack_policy(depth, horizon, policy, delivery=delivery))
    return outcomes
